//! End-to-end integration: a full (reduced-scale) consolidation day for
//! every algorithm, exercising the whole stack — trace synthesis, Cyclon,
//! two-phase learning, consolidation, metrics and SLA accounting.

use glap::GlapConfig;
use glap_experiments::{run_scenario, Algorithm, Scenario};

fn scenario(algorithm: Algorithm) -> Scenario {
    Scenario {
        n_pms: 60,
        ratio: 3,
        rep: 0,
        algorithm,
        rounds: 240,
        glap: GlapConfig {
            learning_rounds: 40,
            aggregation_rounds: 15,
            ..Default::default()
        },
        trace_cfg: Default::default(),
        vm_mix: Default::default(),
        fault: Default::default(),
    }
}

#[test]
fn every_algorithm_completes_a_day_with_consistent_accounting() {
    for algorithm in Algorithm::PAPER_SET {
        let result = run_scenario(&scenario(algorithm));
        let c = &result.collector;
        assert_eq!(c.samples.len(), 240, "{}", algorithm.label());
        // Migration totals agree between the per-round series and the sum.
        let from_series: u64 = c.samples.iter().map(|s| s.migrations as u64).sum();
        assert_eq!(from_series, c.total_migrations());
        // Energy is non-negative and only present in rounds with migrations.
        for s in &c.samples {
            assert!(s.migration_energy_j >= 0.0);
            if s.migrations == 0 {
                assert_eq!(s.migration_energy_j, 0.0);
            }
            assert!(s.overloaded_pms <= s.active_pms);
        }
        // SLA metrics are well-formed.
        assert!(result.sla.slavo >= 0.0 && result.sla.slavo <= 1.0);
        assert!(result.sla.slalm >= 0.0);
        assert!((result.sla.slav - result.sla.slavo * result.sla.slalm).abs() < 1e-12);
        assert!(result.bfd_bins > 0 && result.bfd_bins <= 180);
    }
}

#[test]
fn consolidation_reduces_active_pms_for_all_algorithms() {
    for algorithm in Algorithm::PAPER_SET {
        let result = run_scenario(&scenario(algorithm));
        let last = result.collector.samples.last().unwrap();
        assert!(
            last.active_pms < 60,
            "{} never consolidated ({} active)",
            algorithm.label(),
            last.active_pms
        );
        // No algorithm may pack below what its VMs physically need.
        assert!(last.active_pms >= result.bfd_bins / 2);
    }
}

#[test]
fn glap_beats_grmp_on_overloads_and_migrations() {
    // The paper's headline comparison, at test scale: GLAP produces fewer
    // overloaded PM-rounds and fewer migrations than aggressive GRMP.
    let glap = run_scenario(&scenario(Algorithm::Glap));
    let grmp = run_scenario(&scenario(Algorithm::Grmp));
    let overloads =
        |r: &glap_metrics::RunResult| -> f64 { r.collector.overloaded_series().iter().sum() };
    assert!(
        overloads(&glap) <= overloads(&grmp),
        "GLAP {} vs GRMP {} overloaded PM-rounds",
        overloads(&glap),
        overloads(&grmp)
    );
    assert!(glap.collector.total_migrations() < grmp.collector.total_migrations());
    // And GRMP consolidates at least as aggressively (that is its trade).
    assert!(
        grmp.collector.mean_active_pms() <= glap.collector.mean_active_pms() + 1.0,
        "GRMP {} vs GLAP {} mean active",
        grmp.collector.mean_active_pms(),
        glap.collector.mean_active_pms()
    );
}

#[test]
fn sla_ordering_matches_table_one() {
    // Table I's ordering, aggregated over three repetitions to tame
    // small-scale noise: GLAP's SLAV must be strictly below the static /
    // centralized threshold algorithms (GRMP, PABFD) and within noise of
    // the other gradual algorithm (EcoCloud).
    // A full diurnal cycle is needed for the comparison to be meaningful:
    // the threshold algorithms' violations concentrate at the demand peak.
    let mean_slav = |algorithm: Algorithm| -> f64 {
        (0..3)
            .map(|rep| {
                let sc = Scenario {
                    rep,
                    rounds: 720,
                    ..scenario(algorithm)
                };
                run_scenario(&sc).sla.slav
            })
            .sum::<f64>()
            / 3.0
    };
    let glap = mean_slav(Algorithm::Glap);
    let grmp = mean_slav(Algorithm::Grmp);
    let pabfd = mean_slav(Algorithm::Pabfd);
    let ecocloud = mean_slav(Algorithm::EcoCloud);
    assert!(glap < grmp, "GLAP {glap:.3e} vs GRMP {grmp:.3e}");
    assert!(glap < pabfd, "GLAP {glap:.3e} vs PABFD {pabfd:.3e}");
    assert!(
        glap <= ecocloud * 2.0,
        "GLAP {glap:.3e} vs EcoCloud {ecocloud:.3e}"
    );
}
