//! Integration tests of the two-phase gossip learning protocol against
//! the paper's claims: convergence of the aggregation phase (Figure 5)
//! and the Theorem 1 normality property of gossip-averaged values.

use glap::prelude::*;
use glap_cluster::Resources;
use glap_experiments::{build_world, Algorithm, Scenario};
use glap_metrics::{jarque_bera, mean};
use glap_qlearn::{PmState, QParams, QTablePair, VmAction};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn trained_world(
    n_pms: usize,
    learning_rounds: usize,
    aggregation_rounds: usize,
) -> (Vec<QTablePair>, glap::TrainReport) {
    let glap = GlapConfig {
        learning_rounds,
        aggregation_rounds,
        ..Default::default()
    };
    let sc = Scenario {
        glap,
        ..Scenario::paper(n_pms, 3, 0, Algorithm::Glap)
    };
    let (mut dc, mut trace) = build_world(&sc);
    train(&mut dc, &mut trace, &glap, sc.policy_seed(), true)
}

#[test]
fn figure5_shape_wog_plateaus_wg_converges() {
    let (_, report) = trained_world(80, 30, 12);
    let wog: Vec<f64> = report
        .similarity
        .iter()
        .filter(|(p, _, _)| *p == TrainPhase::Learning)
        .map(|&(_, _, s)| s)
        .collect();
    let wg: Vec<f64> = report
        .similarity
        .iter()
        .filter(|(p, _, _)| *p == TrainPhase::Aggregation)
        .map(|&(_, _, s)| s)
        .collect();
    // Learning alone never reaches agreement…
    let wog_final = *wog.last().unwrap();
    assert!(wog_final < 0.95, "WOG converged on its own: {wog_final}");
    // …aggregation does, quickly.
    let wg_final = *wg.last().unwrap();
    assert!(wg_final > 0.999, "WG failed to converge: {wg_final}");
    // And convergence is fast: within 10 gossip rounds.
    assert!(wg[9.min(wg.len() - 1)] > 0.99);
}

#[test]
fn all_pms_own_identical_tables_after_aggregation() {
    let (tables, _) = trained_world(60, 25, 15);
    let reference = &tables[0];
    for t in &tables[1..] {
        let sim = reference.cosine_similarity(t);
        assert!(sim > 0.9999, "a PM diverged: similarity {sim}");
    }
}

#[test]
fn unified_table_is_fixed_point_of_merging() {
    let (tables, _) = trained_world(40, 20, 15);
    let uni = unified_table(&tables);
    let mut again = uni.clone();
    again.merge(&uni);
    // Merging a table with itself is identity (average of equal values).
    assert!((again.cosine_similarity(&uni) - 1.0).abs() < 1e-12);
    assert_eq!(again.trained_pairs(), uni.trained_pairs());
}

#[test]
fn theorem1_gossip_averages_tend_toward_normality() {
    // Start n nodes with strongly *non-normal* (exponential-like) values
    // for one (state, action) pair; run the aggregation gossip; the
    // cross-node distribution must become much closer to normal
    // (Jarque–Bera statistic shrinks dramatically) while preserving the
    // mean — §IV-C's claim, checked empirically.
    let n = 400;
    let mut rng = SmallRng::seed_from_u64(99);
    let s = PmState::from_utilization(Resources::splat(0.5));
    let a = VmAction::from_demand(Resources::splat(0.1));
    let mut tables: Vec<QTablePair> = (0..n)
        .map(|_| {
            let mut t = QTablePair::new(QParams::default());
            // Exponential via inverse CDF: heavily right-skewed.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t.out.set(s, a, -u.ln() * 10.0);
            t
        })
        .collect();
    let values =
        |tables: &[QTablePair]| -> Vec<f64> { tables.iter().map(|t| t.out.get(s, a)).collect() };
    let before = values(&tables);
    let jb_before = jarque_bera(&before);
    let mean_before = mean(&before);

    let mut overlay = CyclonOverlay::new(n, 8, 4);
    overlay.bootstrap_random(&mut rng);
    // A *few* rounds only: full convergence would collapse the variance
    // entirely; Theorem 1 is about the distribution en route.
    for _ in 0..4 {
        overlay.run_round(&mut rng, RoundIo::default());
        aggregation_round(&mut tables, &mut overlay, &mut rng, AggIo::default());
    }
    let after = values(&tables);
    let jb_after = jarque_bera(&after);
    let mean_after = mean(&after);

    assert!(
        jb_after < jb_before / 3.0,
        "Jarque–Bera did not drop: {jb_before:.1} → {jb_after:.1}"
    );
    assert!(
        (mean_after - mean_before).abs() / mean_before < 0.05,
        "gossip averaging drifted the mean: {mean_before} → {mean_after}"
    );
}

#[test]
fn learning_threshold_excludes_busy_pms() {
    // With an impossible threshold nobody trains; with a permissive one
    // almost everybody does.
    let run = |threshold: f64| {
        let glap = GlapConfig {
            learning_rounds: 10,
            aggregation_rounds: 0,
            learning_threshold: threshold,
            ..Default::default()
        };
        let sc = Scenario {
            glap,
            ..Scenario::paper(40, 3, 0, Algorithm::Glap)
        };
        let (mut dc, mut trace) = build_world(&sc);
        let (_, report) = train(&mut dc, &mut trace, &glap, sc.policy_seed(), false);
        report.pms_trained
    };
    // Only PMs that are already idle (utilization exactly 0) can pass a
    // zero threshold.
    assert!(run(0.0) <= 5, "{} PMs trained at threshold 0", run(0.0));
    assert!(run(1.0) > 30);
}
