//! Reproducibility contracts: every run is a pure function of its
//! scenario (seed included), and the world invariants hold throughout.

use glap::GlapConfig;
use glap_dcsim::{run_simulation, FaultProfile};
use glap_experiments::{build_policy, build_world, run_scenario, Algorithm, Scenario};
use glap_metrics::MetricsCollector;
use glap_workload::OffsetTrace;

fn scenario(algorithm: Algorithm) -> Scenario {
    Scenario {
        n_pms: 40,
        ratio: 2,
        rep: 3,
        algorithm,
        rounds: 120,
        glap: GlapConfig {
            learning_rounds: 20,
            aggregation_rounds: 10,
            ..Default::default()
        },
        trace_cfg: Default::default(),
        vm_mix: Default::default(),
        fault: Default::default(),
    }
}

#[test]
fn runs_are_bit_reproducible_for_every_algorithm() {
    for algorithm in Algorithm::PAPER_SET {
        let sc = scenario(algorithm);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(
            a.collector.samples,
            b.collector.samples,
            "{}",
            algorithm.label()
        );
        assert_eq!(a.sla, b.sla);
        assert_eq!(a.bfd_bins, b.bfd_bins);
    }
}

#[test]
fn thread_count_never_changes_results() {
    // The learning phase fans out over a worker pool (PR 5), but each
    // PM trains from its own dedicated RNG stream, so a run is a pure
    // function of the seed regardless of pool width — with and without
    // network faults. (Other tests in this binary are also
    // thread-count-invariant, so flipping the process-wide default
    // while they run concurrently is harmless.)
    for algorithm in Algorithm::PAPER_SET {
        for faulty in [false, true] {
            let mut sc = scenario(algorithm);
            if faulty {
                sc.fault = FaultProfile::faulty(0.2, 0.01, 0.3);
            }
            glap_par::set_default_threads(1);
            let seq = run_scenario(&sc);
            glap_par::set_default_threads(4);
            let par = run_scenario(&sc);
            glap_par::set_default_threads(0);
            assert_eq!(
                seq.collector.samples,
                par.collector.samples,
                "{} (faulty={faulty}): thread count changed per-round samples",
                algorithm.label()
            );
            assert_eq!(seq.sla, par.sla, "{} (faulty={faulty})", algorithm.label());
            assert_eq!(
                seq.bfd_bins,
                par.bfd_bins,
                "{} (faulty={faulty})",
                algorithm.label()
            );
        }
    }
}

#[test]
fn different_seeds_give_different_runs() {
    let a = run_scenario(&scenario(Algorithm::Glap));
    let b = run_scenario(&Scenario {
        rep: 4,
        ..scenario(Algorithm::Glap)
    });
    assert_ne!(a.collector.samples, b.collector.samples);
}

#[test]
fn datacenter_invariants_hold_every_round() {
    struct InvariantChecker;
    impl glap_dcsim::Observer for InvariantChecker {
        fn on_round_end(&mut self, round: u64, dc: &mut glap_cluster::DataCenter) {
            dc.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: invariant violated: {e}"));
        }
    }
    for algorithm in Algorithm::PAPER_SET {
        let sc = scenario(algorithm);
        let (mut dc, trace) = build_world(&sc);
        let mut policy = build_policy(&sc, &dc, &trace);
        let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
        let mut checker = InvariantChecker;
        let mut metrics = MetricsCollector::new();
        run_simulation(
            &mut dc,
            &mut day,
            policy.as_mut(),
            &mut [&mut checker, &mut metrics],
            sc.rounds,
            sc.policy_seed(),
        );
    }
}

#[test]
fn zero_fault_network_is_byte_identical_to_direct_calls() {
    // The tentpole contract of the network layer: with the default
    // FaultProfile::none(), routing every gossip message through the
    // NetworkModel (what run_scenario now does) produces byte-identical
    // results to driving the policy directly over run_simulation with no
    // explicit network — the pre-network code path. The ideal message
    // path consumes no randomness and refuses nothing, so the two runs
    // must match sample for sample.
    for algorithm in Algorithm::PAPER_SET {
        let sc = scenario(algorithm);
        assert!(sc.fault.is_ideal());
        let via_net = run_scenario(&sc);

        let (mut dc, trace) = build_world(&sc);
        let mut policy = build_policy(&sc, &dc, &trace);
        let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
        let mut collector = MetricsCollector::new();
        run_simulation(
            &mut dc,
            &mut day,
            policy.as_mut(),
            &mut [&mut collector],
            sc.rounds,
            sc.policy_seed(),
        );

        assert_eq!(
            via_net.collector.samples,
            collector.samples,
            "{}: network layer changed a zero-fault run",
            algorithm.label()
        );
    }
}

#[test]
fn faulty_runs_complete_and_stay_reproducible() {
    // Fault injection must never panic, lose VMs, or break determinism:
    // a 20% drop rate plus stochastic crash/recovery is survivable for
    // every algorithm.
    for algorithm in Algorithm::PAPER_SET {
        let mut sc = scenario(algorithm);
        sc.fault = FaultProfile::faulty(0.2, 0.01, 0.3);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(
            a.collector.samples,
            b.collector.samples,
            "{}",
            algorithm.label()
        );
        assert_eq!(a.collector.samples.len(), sc.rounds as usize);

        // And the fault profile actually changes behaviour vs. the ideal
        // network (the layer is not a no-op).
        let ideal = run_scenario(&scenario(algorithm));
        assert_ne!(
            a.collector.samples,
            ideal.collector.samples,
            "{}: faults had no effect",
            algorithm.label()
        );
    }
}

#[test]
fn vm_conservation_under_faults() {
    for algorithm in Algorithm::PAPER_SET {
        let mut sc = scenario(algorithm);
        sc.fault = FaultProfile::faulty(0.2, 0.02, 0.2);
        let (mut dc, trace) = build_world(&sc);
        let policy = build_policy(&sc, &dc, &trace);
        let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
        let mut policy = policy;
        let mut net = glap_dcsim::NetworkModel::new(sc.n_pms, sc.fault.clone(), sc.policy_seed());
        glap_dcsim::run_simulation_with_net(
            &mut dc,
            &mut day,
            policy.as_mut(),
            &mut [],
            sc.rounds,
            sc.policy_seed(),
            &mut net,
        );
        dc.check_invariants().unwrap();
        let hosted: usize = dc.pms().map(|p| p.vm_count()).sum();
        assert_eq!(hosted, sc.n_vms(), "{}", algorithm.label());
    }
}

#[test]
fn vm_conservation_across_the_day() {
    // No VM is ever lost or duplicated by any algorithm.
    for algorithm in Algorithm::PAPER_SET {
        let sc = scenario(algorithm);
        let (mut dc, trace) = build_world(&sc);
        let mut policy = build_policy(&sc, &dc, &trace);
        let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
        run_simulation(
            &mut dc,
            &mut day,
            policy.as_mut(),
            &mut [],
            sc.rounds,
            sc.policy_seed(),
        );
        let hosted: usize = dc.pms().map(|p| p.vm_count()).sum();
        assert_eq!(hosted, sc.n_vms(), "{}", algorithm.label());
        assert!(dc.vms().all(|v| v.host.is_some()));
    }
}
