//! The profiler's hard invariant: profiling is *observational*. Turning
//! it on must never change a single byte of a run's results — not the
//! per-round metrics, not the telemetry counters, not the serialized
//! Q-tables — at any worker-thread count, with or without fault
//! injection, on both the simulation path and the node-runtime path.
//! The span tree it produces must also be well-formed (no spans left
//! open, children nested within their parents' wall time, ordered
//! percentiles) and its JSON artifact must round-trip losslessly.

use glap::GlapConfig;
use glap_dcsim::FaultProfile;
use glap_experiments::{
    rounds_csv, run_node_scenario_instrumented, run_scenario_instrumented, Algorithm,
    CheckpointOpts, Scenario, TransportKind,
};
use glap_profile::{ProfileReport, Profiler};
use glap_snapshot::Writer;
use glap_telemetry::Tracer;

fn scenario(fault: FaultProfile) -> Scenario {
    Scenario {
        n_pms: 24,
        ratio: 2,
        rep: 0,
        algorithm: Algorithm::Glap,
        rounds: 40,
        glap: GlapConfig {
            learning_rounds: 10,
            aggregation_rounds: 6,
            ..GlapConfig::default()
        },
        trace_cfg: Default::default(),
        vm_mix: Default::default(),
        fault,
    }
}

fn faulty() -> FaultProfile {
    FaultProfile::faulty(0.1, 0.02, 0.5)
}

/// Everything comparable about a sim-path run: the per-round metrics
/// CSV, the counter digest, and the tracer's serialized state bytes.
fn sim_digest(sc: &Scenario, profiler: &Profiler) -> (String, String, Vec<u8>) {
    let tracer = Tracer::counting();
    let (result, _) =
        run_scenario_instrumented(sc, &tracer, &CheckpointOpts::default(), profiler, false)
            .expect("no checkpoint I/O configured");
    let r = result.expect("runs to completion");
    let mut w = Writer::new();
    tracer.save_state(&mut w);
    (rounds_csv(&r), tracer.counters_csv(), w.into_bytes())
}

#[test]
fn profiling_never_changes_sim_results() {
    for faulty_run in [false, true] {
        let sc = scenario(if faulty_run {
            faulty()
        } else {
            FaultProfile::default()
        });
        let reference = sim_digest(&sc, &Profiler::off());
        for threads in [1usize, 4] {
            glap_par::set_default_threads(threads);
            let off = sim_digest(&sc, &Profiler::off());
            let on = sim_digest(&sc, &Profiler::enabled());
            glap_par::set_default_threads(0);
            assert_eq!(
                reference, off,
                "faulty={faulty_run}, {threads} threads: unprofiled run not thread-invariant"
            );
            assert_eq!(
                reference.0, on.0,
                "faulty={faulty_run}, {threads} threads: profiling changed the rounds CSV"
            );
            assert_eq!(
                reference.1, on.1,
                "faulty={faulty_run}, {threads} threads: profiling changed the counters"
            );
            assert_eq!(
                reference.2, on.2,
                "faulty={faulty_run}, {threads} threads: profiling changed tracer state bytes"
            );
        }
    }
}

#[test]
fn profiling_never_changes_node_runtime_results() {
    // The node path exercises the transport instrumentation
    // (`transport_dispatch` samples, `net.bytes_*` counters) and the
    // serialized post-training Q-tables on real channel workers.
    let sc = scenario(faulty());
    let digest = |kind, profiler: &Profiler| {
        let tracer = Tracer::counting();
        let out = run_node_scenario_instrumented(
            &sc,
            kind,
            Some(2),
            &tracer,
            &CheckpointOpts::default(),
            profiler,
        )
        .expect("no checkpoint I/O configured");
        let r = out.result.expect("runs to completion");
        (
            out.tables.unwrap_or_default(),
            rounds_csv(&r),
            tracer.counters_csv(),
        )
    };
    for kind in [TransportKind::Sim, TransportKind::Channel] {
        let off = digest(kind, &Profiler::off());
        let on = digest(kind, &Profiler::enabled());
        assert_eq!(off.0, on.0, "{kind:?}: profiling changed Q-table bytes");
        assert_eq!(off.1, on.1, "{kind:?}: profiling changed the rounds CSV");
        assert_eq!(off.2, on.2, "{kind:?}: profiling changed the counters");
    }
}

/// Runs a small profiled scenario and returns its report.
fn profiled_report() -> ProfileReport {
    let profiler = Profiler::enabled();
    let sc = scenario(FaultProfile::default());
    let (result, _) = run_scenario_instrumented(
        &sc,
        &Tracer::off(),
        &CheckpointOpts::default(),
        &profiler,
        false,
    )
    .expect("no checkpoint I/O configured");
    result.expect("runs to completion");
    assert_eq!(
        profiler.open_spans(),
        0,
        "all spans must be closed once the run returns"
    );
    profiler.snapshot()
}

#[test]
fn span_tree_is_well_formed() {
    let report = profiled_report();
    assert!(report.total_ns > 0);
    assert!(!report.spans.is_empty());
    for s in &report.spans {
        // The root `run` span is implicit (still open at snapshot
        // time), so it reports no completed samples.
        assert!(
            s.count > 0 || s.depth == 0,
            "{}: empty span reported",
            s.path
        );
        assert!(
            s.p50_ns <= s.p95_ns && s.p95_ns <= s.max_ns,
            "{}: percentiles out of order",
            s.path
        );
        assert!(
            s.max_ns <= s.total_ns,
            "{}: max sample exceeds span total",
            s.path
        );
    }
    // Sequential children nest inside their parent's wall time, so
    // their totals sum to at most the parent's. Concurrent samples
    // (per-worker busy/idle) are explicitly exempt: they overlap.
    for parent in &report.spans {
        let child_prefix = format!("{}/", parent.path);
        let child_sum: u64 = report
            .spans
            .iter()
            .filter(|c| {
                !c.concurrent && c.depth == parent.depth + 1 && c.path.starts_with(&child_prefix)
            })
            .map(|c| c.total_ns)
            .sum();
        assert!(
            child_sum <= parent.total_ns,
            "{}: children total {}ns exceeds parent total {}ns",
            parent.path,
            child_sum,
            parent.total_ns
        );
    }
}

#[test]
fn profiled_run_covers_wall_time() {
    // The acceptance bar: the top-level phases must account for at
    // least 90% of the run's wall clock — no large untimed gaps.
    let report = profiled_report();
    let coverage = report.coverage();
    assert!(
        coverage >= 0.9,
        "phase coverage {coverage:.3} below the 90% acceptance bar"
    );
}

#[test]
fn report_json_round_trips() {
    let report = profiled_report();
    let parsed = ProfileReport::from_json(&report.to_json()).expect("valid JSON artifact");
    assert_eq!(parsed.total_ns, report.total_ns);
    assert_eq!(parsed.spans.len(), report.spans.len());
    for (a, b) in report.spans.iter().zip(&parsed.spans) {
        assert_eq!(a.path, b.path);
        assert_eq!(a.depth, b.depth);
        assert_eq!(a.count, b.count);
        assert_eq!(a.total_ns, b.total_ns);
        assert_eq!(a.p50_ns, b.p50_ns);
        assert_eq!(a.p95_ns, b.p95_ns);
        assert_eq!(a.max_ns, b.max_ns);
        assert_eq!(a.concurrent, b.concurrent);
    }
}
