//! Integration tests of the future-work extensions: rack-topology-aware
//! consolidation, churn with the learning re-trigger, and bursty
//! workloads.

use glap::{train, unified_table, GlapConfig, GlapPolicy, RetrainConfig};
use glap_cluster::{DataCenter, DataCenterConfig, Topology, VmSpec};
use glap_dcsim::{run_simulation, stream_rng, Stream};
use glap_experiments::{
    build_churn_world, build_policy, run_churn_scenario, run_scenario, Algorithm, ChurnConfig,
    Scenario,
};
use glap_metrics::MetricsCollector;
use glap_workload::{GoogleLikeTraceGen, GoogleTraceConfig, OffsetTrace};

fn glap_cfg() -> GlapConfig {
    GlapConfig {
        learning_rounds: 30,
        aggregation_rounds: 10,
        ..Default::default()
    }
}

fn racked_run(rack_aware: bool) -> (DataCenter, MetricsCollector, Topology) {
    let topology = Topology {
        pms_per_rack: 10,
        inter_rack_bw_factor: 0.25,
        switch_watts: 150.0,
    };
    let sc = Scenario {
        rounds: 300,
        glap: glap_cfg(),
        ..Scenario::paper(60, 3, 0, Algorithm::Glap)
    };
    let mut dc = DataCenter::new(DataCenterConfig::paper_with_topology(60, topology));
    for _ in 0..sc.n_vms() {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    dc.random_placement(&mut stream_rng(sc.world_seed(), Stream::Placement));
    let total = sc.glap.learning_rounds + sc.rounds as usize;
    let trace = GoogleLikeTraceGen::new(sc.trace_cfg).generate(
        sc.n_vms(),
        total,
        &mut stream_rng(sc.world_seed(), Stream::Trace),
    );
    let mut train_dc = dc.clone();
    let mut train_trace = trace.clone();
    let (tables, _) = train(
        &mut train_dc,
        &mut train_trace,
        &sc.glap,
        sc.policy_seed(),
        false,
    );
    let mut policy = GlapPolicy::with_shared_table(sc.glap, unified_table(&tables));
    policy.rack_aware = rack_aware;
    let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
    let mut metrics = MetricsCollector::new();
    run_simulation(
        &mut dc,
        &mut day,
        &mut policy,
        &mut [&mut metrics],
        sc.rounds,
        sc.policy_seed(),
    );
    (dc, metrics, topology)
}

#[test]
fn rack_aware_glap_powers_down_switches() {
    let (dc_flat, _, topo) = racked_run(false);
    let (dc_rack, _, _) = racked_run(true);
    let flat_racks = topo.active_racks(&dc_flat);
    let rack_racks = topo.active_racks(&dc_rack);
    assert!(
        rack_racks < flat_racks,
        "rack-aware GLAP should power down switches: {rack_racks} vs {flat_racks} active racks"
    );
    // And at least one rack is entirely off.
    assert!(topo.rack_occupancy(&dc_rack).contains(&0));
    dc_rack.check_invariants().unwrap();
}

#[test]
fn rack_awareness_does_not_sacrifice_sla() {
    let (_, metrics_flat, _) = racked_run(false);
    let (_, metrics_rack, _) = racked_run(true);
    let flat: f64 = metrics_flat.overloaded_series().iter().sum();
    let rack: f64 = metrics_rack.overloaded_series().iter().sum();
    // Rack awareness reroutes migrations; it must not blow up overloads
    // (tolerate modest noise).
    assert!(
        rack <= flat * 2.0 + 10.0,
        "rack-aware overload explosion: {rack} vs {flat} overloaded PM-rounds"
    );
}

#[test]
fn inter_rack_migrations_cost_more_energy_per_move() {
    // Verified at the substrate level in glap-cluster; here end-to-end:
    // the racked world's migration records show both costs.
    let (_, metrics, _) = racked_run(true);
    assert!(metrics.total_migrations() > 0);
    assert!(metrics.total_migration_energy_j() > 0.0);
}

#[test]
fn churn_with_shifted_arrivals_degrades_stale_glap() {
    let hot = GoogleTraceConfig {
        cpu_floor: 0.4,
        cpu_ceil: 0.98,
        bursty_fraction: 0.7,
        burst_prob: 0.05,
        burst_boost: 0.7,
        ..GoogleTraceConfig::default()
    };
    let run = |churn: ChurnConfig| {
        let sc = Scenario {
            rounds: 240,
            glap: glap_cfg(),
            ..Scenario::paper(40, 3, 0, Algorithm::Glap)
        };
        let (mut dc, trace) = build_churn_world(&sc, &churn);
        let mut policy = build_policy(&sc, &dc, &trace);
        run_churn_scenario(&sc, &churn, &mut dc, &trace, policy.as_mut())
            .collector
            .mean_overloaded_fraction()
    };
    let stationary = run(ChurnConfig::balanced(120, 0.01));
    let shifted = run(ChurnConfig::shifted(120, 0.01, hot));
    assert!(
        shifted > stationary,
        "hot arrivals should stress the stale table: {shifted} vs {stationary}"
    );
}

#[test]
fn retrain_window_completes_and_preserves_correctness() {
    let sc = Scenario {
        rounds: 200,
        glap: glap_cfg(),
        ..Scenario::paper(40, 3, 1, Algorithm::Glap)
    };
    let churn = ChurnConfig::balanced(120, 0.02);
    let (mut dc, trace) = build_churn_world(&sc, &churn);
    let mut train_dc = dc.clone();
    let mut train_trace = trace.clone();
    let (tables, _) = train(
        &mut train_dc,
        &mut train_trace,
        &sc.glap,
        sc.policy_seed(),
        false,
    );
    let mut policy = GlapPolicy::with_shared_table(sc.glap, unified_table(&tables));
    policy.retrain = Some(RetrainConfig {
        churn_threshold: 24,
        interval: None,
        learning_window: 10,
    });
    let r = run_churn_scenario(&sc, &churn, &mut dc, &trace, &mut policy);
    assert!(policy.retrainings >= 1, "window never completed");
    assert_eq!(r.collector.samples.len(), 200);
    dc.check_invariants().unwrap();
}

#[test]
fn interval_trigger_fires_without_churn() {
    let sc = Scenario {
        rounds: 100,
        glap: glap_cfg(),
        ..Scenario::paper(30, 2, 0, Algorithm::Glap)
    };
    let (mut dc, trace) = glap_experiments::build_world(&sc);
    let mut train_dc = dc.clone();
    let mut train_trace = trace.clone();
    let (tables, _) = train(
        &mut train_dc,
        &mut train_trace,
        &sc.glap,
        sc.policy_seed(),
        false,
    );
    let mut policy = GlapPolicy::with_shared_table(sc.glap, unified_table(&tables));
    policy.retrain = Some(RetrainConfig {
        churn_threshold: usize::MAX,
        interval: Some(30),
        learning_window: 5,
    });
    let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
    run_simulation(
        &mut dc,
        &mut day,
        &mut policy,
        &mut [],
        sc.rounds,
        sc.policy_seed(),
    );
    assert!(
        policy.retrainings >= 2,
        "interval trigger fired {} times",
        policy.retrainings
    );
}

#[test]
fn bursty_trace_config_flows_through_scenarios() {
    let bursty = GoogleTraceConfig {
        bursty_fraction: 0.9,
        burst_prob: 0.05,
        burst_boost: 0.8,
        ..GoogleTraceConfig::default()
    };
    let mut sc = Scenario {
        rounds: 120,
        glap: glap_cfg(),
        ..Scenario::paper(30, 3, 0, Algorithm::Grmp)
    };
    sc.trace_cfg = bursty;
    let result = run_scenario(&sc);
    assert_eq!(result.collector.samples.len(), 120);
    // The bursty world must actually be busier than the default one.
    let mut default_sc = sc.clone();
    default_sc.trace_cfg = GoogleTraceConfig::default();
    let (_, bursty_trace) = glap_experiments::build_world(&sc);
    let (_, default_trace) = glap_experiments::build_world(&default_sc);
    assert!(bursty_trace.mean_cpu() > default_trace.mean_cpu());
}
