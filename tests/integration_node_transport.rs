//! Sim-vs-channel byte identity for transport-backed runs: a scenario
//! trained on [`ChannelTransport`] worker threads (real mpsc channels,
//! serialized wire payloads) must reproduce the [`SimTransport`] oracle
//! bit for bit — final Q-table bytes, the per-round metrics CSV, and
//! the telemetry counter digest — at 1 and 4 workers, for the GLAP
//! ablation set, with and without fault injection. Also covers
//! training-phase checkpoint/resume: a channel run interrupted mid-
//! training and resumed from its snapshot equals the uninterrupted run.
//!
//! [`ChannelTransport`]: glap_node::ChannelTransport
//! [`SimTransport`]: glap_node::SimTransport

use glap::GlapConfig;
use glap_dcsim::FaultProfile;
use glap_experiments::{
    node_checkpoint_path, run_node_scenario, Algorithm, CheckpointOpts, Scenario, TransportKind,
};
use glap_experiments::{rounds_csv, NodeRunOutcome};
use glap_telemetry::Tracer;
use std::path::PathBuf;

fn scenario(algorithm: Algorithm, fault: FaultProfile) -> Scenario {
    Scenario {
        n_pms: 24,
        ratio: 2,
        rep: 0,
        algorithm,
        rounds: 40,
        glap: GlapConfig {
            learning_rounds: 10,
            aggregation_rounds: 6,
            ..GlapConfig::default()
        },
        trace_cfg: Default::default(),
        vm_mix: Default::default(),
        fault,
    }
}

fn faulty() -> FaultProfile {
    FaultProfile::faulty(0.1, 0.02, 0.5)
}

/// The complete comparable output of a run: serialized tables, the
/// rounds CSV, the final scalar metrics, and the counter digest.
fn digest(sc: &Scenario, kind: TransportKind, threads: Option<usize>) -> (Vec<u8>, String, String) {
    let tracer = Tracer::counting();
    let out = run_node_scenario(sc, kind, threads, &tracer, &CheckpointOpts::default()).unwrap();
    let r = out.result.expect("run completes");
    let summary = format!(
        "{},{},{},{:.12e},{:.12e}",
        rounds_csv(&r),
        r.collector.total_migrations(),
        r.wake_ups,
        r.sla.slav,
        r.collector.total_migration_energy_j(),
    );
    (
        out.tables.unwrap_or_default(),
        summary,
        tracer.counters_csv(),
    )
}

fn assert_channel_matches_sim(sc: &Scenario, tag: &str) {
    let (sim_tables, sim_summary, sim_counters) = digest(sc, TransportKind::Sim, None);
    for workers in [1usize, 4] {
        let (ch_tables, ch_summary, ch_counters) =
            digest(sc, TransportKind::Channel, Some(workers));
        assert_eq!(
            sim_tables, ch_tables,
            "{tag}: Q-table bytes diverge at {workers} workers"
        );
        assert_eq!(
            sim_summary, ch_summary,
            "{tag}: metrics diverge at {workers} workers"
        );
        assert_eq!(
            sim_counters, ch_counters,
            "{tag}: telemetry counters diverge at {workers} workers"
        );
    }
}

#[test]
fn glap_channel_matches_sim_ideal_network() {
    let sc = scenario(Algorithm::Glap, FaultProfile::none());
    assert_channel_matches_sim(&sc, "GLAP/ideal");
}

#[test]
fn glap_channel_matches_sim_under_faults() {
    let sc = scenario(Algorithm::Glap, faulty());
    assert_channel_matches_sim(&sc, "GLAP/faulty");
}

#[test]
fn ablations_channel_matches_sim() {
    for algorithm in [
        Algorithm::GlapNoVeto,
        Algorithm::GlapCurrentOnly,
        Algorithm::GlapNoAggregation,
    ] {
        let sc = scenario(algorithm, FaultProfile::none());
        assert_channel_matches_sim(&sc, algorithm.label());
        let sc = scenario(algorithm, faulty());
        assert_channel_matches_sim(&sc, &format!("{}/faulty", algorithm.label()));
    }
}

#[test]
fn baselines_channel_matches_sim() {
    // The baselines train nothing, so the transport choice must be
    // invisible: same measured day, same counters, no table artifact.
    for algorithm in [Algorithm::Grmp, Algorithm::EcoCloud, Algorithm::Pabfd] {
        let sc = scenario(algorithm, FaultProfile::none());
        assert_channel_matches_sim(&sc, algorithm.label());
        let sc = scenario(algorithm, faulty());
        assert_channel_matches_sim(&sc, &format!("{}/faulty", algorithm.label()));
    }
}

#[test]
fn wire_bytes_are_counted() {
    let sc = scenario(Algorithm::Glap, FaultProfile::none());
    let tracer = Tracer::counting();
    run_node_scenario(
        &sc,
        TransportKind::Channel,
        Some(2),
        &tracer,
        &CheckpointOpts::default(),
    )
    .unwrap();
    let csv = tracer.counters_csv();
    for counter in [
        "net.msgs",
        "net.bytes_tx",
        "net.bytes_rx",
        "wire.shuffle.req",
    ] {
        assert!(csv.contains(counter), "missing counter {counter}:\n{csv}");
    }
}

#[test]
fn baseline_algorithms_skip_training() {
    let sc = scenario(Algorithm::Grmp, FaultProfile::none());
    let tracer = Tracer::off();
    let NodeRunOutcome { result, tables } = run_node_scenario(
        &sc,
        TransportKind::Channel,
        Some(2),
        &tracer,
        &CheckpointOpts::default(),
    )
    .unwrap();
    assert!(result.is_some());
    assert!(tables.is_none(), "baselines train no tables");
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("glap-node-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn training_interrupt_resume_is_byte_identical() {
    const STOP_AT: u64 = 8; // mid-learning-phase
    let sc = scenario(Algorithm::Glap, faulty());
    let dir = temp_dir("resume");

    // Uninterrupted reference (checkpoint cadence is invisible to the
    // run, so no checkpointing here).
    let ref_tracer = Tracer::counting();
    let reference = run_node_scenario(
        &sc,
        TransportKind::Channel,
        Some(4),
        &ref_tracer,
        &CheckpointOpts::default(),
    )
    .unwrap();
    let ref_result = reference.result.expect("reference completes");

    // Interrupt training at STOP_AT…
    let stop = CheckpointOpts {
        every: STOP_AT,
        dir: Some(dir.clone()),
        stop_at_round: Some(STOP_AT),
        ..CheckpointOpts::default()
    };
    let part_tracer = Tracer::counting();
    let stopped =
        run_node_scenario(&sc, TransportKind::Channel, Some(4), &part_tracer, &stop).unwrap();
    assert!(stopped.result.is_none(), "run stops at --stop-at-round");
    assert!(stopped.tables.is_none());
    let ckpt = node_checkpoint_path(&dir, &sc);
    assert!(ckpt.exists(), "checkpoint written at the stop round");

    // …and resume — with a different worker count, which must not matter.
    let resume = CheckpointOpts {
        resume: Some(ckpt),
        ..CheckpointOpts::default()
    };
    let resume_tracer = Tracer::counting();
    let resumed =
        run_node_scenario(&sc, TransportKind::Sim, None, &resume_tracer, &resume).unwrap();
    let resumed_result = resumed.result.expect("resumed run completes");

    assert_eq!(
        reference.tables, resumed.tables,
        "resumed Q-tables diverge from the uninterrupted run"
    );
    assert_eq!(rounds_csv(&ref_result), rounds_csv(&resumed_result));
    assert_eq!(
        ref_tracer.counters_csv(),
        resume_tracer.counters_csv(),
        "restored tracer counters diverge"
    );
    std::fs::remove_dir_all(&dir).ok();
}
