//! Cross-algorithm behavioural contracts: fairness of the comparison
//! methodology and the qualitative traits the paper attributes to each
//! algorithm.

use glap::GlapConfig;
use glap_experiments::{build_world, run_scenario, Algorithm, Scenario};

fn scenario(algorithm: Algorithm, rounds: u64) -> Scenario {
    Scenario {
        n_pms: 50,
        ratio: 3,
        rep: 1,
        algorithm,
        rounds,
        glap: GlapConfig {
            learning_rounds: 30,
            aggregation_rounds: 12,
            ..Default::default()
        },
        trace_cfg: Default::default(),
        vm_mix: Default::default(),
        fault: Default::default(),
    }
}

#[test]
fn identical_world_across_algorithms() {
    // The paper: "such VM-PM mapping is used identically for all different
    // algorithms in each experiment" — and so is the trace.
    let worlds: Vec<_> = Algorithm::PAPER_SET
        .iter()
        .map(|&a| build_world(&scenario(a, 100)))
        .collect();
    let (dc0, trace0) = &worlds[0];
    let hosts0: Vec<_> = dc0.vms().map(|v| v.host).collect();
    for (dc, trace) in &worlds[1..] {
        assert_eq!(trace, trace0);
        let hosts: Vec<_> = dc.vms().map(|v| v.host).collect();
        assert_eq!(hosts, hosts0);
    }
}

#[test]
fn different_reps_use_different_worlds() {
    let a = build_world(&scenario(Algorithm::Glap, 50));
    let b = build_world(&Scenario {
        rep: 2,
        ..scenario(Algorithm::Glap, 50)
    });
    assert_ne!(a.1, b.1, "traces should differ across repetitions");
}

#[test]
fn pabfd_migrates_most_and_keeps_migrating() {
    // Figure 9's story: the centralized heuristic migrates near-linearly
    // while the gossip protocols front-load.
    let pabfd = run_scenario(&scenario(Algorithm::Pabfd, 240));
    let glap = run_scenario(&scenario(Algorithm::Glap, 240));
    assert!(
        pabfd.collector.total_migrations() > glap.collector.total_migrations(),
        "PABFD {} vs GLAP {}",
        pabfd.collector.total_migrations(),
        glap.collector.total_migrations()
    );
    // PABFD's second-half migration volume stays substantial (near-linear
    // cumulative curve).
    let cum = pabfd.collector.cumulative_migrations();
    let half = cum[cum.len() / 2];
    let total = *cum.last().unwrap();
    assert!(
        total - half > total / 10,
        "PABFD stopped migrating: {half} by half-day, {total} total"
    );
}

#[test]
fn distributed_protocols_front_load_migrations() {
    for algorithm in [Algorithm::Glap, Algorithm::Grmp] {
        let r = run_scenario(&scenario(algorithm, 240));
        let cum = r.collector.cumulative_migrations();
        let half = cum[cum.len() / 2] as f64;
        let total = *cum.last().unwrap() as f64;
        assert!(
            half >= total * 0.5,
            "{} did only {half}/{total} migrations by half-day",
            algorithm.label()
        );
    }
}

#[test]
fn energy_accounting_correlates_with_migrations() {
    // More migrations of the same VM population should cost more energy
    // in aggregate (Figure 10's broad trend).
    let glap = run_scenario(&scenario(Algorithm::Glap, 240));
    let pabfd = run_scenario(&scenario(Algorithm::Pabfd, 240));
    assert!(glap.collector.total_migrations() < pabfd.collector.total_migrations());
    assert!(glap.collector.total_migration_energy_j() < pabfd.collector.total_migration_energy_j());
}

#[test]
fn ablations_are_distinguishable_from_the_full_protocol() {
    let full = run_scenario(&scenario(Algorithm::Glap, 240));
    let noveto = run_scenario(&scenario(Algorithm::GlapNoVeto, 240));
    // Without admission control the protocol consolidates at least as
    // hard (fewer or equal active PMs)…
    assert!(
        noveto.collector.mean_active_pms() <= full.collector.mean_active_pms() + 0.5,
        "no-veto {} vs full {}",
        noveto.collector.mean_active_pms(),
        full.collector.mean_active_pms()
    );
    // …and cannot overload less in aggregate.
    let overloads =
        |r: &glap_metrics::RunResult| -> f64 { r.collector.overloaded_series().iter().sum() };
    assert!(overloads(&noveto) >= overloads(&full));
}
