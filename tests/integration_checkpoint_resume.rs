//! End-to-end checkpoint/resume byte-identity: for every paper
//! algorithm, with and without fault injection, a run interrupted at
//! round R and resumed from its checkpoint must reproduce the
//! uninterrupted run exactly — per-round metrics, SLA figures, the
//! telemetry counter CSV, and the full event trace (the resumed trace
//! concatenated onto the pre-interrupt trace equals the uninterrupted
//! trace event for event, sequence numbers included).
//!
//! The uninterrupted reference runs at the *same* checkpoint cadence,
//! because each checkpoint leaves a `checkpoint_written` event in the
//! trace; both legs therefore observe identical telemetry.

use glap::GlapConfig;
use glap_dcsim::FaultProfile;
use glap_experiments::{
    checkpoint_path, run_scenario_checkpointed, Algorithm, CheckpointOpts, Scenario,
};
use glap_telemetry::Tracer;
use std::path::{Path, PathBuf};

const STOP_AT: u64 = 20;
const ROUNDS: u64 = 40;

fn scenario(algorithm: Algorithm, fault: FaultProfile) -> Scenario {
    Scenario {
        n_pms: 30,
        ratio: 2,
        rep: 0,
        algorithm,
        rounds: ROUNDS,
        glap: GlapConfig {
            learning_rounds: 15,
            aggregation_rounds: 8,
            ..GlapConfig::default()
        },
        trace_cfg: Default::default(),
        vm_mix: Default::default(),
        fault,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "glap-resume-{}-{}",
        tag.replace(['/', ' '], "_"),
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(dir: &Path) -> CheckpointOpts {
    CheckpointOpts {
        every: STOP_AT,
        dir: Some(dir.to_path_buf()),
        ..CheckpointOpts::default()
    }
}

fn assert_interrupt_resume_is_byte_identical(sc: &Scenario, tag: &str) {
    let dir = temp_dir(tag);

    // Uninterrupted reference.
    let (full_tracer, full_sink) = Tracer::memory();
    let full_dir = dir.join("full");
    std::fs::create_dir_all(&full_dir).unwrap();
    let (full, _) = run_scenario_checkpointed(sc, &full_tracer, &opts(&full_dir)).unwrap();
    let full = full.expect("uninterrupted run completes");
    let full_counters = full_tracer.counters_csv();

    // Interrupt at STOP_AT…
    let part_dir = dir.join("part");
    std::fs::create_dir_all(&part_dir).unwrap();
    let (part1_tracer, part1_sink) = Tracer::memory();
    let stop = CheckpointOpts {
        stop_at_round: Some(STOP_AT),
        ..opts(&part_dir)
    };
    let (stopped, _) = run_scenario_checkpointed(sc, &part1_tracer, &stop).unwrap();
    assert!(
        stopped.is_none(),
        "{tag}: interrupted run must not yield a result"
    );
    let ckpt = checkpoint_path(&part_dir, sc);
    assert!(ckpt.exists(), "{tag}: checkpoint file missing");

    // …and resume to the end in a fresh process-equivalent (new tracer,
    // new policy instance, everything rebuilt from the snapshot).
    let (part2_tracer, part2_sink) = Tracer::memory();
    let resume = CheckpointOpts {
        resume: Some(ckpt),
        ..opts(&part_dir)
    };
    let (resumed, _) = run_scenario_checkpointed(sc, &part2_tracer, &resume).unwrap();
    let resumed = resumed.expect("resumed run completes");

    // RunResult equality: per-round samples, SLA metrics, baselines.
    assert_eq!(
        full.collector.samples, resumed.collector.samples,
        "{tag}: per-round samples diverged"
    );
    assert_eq!(full.sla, resumed.sla, "{tag}: SLA metrics diverged");
    assert_eq!(
        full.bfd_bins, resumed.bfd_bins,
        "{tag}: BFD baseline diverged"
    );
    assert_eq!(full.wake_ups, resumed.wake_ups, "{tag}: wake-ups diverged");

    // Counter totals survive the interruption (restored from snapshot).
    assert_eq!(
        full_counters,
        part2_tracer.counters_csv(),
        "{tag}: counter CSV diverged"
    );

    // Event-trace equality: part1 ++ part2 == full, sequence numbers
    // and all (the tracer cursor is checkpointed too).
    let mut stitched = part1_sink.events();
    stitched.extend(part2_sink.events());
    let full_events = full_sink.events();
    assert_eq!(
        full_events.len(),
        stitched.len(),
        "{tag}: event count diverged"
    );
    for (i, (a, b)) in full_events.iter().zip(&stitched).enumerate() {
        assert_eq!(a, b, "{tag}: event {i} diverged");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn glap_interrupt_resume_is_byte_identical() {
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::Glap, FaultProfile::none()),
        "GLAP",
    );
}

#[test]
fn grmp_interrupt_resume_is_byte_identical() {
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::Grmp, FaultProfile::none()),
        "GRMP",
    );
}

#[test]
fn ecocloud_interrupt_resume_is_byte_identical() {
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::EcoCloud, FaultProfile::none()),
        "EcoCloud",
    );
}

#[test]
fn pabfd_interrupt_resume_is_byte_identical() {
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::Pabfd, FaultProfile::none()),
        "PABFD",
    );
}

#[test]
fn glap_interrupt_resume_with_parallel_training_is_byte_identical() {
    // PR 5: the learning phase fans out over a worker pool. A
    // checkpoint cut from a parallel-trained world must restore
    // byte-identically — per-PM RNG streams make training (and hence
    // every checkpointed table) independent of pool width, so the
    // interrupted/resumed legs match the uninterrupted reference even
    // when all three run 4-wide on the in-training pool.
    glap_par::set_default_threads(4);
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::Glap, FaultProfile::faulty(0.05, 0.01, 0.2)),
        "GLAP-parallel",
    );
    glap_par::set_default_threads(0);
}

#[test]
fn glap_interrupt_resume_under_faults_is_byte_identical() {
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::Glap, FaultProfile::faulty(0.05, 0.01, 0.2)),
        "GLAP-faulty",
    );
}

#[test]
fn grmp_interrupt_resume_under_faults_is_byte_identical() {
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::Grmp, FaultProfile::faulty(0.05, 0.01, 0.2)),
        "GRMP-faulty",
    );
}

#[test]
fn ecocloud_interrupt_resume_under_lossy_network_is_byte_identical() {
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::EcoCloud, FaultProfile::lossy(0.1)),
        "EcoCloud-lossy",
    );
}

#[test]
fn pabfd_interrupt_resume_under_faults_is_byte_identical() {
    assert_interrupt_resume_is_byte_identical(
        &scenario(Algorithm::Pabfd, FaultProfile::faulty(0.05, 0.01, 0.2)),
        "PABFD-faulty",
    );
}
