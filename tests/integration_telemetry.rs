//! Telemetry contracts: tracing must be a pure observer. An attached
//! JSONL sink may not perturb a simulation by a single byte, the trace it
//! writes must be schema-valid end-to-end (strict round-trip via the
//! replay digest), and the convergence monitor must certify Theorem 1's
//! non-increasing-diameter claim on a real training run.

use glap::{train_traced, GlapConfig};
use glap_dcsim::{FaultProfile, LinkLatency};
use glap_experiments::{
    build_world, replay_digest, run_scenario, run_scenario_traced, Algorithm, Scenario,
};
use glap_telemetry::{JsonlSink, Phase, SharedBuf, Tracer};

fn scenario(algorithm: Algorithm) -> Scenario {
    Scenario {
        n_pms: 40,
        ratio: 2,
        rep: 3,
        algorithm,
        rounds: 120,
        glap: GlapConfig {
            learning_rounds: 20,
            aggregation_rounds: 10,
            ..Default::default()
        },
        trace_cfg: Default::default(),
        vm_mix: Default::default(),
        fault: Default::default(),
    }
}

/// A profile that exercises every fault path: drops, timeouts (one-way
/// latency 100-400 ms against a 450 ms round-trip budget), and
/// stochastic crash/recovery.
fn nasty_faults() -> FaultProfile {
    FaultProfile {
        drop_prob: 0.2,
        latency: LinkLatency {
            min_ms: 100,
            max_ms: 400,
        },
        timeout_ms: 450,
        crash_rate: 0.01,
        recovery_rate: 0.3,
        crash_schedule: vec![],
        recovery_schedule: vec![],
    }
}

#[test]
fn jsonl_sink_does_not_change_simulation_results() {
    // The satellite determinism contract: attaching a live JSONL sink
    // (events constructed, serialized, and written every round) yields
    // byte-identical results to the untraced run — for every algorithm,
    // with and without fault injection.
    for faulty in [false, true] {
        for algorithm in Algorithm::PAPER_SET {
            let mut sc = scenario(algorithm);
            if faulty {
                sc.fault = FaultProfile::faulty(0.2, 0.01, 0.3);
            }
            let plain = run_scenario(&sc);

            let buf = SharedBuf::new();
            let tracer = Tracer::new(Box::new(JsonlSink::new(Box::new(buf.clone()))));
            let (traced, _) = run_scenario_traced(&sc, &tracer);
            tracer.flush();

            assert_eq!(
                plain.collector.samples,
                traced.collector.samples,
                "{} (faulty={faulty}): tracing changed the simulation",
                algorithm.label()
            );
            assert_eq!(plain.sla, traced.sla, "{}", algorithm.label());
            assert_eq!(plain.wake_ups, traced.wake_ups, "{}", algorithm.label());
            // And the sink actually saw the run.
            assert!(
                tracer.events_emitted() > 0,
                "{}: no events emitted",
                algorithm.label()
            );
            assert_eq!(
                buf.contents().lines().count() as u64,
                tracer.events_emitted()
            );
        }
    }
}

#[test]
fn fault_injected_trace_is_schema_valid_and_complete() {
    // A GLAP run under heavy faults must produce a trace in which every
    // line survives the strict schema round-trip, and which contains the
    // full fault vocabulary: drops, timeouts, vetoes, and crashes.
    let mut sc = scenario(Algorithm::Glap);
    sc.fault = nasty_faults();

    let buf = SharedBuf::new();
    let tracer = Tracer::new(Box::new(JsonlSink::new(Box::new(buf.clone()))));
    let (_result, monitor) = run_scenario_traced(&sc, &tracer);
    tracer.flush();

    let text = buf.contents();
    let digest = replay_digest(text.as_bytes())
        .unwrap_or_else(|e| panic!("trace failed schema validation: {e}"));
    assert_eq!(digest.events as u64, tracer.events_emitted());

    let timed_out: usize = digest.rounds.iter().map(|(_, d)| d.timed_out).sum();
    let crashes: usize = digest.rounds.iter().map(|(_, d)| d.crashes).sum();
    assert!(digest.total_dropped() > 0, "no msg_dropped events");
    assert!(timed_out > 0, "no msg_timed_out events");
    assert!(digest.total_vetoes() > 0, "no migration_vetoed events");
    assert!(crashes > 0, "no pm_crashed events");

    // The digest and the counter registry agree on the fault tallies.
    assert_eq!(
        tracer.counter_total("ev.msg_dropped"),
        digest.total_dropped() as u64
    );
    assert_eq!(tracer.counter_total("ev.msg_timed_out"), timed_out as u64);

    // The GLAP variant also carried a convergence monitor.
    let monitor = monitor.expect("GLAP run with tracer on returns a monitor");
    assert!(!monitor.samples.is_empty());
}

#[test]
fn aggregation_diameter_is_monotone() {
    // Theorem 1, machine-checked: during the aggregation phase each
    // merge replaces a pair of Q-entries with values inside the pair's
    // interval, so the population diameter can never increase.
    let sc = scenario(Algorithm::Glap);
    let (mut dc, mut trace) = build_world(&sc);
    let tracer = Tracer::counting();
    let (_tables, _report, monitor) = train_traced(
        &mut dc,
        &mut trace,
        &sc.glap,
        sc.policy_seed(),
        false,
        &tracer,
    );

    let agg = monitor.diameters(Phase::Aggregation);
    assert_eq!(agg.len(), sc.glap.aggregation_rounds);
    assert!(
        monitor.diameter_is_nonincreasing(Phase::Aggregation),
        "aggregation diameter increased: {agg:?}"
    );
    // Learning was sampled too, and aggregation actually tightened the
    // population (the series is not all-zero).
    assert_eq!(
        monitor.diameters(Phase::Learning).len(),
        sc.glap.learning_rounds
    );
    assert!(agg[0] > 0.0, "population already collapsed before merging");
    assert!(agg[agg.len() - 1] < agg[0], "aggregation never tightened");
}
