//! In-repo stand-in for the `proptest` crate (offline build).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro (with `#![proptest_config(...)]`),
//! `prop_assert*`, `prop_oneof!`, range and tuple strategies,
//! `prop_map`, `any::<T>()`, and `proptest::collection::vec`.
//!
//! Cases are generated from a deterministic per-test seed (an FNV hash
//! of the test name), so failures reproduce exactly across runs. There
//! is no shrinking: a failing case reports its inputs' case index and
//! message, which is enough to replay under the fixed seed.

pub mod test_runner {
    /// Controls how many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    /// The RNG driving case generation.
    pub type TestRng = rand::rngs::SmallRng;

    /// Builds the deterministic RNG for a named property test.
    pub fn new_test_rng(name: &str) -> TestRng {
        use rand::SeedableRng;
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Clone,
        Range<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Clone,
        RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable length specifications for [`vec`].
    pub trait IntoSizeRange {
        /// Returns the `[min, max)` length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }
    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }
    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A strategy for vectors with lengths in `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "collection::vec: empty size range");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy behind [`any`]: the type's full/standard distribution.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: rand::StandardSample> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_standard(rng)
        }
    }

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = AnyStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyStrategy(PhantomData)
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e.0
                    );
                }
            }
        }
    )*};
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::new_test_rng("self_test");
        let s = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn union_picks_every_arm_eventually() {
        let mut rng = crate::test_runner::new_test_rng("union_test");
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::test_runner::new_test_rng("vec_test");
        let s = crate::collection::vec(0u32..5, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn the_macro_itself_works(a in 0u64..100, b in 0u64..100) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
