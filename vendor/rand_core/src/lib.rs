//! In-repo stand-in for the `rand_core` trait crate.
//!
//! The build environment for this repository is fully offline, so the
//! public crates.io crates cannot be fetched. This crate provides the
//! small slice of the `rand_core` 0.6 API the workspace actually uses:
//! [`RngCore`] and [`SeedableRng`] (including the `seed_from_u64`
//! expansion). Only self-consistency matters for the simulator — every
//! run derives from explicit seeds through these traits, so results are
//! reproducible as long as this implementation never changes.

/// A random number generator core: the minimal uniform-bits interface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64: the seed-expansion generator used by `seed_from_u64`.
/// Public so downstream crates can reuse the same expansion.
pub fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from the raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64_next(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..8], &1u64.to_le_bytes());
        assert_eq!(&buf[8..], &2u64.to_le_bytes()[..3]);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(splitmix64_next(&mut a), splitmix64_next(&mut b));
        assert_ne!(splitmix64_next(&mut a), 0);
    }
}
