//! In-repo stand-in for the `criterion` benchmark harness (offline
//! build). Provides the API surface the workspace benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `iter_batched`, `Throughput`, `sample_size`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop: a short warm-up, then timed batches
//! until a fixed measurement budget elapses, reporting the mean
//! time per iteration. No statistics engine, plots, or baselines.

use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement (accepted for API
/// compatibility; this harness times per call either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: few per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units-of-work metadata attached to a group (printed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs closures under measurement.
pub struct Bencher {
    /// Total measured time across iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            budget,
        }
    }

    /// Times `routine` repeatedly until the measurement budget elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        std::hint::black_box(routine());
        while self.elapsed < self.budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter`], with an untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        while self.elapsed < self.budget {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name}: no measured iterations");
            return;
        }
        let per_iter = self.elapsed / self.iters as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  ({:.1} Kelem/s)", n as f64 / per_iter.as_secs_f64() / 1e3)
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("{name}: {per_iter:?}/iter over {} iters{rate}", self.iters);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the stub quick: benches exist for relative comparison
        // during development, not publication-grade statistics.
        // `GLAP_BENCH_BUDGET_MS` overrides the per-bench measurement
        // budget (CI smoke jobs shrink it; local timing runs can grow
        // it for steadier means).
        let ms = std::env::var("GLAP_BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Parses command-line arguments (accepted and ignored: the stub
    /// has no filters or baseline management).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the stub
    /// uses a time budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Attaches throughput metadata, reported next to timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name.as_ref()), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
