//! Inert `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the in-repo `serde` stand-in. They emit empty marker-trait impls —
//! just enough for derive sites to compile in the offline build. The
//! item name is recovered by scanning the raw token stream (no `syn`),
//! which covers the non-generic structs and enums this workspace
//! derives on.

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier following the `struct`/`enum`/`union` keyword.
fn item_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(ident) = tt {
            let s = ident.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde stub derive: could not find item name in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
