//! In-repo stand-in for the `rand_chacha` crate (offline build).
//!
//! Implements a real ChaCha8 block function with a 64-bit block counter
//! and a 64-bit stream id, exposing the subset of the 0.3 API the
//! workspace uses: [`ChaCha8Rng`] with `seed_from_u64` and
//! [`ChaCha8Rng::set_stream`], plus the `rand_core` re-export. Output
//! bits differ from upstream `rand_chacha` (the word-ordering details
//! were not replicated); the simulator only requires self-consistent
//! streams under fixed seeds.

pub extern crate rand_core;

use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The full serializable state of a [`ChaCha8Rng`]: key, block counter,
/// stream id, the current output block and the read position within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaCha8State {
    /// The 256-bit key derived from the seed.
    pub key: [u32; 8],
    /// 64-bit block counter (already incremented past the current block).
    pub counter: u64,
    /// 64-bit stream id.
    pub stream: u64,
    /// The current output block.
    pub buf: [u32; 16],
    /// Words of `buf` already consumed (16 = exhausted, refill pending).
    pub idx: u32,
}

/// The ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    idx: usize,
}

impl ChaCha8Rng {
    /// Selects the stream id, so one seed yields many independent
    /// random sequences.
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            self.idx = 16; // force a refill from the new stream
        }
    }

    /// Returns the current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Exports the complete generator state, so a simulation checkpoint
    /// can restore the exact position within the stream (including the
    /// partially consumed output block).
    pub fn export_state(&self) -> ChaCha8State {
        ChaCha8State {
            key: self.key,
            counter: self.counter,
            stream: self.stream,
            buf: self.buf,
            idx: self.idx as u32,
        }
    }

    /// Reconstructs a generator from an exported state. The next outputs
    /// are bit-identical to what the original generator would have
    /// produced after [`ChaCha8Rng::export_state`].
    pub fn from_state(state: ChaCha8State) -> Self {
        ChaCha8Rng {
            key: state.key,
            counter: state.counter,
            stream: state.stream,
            buf: state.buf,
            idx: (state.idx as usize).min(16),
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let initial = state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonals.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes(seed[i * 4..(i + 1) * 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        b.set_stream(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_stream_is_idempotent_for_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.set_stream(3);
        let first = a.next_u64();
        a.set_stream(3); // no-op: must not reset the buffer position
        let second = a.next_u64();
        let mut b = ChaCha8Rng::seed_from_u64(5);
        b.set_stream(3);
        assert_eq!(first, b.next_u64());
        assert_eq!(second, b.next_u64());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn export_and_restore_resume_mid_block() {
        let mut a = ChaCha8Rng::seed_from_u64(77);
        a.set_stream(9);
        // Consume an odd number of words so the export lands mid-block.
        for _ in 0..21 {
            a.next_u32();
        }
        let state = a.export_state();
        let mut b = ChaCha8Rng::from_state(state);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a, b);
    }

    #[test]
    fn export_restore_is_identity_when_fresh() {
        let a = ChaCha8Rng::seed_from_u64(3);
        let b = ChaCha8Rng::from_state(a.export_state());
        assert_eq!(a, b);
    }
}
