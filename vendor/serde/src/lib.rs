//! In-repo stand-in for the `serde` crate (offline build).
//!
//! The workspace derives `Serialize`/`Deserialize` as forward-looking
//! markers but never actually serializes anything (CSV output is
//! hand-rolled in `glap-experiments`). These inert marker traits and
//! the matching derive macros in `serde_derive` satisfy the derives
//! without pulling the real dependency tree into the offline build.
//! When real serialization lands, swap this stub for the actual crate.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
