//! In-repo stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment is fully offline, so crates.io is unreachable;
//! this crate supplies exactly the surface the workspace uses: the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), the
//! [`RngCore`]/[`SeedableRng`] re-exports, [`rngs::SmallRng`]
//! (xoshiro256++), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The exact bit streams differ from upstream `rand`, which is fine:
//! the simulator's reproducibility contract is self-consistency under a
//! fixed seed, not cross-library equality.

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 32 random bits to a uniform `f32` in `[0, 1)`.
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform integer in `[0, n)` via the widening-multiply method.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

/// Types that can be sampled uniformly from their "standard"
/// distribution (the counterpart of `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}
impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    // Full-domain inclusive range: every 64-bit pattern valid.
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * $unit(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * $unit(rng)
            }
        }
    )*};
}
impl_float_range!(f64, unit_f64; f32, unit_f32);

/// The user-facing random number generator extension trait.
pub trait Rng: RngCore {
    /// Samples a value from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use rand_core::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut sm = 0x9E37_79B9_7F4A_7C15u64;
                for w in &mut s {
                    *w = rand_core::splitmix64_next(&mut sm);
                }
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&c));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(7);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut rng).is_none());
        assert_eq!([42].choose(&mut rng), Some(&42));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
