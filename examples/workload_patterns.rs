//! Tour of the workload substrate: parametric patterns, the
//! Google-cluster-like generator's statistics, and CSV round-tripping.
//!
//! ```sh
//! cargo run --release --example workload_patterns
//! ```

use glap_cluster::Resources;
use glap_workload::{save_csv, GoogleLikeTraceGen, Pattern};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Renders a value in [0, 1] as a crude ASCII bar.
fn bar(x: f64) -> String {
    let n = (x * 40.0).round() as usize;
    format!("{:<40} {:.2}", "#".repeat(n.min(40)), x)
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);

    println!("== parametric patterns (CPU track, every 30th round) ==\n");
    let mut patterns: Vec<(&str, Pattern)> = vec![
        (
            "stable",
            Pattern::Stable {
                level: Resources::splat(0.5),
                noise: 0.02,
            },
        ),
        (
            "mean-reverting",
            Pattern::MeanReverting {
                mean: Resources::splat(0.35),
                phi: 0.9,
                sigma: 0.08,
                state: Resources::splat(0.35),
            },
        ),
        (
            "diurnal",
            Pattern::Diurnal {
                base: Resources::splat(0.45),
                amplitude: 0.3,
                period: 240,
                phase: 0,
                noise: 0.0,
            },
        ),
        (
            "bursty",
            Pattern::Bursty {
                low: Resources::splat(0.1),
                high: Resources::splat(0.85),
                burst_prob: 0.08,
                mean_burst_len: 3.0,
                remaining_burst: 0,
            },
        ),
        (
            "on/off",
            Pattern::OnOff {
                on: Resources::splat(0.7),
                off: Resources::splat(0.05),
                on_rounds: 60,
                off_rounds: 60,
            },
        ),
    ];
    for (name, p) in &mut patterns {
        println!("{name}:");
        for t in (0..240).step_by(30) {
            println!("  r{t:>3} {}", bar(p.sample(t, &mut rng).cpu()));
        }
        println!();
    }

    println!("== Google-cluster-like trace statistics ==\n");
    let gen = GoogleLikeTraceGen::default_stats();
    let trace = gen.generate(500, 720, &mut rng);
    println!("  500 VMs × 720 rounds (one day at 2-minute resolution)");
    println!("  mean CPU utilization of request: {:.3}", trace.mean_cpu());
    println!("  mean MEM utilization of request: {:.3}", trace.mean_mem());
    let rho: f64 = (0..500).map(|vm| trace.cpu_lag1_autocorr(vm)).sum::<f64>() / 500.0;
    println!("  mean lag-1 CPU autocorrelation:  {:.3}", rho);

    // Aggregate demand over the day: the diurnal swing that stresses
    // threshold-based consolidation.
    println!("\n  aggregate CPU demand over the day (normalized to its mean):");
    let totals: Vec<f64> = (0..720)
        .map(|r| (0..500).map(|vm| trace.get(vm, r).cpu()).sum::<f64>())
        .collect();
    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    for r in (0..720).step_by(60) {
        println!("  h{:>2} {}", r / 30, bar(totals[r] / mean / 2.0));
    }

    let path = std::env::temp_dir().join("glap_example_trace.csv");
    save_csv(&trace, &path).expect("write trace CSV");
    println!(
        "\n  trace saved to {} (schema: vm,round,cpu,mem)",
        path.display()
    );
}
