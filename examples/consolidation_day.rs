//! A head-to-head consolidation day: GLAP vs GRMP vs EcoCloud vs PABFD on
//! the *identical* workload and initial placement, with a per-hour
//! progress printout — the paper's Figure 6/7 story at example scale.
//!
//! ```sh
//! cargo run --release --example consolidation_day
//! ```

use glap_baselines::bfd_baseline;
use glap_dcsim::run_simulation;
use glap_experiments::{build_policy, build_world, Algorithm, Scenario};
use glap_metrics::MetricsCollector;
use glap_workload::OffsetTrace;

fn main() {
    let algorithms = [
        Algorithm::Glap,
        Algorithm::Grmp,
        Algorithm::EcoCloud,
        Algorithm::Pabfd,
    ];
    println!("24-hour consolidation day, 150 PMs, 450 VMs, identical workload\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "algorithm", "active", "overloaded", "migrations", "energy(kJ)", "bfd-bins"
    );

    for algorithm in algorithms {
        let sc = Scenario {
            rounds: 720,
            ..Scenario::paper(150, 3, 0, algorithm)
        };
        let (mut dc, trace) = build_world(&sc);
        let mut policy = build_policy(&sc, &dc, &trace);
        let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
        let mut metrics = MetricsCollector::new();
        run_simulation(
            &mut dc,
            &mut day,
            policy.as_mut(),
            &mut [&mut metrics],
            sc.rounds,
            sc.policy_seed(),
        );
        let (_, med_over, _) = metrics.overloaded_summary();
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>12} {:>12.1} {:>10}",
            algorithm.label(),
            metrics.mean_active_pms(),
            med_over,
            metrics.total_migrations(),
            metrics.total_migration_energy_j() / 1000.0,
            bfd_baseline(&dc),
        );
    }

    println!(
        "\nreading the table: GLAP and EcoCloud keep a few more PMs active than the \
         offline BFD packing and in exchange almost never overload; GRMP packs below \
         the baseline and pays for it in overloaded PMs; PABFD migrates continuously."
    );
}
