//! Watch the two-phase gossip learning protocol converge (the paper's
//! Figure 5 at example scale): local training alone (WOG) plateaus well
//! below full agreement, then the aggregation phase (WG) drives every
//! PM's Q-tables to identical values in a handful of gossip rounds.
//!
//! ```sh
//! cargo run --release --example learning_convergence
//! ```

use glap::{train, GlapConfig, TrainPhase};
use glap_experiments::{build_world, Algorithm, Scenario};

fn bar(x: f64) -> String {
    let n = (x.clamp(0.0, 1.0) * 50.0).round() as usize;
    format!("{:<50} {:.3}", "#".repeat(n), x)
}

fn main() {
    let glap = GlapConfig {
        learning_rounds: 40,
        aggregation_rounds: 15,
        ..Default::default()
    };
    let sc = Scenario {
        glap,
        ..Scenario::paper(150, 3, 0, Algorithm::Glap)
    };
    let (mut dc, mut trace) = build_world(&sc);

    println!("150 PMs, 450 VMs: mean pairwise cosine similarity of Q-tables\n");
    let (_tables, report) = train(&mut dc, &mut trace, &glap, sc.policy_seed(), true);

    let mut last_phase = None;
    for (phase, round, sim) in &report.similarity {
        if last_phase != Some(*phase) {
            match phase {
                TrainPhase::Learning => {
                    println!("-- learning phase (WOG): every eligible PM trains locally --")
                }
                TrainPhase::Aggregation => {
                    println!("\n-- aggregation phase (WG): push-pull gossip merging --")
                }
            }
            last_phase = Some(*phase);
        }
        if *phase == TrainPhase::Aggregation || round % 4 == 0 {
            println!("  cycle {round:>3} {}", bar(*sim));
        }
    }

    let final_sim = report.similarity.last().map_or(0.0, |&(_, _, s)| s);
    println!(
        "\nfinal similarity {final_sim:.4} — the gossip merge (average shared pairs, adopt \
         missing ones) unifies all {} PMs' knowledge, which is what lets a sender decide \
         π_in on behalf of its target without an extra round trip.",
        dc.n_pms(),
    );
}
