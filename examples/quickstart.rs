//! Quickstart: build a small data center, train GLAP's gossip learner,
//! consolidate for a simulated day and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use glap::{train, unified_table, GlapConfig, GlapPolicy};
use glap_cluster::{DataCenter, DataCenterConfig, VmSpec};
use glap_dcsim::{run_simulation, stream_rng, Stream};
use glap_metrics::{sla_metrics, MetricsCollector};
use glap_workload::{GoogleLikeTraceGen, OffsetTrace};

fn main() {
    let seed = 42;
    let n_pms = 100;
    let n_vms = 300; // VM:PM ratio 3

    // 1. A data center of HP ProLiant ML110 G5 machines hosting
    //    EC2-micro-sized VMs, randomly placed (the paper's §V-A setup).
    let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
    for _ in 0..n_vms {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    dc.random_placement(&mut stream_rng(seed, Stream::Placement));

    // 2. A Google-cluster-like workload trace: training prefix + one day.
    let cfg = GlapConfig::default();
    let day_rounds = 720u64; // 24 h of 2-minute rounds
    let total = cfg.learning_rounds + day_rounds as usize;
    let trace = GoogleLikeTraceGen::default_stats().generate(
        n_vms,
        total,
        &mut stream_rng(seed, Stream::Trace),
    );

    // 3. Train the two-phase gossip learner on a throwaway copy of the
    //    world (the paper pre-trains for 700 rounds before the day).
    let mut train_dc = dc.clone();
    let mut train_trace = trace.clone();
    let (tables, report) = train(&mut train_dc, &mut train_trace, &cfg, seed, false);
    println!(
        "trained {} PMs with {} Bellman updates; unified table holds {} (state, action) pairs",
        report.pms_trained,
        report.updates,
        unified_table(&tables).trained_pairs(),
    );

    // 4. Run the consolidation day with the unified Q-tables.
    let mut policy = GlapPolicy::with_shared_table(cfg, unified_table(&tables));
    let mut day = OffsetTrace::new(&trace, cfg.learning_rounds as u64);
    let mut metrics = MetricsCollector::new();
    run_simulation(
        &mut dc,
        &mut day,
        &mut policy,
        &mut [&mut metrics],
        day_rounds,
        seed,
    );

    // 5. Report.
    let sla = sla_metrics(&dc);
    let (p10, med, p90) = metrics.overloaded_summary();
    println!("after 24 h:");
    println!("  active PMs:        {} of {n_pms}", dc.active_pm_count());
    println!("  migrations:        {}", metrics.total_migrations());
    println!("  vetoed migrations: {}", policy.vetoes);
    println!("  overloaded PMs:    p10 {p10:.1} / median {med:.1} / p90 {p90:.1} per round");
    println!(
        "  migration energy:  {:.1} kJ",
        metrics.total_migration_energy_j() / 1000.0
    );
    println!(
        "  SLA:               SLAVO {:.2e}, SLALM {:.2e}, SLAV {:.2e}",
        sla.slavo, sla.slalm, sla.slav
    );
}
