//! Topology-aware consolidation (the paper's future work, implemented):
//! watch rack-aware GLAP drain whole racks so their top-of-rack switches
//! can power down, versus standard GLAP leaving every rack partially
//! occupied.
//!
//! ```sh
//! cargo run --release --example rack_consolidation
//! ```

use glap::{train, unified_table, GlapConfig, GlapPolicy};
use glap_cluster::{DataCenter, DataCenterConfig, Topology, VmSpec};
use glap_dcsim::{run_simulation, stream_rng, Stream};
use glap_workload::{GoogleLikeTraceGen, OffsetTrace};

fn occupancy_bar(occ: &[usize], per_rack: usize) -> String {
    occ.iter()
        .map(|&o| {
            let tenths = (o as f64 / per_rack as f64 * 8.0).round() as usize;
            match tenths {
                0 => " off ".to_string(),
                t => format!("[{:<8}]", "#".repeat(t.min(8))),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn run(rack_aware: bool) -> (DataCenter, Topology) {
    let seed = 11;
    let n_pms = 120;
    let topology = Topology {
        pms_per_rack: 15,
        ..Topology::default()
    };
    let cfg = GlapConfig {
        learning_rounds: 40,
        aggregation_rounds: 12,
        ..Default::default()
    };

    let mut dc = DataCenter::new(DataCenterConfig::paper_with_topology(n_pms, topology));
    for _ in 0..n_pms * 3 {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    dc.random_placement(&mut stream_rng(seed, Stream::Placement));
    let trace = GoogleLikeTraceGen::default_stats().generate(
        n_pms * 3,
        cfg.learning_rounds + 480,
        &mut stream_rng(seed, Stream::Trace),
    );

    let mut train_dc = dc.clone();
    let mut train_trace = trace.clone();
    let (tables, _) = train(&mut train_dc, &mut train_trace, &cfg, seed, false);
    let mut policy = GlapPolicy::with_shared_table(cfg, unified_table(&tables));
    policy.rack_aware = rack_aware;

    let mut day = OffsetTrace::new(&trace, cfg.learning_rounds as u64);
    run_simulation(&mut dc, &mut day, &mut policy, &mut [], 480, seed);
    (dc, topology)
}

fn main() {
    println!("120 PMs in 8 racks of 15, 360 VMs, 16 simulated hours\n");
    for (name, rack_aware) in [("standard GLAP", false), ("rack-aware GLAP", true)] {
        let (dc, topo) = run(rack_aware);
        let occ = topo.rack_occupancy(&dc);
        println!("{name}:");
        println!(
            "  rack occupancy  {}",
            occupancy_bar(&occ, topo.pms_per_rack)
        );
        println!(
            "  active PMs {}  |  powered racks {} of {}  |  switch power {:.0} W",
            dc.active_pm_count(),
            topo.active_racks(&dc),
            topo.rack_count(dc.n_pms()),
            topo.switch_power_w(&dc),
        );
        println!();
    }
    println!(
        "rack-aware GLAP ranks racks and routes consolidation down the ranking, so \
         entire racks empty and their switches power off — the energy the paper's \
         future work goes after."
    );
}
