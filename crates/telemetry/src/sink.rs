//! Event sinks: where a trace goes.
//!
//! The [`EventSink`] trait is deliberately tiny — one `emit` per event —
//! so instrumented code pays nothing beyond an enum construction when a
//! sink is attached and a single branch when it is not (the tracer's
//! no-op path never constructs the event).

use crate::event::Event;
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

/// Receives every emitted event, in order.
pub trait EventSink {
    /// Consume one event.
    fn emit(&mut self, event: &Event);
    /// Flush any buffered output (end of run).
    fn flush(&mut self) {}
}

/// Discards everything. Used by [`crate::Tracer::counting`] when only
/// the counter registry / convergence monitor are wanted.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _event: &Event) {}
}

/// Collects events in memory; the handle is cloneable so tests can keep
/// one end while the tracer owns the other.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    events: Rc<RefCell<Vec<Event>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all events emitted so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Number of events emitted so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

/// Writes one JSON object per line (the schema on
/// [`Event::to_json`]) to any `Write` target.
pub struct JsonlSink {
    w: BufWriter<Box<dyn Write>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new(w: Box<dyn Write>) -> Self {
        JsonlSink {
            w: BufWriter::new(w),
        }
    }

    /// Creates (truncates) a trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(File::create(path)?)))
    }
}

impl EventSink for JsonlSink {
    fn emit(&mut self, event: &Event) {
        // Errors are deliberately swallowed: telemetry must never abort
        // a simulation. A failed write surfaces as a truncated trace.
        let _ = self.w.write_all(event.to_json().as_bytes());
        let _ = self.w.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}

/// A `Write` target backed by a shared in-memory buffer — lets tests
/// hand a [`JsonlSink`] to a tracer and still read what it wrote.
#[derive(Debug, Default, Clone)]
pub struct SharedBuf {
    buf: Rc<RefCell<Vec<u8>>>,
}

impl SharedBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered bytes as a string (the JSONL text).
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.buf.borrow()).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.buf.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Phase};

    fn ev(seq: u64) -> Event {
        Event {
            phase: Phase::Run,
            round: 3,
            seq,
            kind: EventKind::PmSlept { pm: 7 },
        }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        for s in 0..5 {
            writer.emit(&ev(s));
        }
        let got = sink.events();
        assert_eq!(got.len(), 5);
        assert!(got.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf = SharedBuf::new();
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.emit(&ev(0));
        sink.emit(&ev(1));
        sink.flush();
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let e = Event::from_json(line).unwrap();
            assert_eq!(e.to_json(), line);
        }
    }
}
