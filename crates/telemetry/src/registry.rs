//! Counter and histogram registry.
//!
//! Counters are monotone `u64` totals keyed by dotted names
//! (`ev.msg_dropped`, `cyclon.bytes`, …). Calling
//! [`CounterRegistry::end_round`] snapshots the *delta* of every counter
//! since the previous snapshot, so the CSV export is a per-round series
//! aligned with the figures. Histograms are fixed-bucket (cumulative-
//! style bounds) and exported separately.

use crate::event::Phase;
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};
use std::collections::BTreeMap;

/// Default latency buckets (milliseconds, upper bounds).
pub const LATENCY_BOUNDS_MS: [f64; 8] = [5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0];

/// A fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets; one overflow bucket follows.
    pub bounds: Vec<f64>,
    /// Observation counts per bucket (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// A histogram with the given finite bucket bounds (ascending).
    pub fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One per-round snapshot: the delta of every counter that moved.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Phase the round belongs to.
    pub phase: Phase,
    /// Round index within the phase.
    pub round: u64,
    /// `(counter name, delta since previous snapshot)`, name-sorted.
    pub deltas: Vec<(String, u64)>,
}

/// The registry: counter totals, per-round snapshots and histograms.
#[derive(Debug, Clone, Default)]
pub struct CounterRegistry {
    totals: BTreeMap<String, u64>,
    at_last_snapshot: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
    /// All taken snapshots, in order.
    pub snapshots: Vec<CounterSnapshot>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.totals.get_mut(name) {
            *v += delta;
        } else {
            self.totals.insert(name.to_string(), delta);
        }
    }

    /// Records a latency-style observation into the named histogram
    /// (created with [`LATENCY_BOUNDS_MS`] on first use).
    pub fn observe(&mut self, name: &str, v: f64) {
        if let Some(h) = self.hists.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::new(LATENCY_BOUNDS_MS.to_vec());
            h.observe(v);
            self.hists.insert(name.to_string(), h);
        }
    }

    /// Current total of a counter (0 if never touched).
    pub fn total(&self, name: &str) -> u64 {
        self.totals.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Closes a round: snapshots every counter's delta since the last
    /// snapshot (counters that did not move are omitted from the row).
    pub fn end_round(&mut self, phase: Phase, round: u64) {
        let mut deltas = Vec::new();
        for (name, &total) in &self.totals {
            let prev = self.at_last_snapshot.get(name).copied().unwrap_or(0);
            if total != prev {
                deltas.push((name.clone(), total - prev));
            }
        }
        self.at_last_snapshot = self.totals.clone();
        self.snapshots.push(CounterSnapshot {
            phase,
            round,
            deltas,
        });
    }

    /// Wide-format CSV of the per-round snapshots: one row per round,
    /// one column per counter name that ever moved.
    pub fn counters_csv(&self) -> String {
        let mut names: Vec<&str> = self.totals.keys().map(String::as_str).collect();
        names.sort_unstable();
        let mut out = String::from("phase,round");
        for n in &names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for snap in &self.snapshots {
            out.push_str(snap.phase.tag());
            out.push(',');
            out.push_str(&snap.round.to_string());
            for n in &names {
                out.push(',');
                let d = snap
                    .deltas
                    .iter()
                    .find(|(k, _)| k == n)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                out.push_str(&d.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Long-format CSV of every histogram:
    /// `histogram,bucket_le,count` rows plus a `sum`/`count` summary.
    pub fn histograms_csv(&self) -> String {
        let mut out = String::from("histogram,bucket_le,count\n");
        for (name, h) in &self.hists {
            for (i, &c) in h.counts.iter().enumerate() {
                let bound = h
                    .bounds
                    .get(i)
                    .map(|b| format!("{b}"))
                    .unwrap_or_else(|| "inf".to_string());
                out.push_str(&format!("{name},{bound},{c}\n"));
            }
            out.push_str(&format!("{name},sum,{}\n", h.sum));
            out.push_str(&format!("{name},count,{}\n", h.count));
        }
        out
    }
}

impl Checkpointable for CounterRegistry {
    fn save(&self, w: &mut Writer) {
        w.put_usize(self.totals.len());
        for (name, &v) in &self.totals {
            w.put_str(name);
            w.put_u64(v);
        }
        w.put_usize(self.at_last_snapshot.len());
        for (name, &v) in &self.at_last_snapshot {
            w.put_str(name);
            w.put_u64(v);
        }
        w.put_usize(self.hists.len());
        for (name, h) in &self.hists {
            w.put_str(name);
            w.put_f64_slice(&h.bounds);
            w.put_usize(h.counts.len());
            for &c in &h.counts {
                w.put_u64(c);
            }
            w.put_f64(h.sum);
            w.put_u64(h.count);
        }
        w.put_usize(self.snapshots.len());
        for s in &self.snapshots {
            w.put_str(s.phase.tag());
            w.put_u64(s.round);
            w.put_usize(s.deltas.len());
            for (n, d) in &s.deltas {
                w.put_str(n);
                w.put_u64(*d);
            }
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let mut totals = BTreeMap::new();
        for _ in 0..r.get_usize()? {
            let name = r.get_str()?;
            totals.insert(name, r.get_u64()?);
        }
        let mut at_last_snapshot = BTreeMap::new();
        for _ in 0..r.get_usize()? {
            let name = r.get_str()?;
            at_last_snapshot.insert(name, r.get_u64()?);
        }
        let mut hists = BTreeMap::new();
        for _ in 0..r.get_usize()? {
            let name = r.get_str()?;
            let bounds = r.get_f64_slice()?;
            let n_counts = r.get_usize()?;
            if n_counts != bounds.len() + 1 {
                return Err(SnapshotError::Corrupt(format!(
                    "histogram `{name}` has {n_counts} buckets for {} bounds",
                    bounds.len()
                )));
            }
            let mut counts = Vec::with_capacity(n_counts);
            for _ in 0..n_counts {
                counts.push(r.get_u64()?);
            }
            let sum = r.get_f64()?;
            let count = r.get_u64()?;
            hists.insert(
                name,
                Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                },
            );
        }
        let n_snaps = r.get_usize()?;
        let mut snapshots = Vec::with_capacity(n_snaps.min(1 << 20));
        for _ in 0..n_snaps {
            let tag = r.get_str()?;
            let phase = Phase::parse(&tag)
                .ok_or_else(|| SnapshotError::Corrupt(format!("unknown phase tag `{tag}`")))?;
            let round = r.get_u64()?;
            let n_deltas = r.get_usize()?;
            let mut deltas = Vec::with_capacity(n_deltas.min(1 << 20));
            for _ in 0..n_deltas {
                let n = r.get_str()?;
                deltas.push((n, r.get_u64()?));
            }
            snapshots.push(CounterSnapshot {
                phase,
                round,
                deltas,
            });
        }
        self.totals = totals;
        self.at_last_snapshot = at_last_snapshot;
        self.hists = hists;
        self.snapshots = snapshots;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_record_deltas_not_totals() {
        let mut r = CounterRegistry::new();
        r.add("a", 3);
        r.end_round(Phase::Run, 0);
        r.add("a", 2);
        r.add("b", 1);
        r.end_round(Phase::Run, 1);
        r.end_round(Phase::Run, 2);
        assert_eq!(r.total("a"), 5);
        assert_eq!(r.snapshots[0].deltas, vec![("a".to_string(), 3)]);
        assert_eq!(
            r.snapshots[1].deltas,
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
        assert!(r.snapshots[2].deltas.is_empty());
    }

    #[test]
    fn csv_has_stable_columns_and_zero_fills() {
        let mut r = CounterRegistry::new();
        r.add("z", 1);
        r.end_round(Phase::Learning, 0);
        r.add("a", 4);
        r.end_round(Phase::Run, 1);
        let csv = r.counters_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("phase,round,a,z"));
        assert_eq!(lines.next(), Some("learn,0,0,1"));
        assert_eq!(lines.next(), Some("run,1,4,0"));
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert!((h.mean() - 55.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_round_trip_is_byte_identical() {
        let mut r = CounterRegistry::new();
        r.add("cyclon.bytes", 3);
        r.observe("net.rtt_ms", 12.0);
        r.end_round(Phase::Learning, 0);
        r.add("cyclon.bytes", 2);
        r.add("ev.pm_slept", 1);
        r.end_round(Phase::Run, 1);

        let mut w = Writer::new();
        r.save(&mut w);
        let bytes = w.into_bytes();

        let mut restored = CounterRegistry::new();
        restored.restore(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.total("cyclon.bytes"), 5);
        assert_eq!(restored.snapshots, r.snapshots);
        assert_eq!(restored.counters_csv(), r.counters_csv());
        assert_eq!(restored.histograms_csv(), r.histograms_csv());

        let mut w2 = Writer::new();
        restored.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn restore_rejects_truncated_state() {
        let mut good = CounterRegistry::new();
        good.observe("h", 1.0);
        let mut w = Writer::new();
        good.save(&mut w);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 1);
        let mut r2 = CounterRegistry::new();
        assert!(r2.restore(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn histograms_csv_lists_buckets() {
        let mut r = CounterRegistry::new();
        r.observe("net.rtt_ms", 12.0);
        r.observe("net.rtt_ms", 2000.0);
        let csv = r.histograms_csv();
        assert!(csv.contains("net.rtt_ms,25,1\n"));
        assert!(csv.contains("net.rtt_ms,inf,1\n"));
        assert!(csv.contains("net.rtt_ms,count,2\n"));
    }
}
