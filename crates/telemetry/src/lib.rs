//! # glap-telemetry
//!
//! Protocol-level observability for the GLAP reproduction: a structured
//! event trace, a counter/histogram registry, and a convergence monitor.
//! This crate has no dependencies, so every layer of the workspace
//! (`dcsim`, `cyclon`, `cluster`, `core`, `baselines`, `experiments`)
//! can emit into one shared vocabulary.
//!
//! ## Three pillars
//!
//! 1. **Event trace** — [`Tracer::emit`] takes a typed [`EventKind`]
//!    (message fates, shuffles, Q-merges, migration lifecycle, PM
//!    crash/recover/sleep/wake, convergence samples), stamps it with the
//!    current phase/round and a globally monotone sequence number, and
//!    forwards it to an [`EventSink`]. [`JsonlSink`] serialises one
//!    event per line in the documented schema (see [`Event::to_json`]);
//!    [`Event::from_json`] is the strict inverse, so traces are
//!    round-trip validatable without serde (the vendored serde is an
//!    inert stub — the codec here is hand-rolled).
//! 2. **Counter registry** — every emit bumps an `ev.<kind>` counter;
//!    instrumented code adds protocol counters (gossip bytes, merge
//!    attempts, veto counts) and latency histograms via [`Tracer::add`]
//!    / [`Tracer::observe_ms`]. [`Tracer::end_round`] snapshots
//!    per-round deltas; [`CounterRegistry::counters_csv`] exports the
//!    per-round series.
//! 3. **Convergence monitor** — [`ConvergenceMonitor`] tracks the
//!    Q-table population diameter (max pairwise L∞ distance), mean
//!    cosine similarity vs. the unified reference table and overlay
//!    health per training cycle, and can certify that the diameter is
//!    non-increasing during aggregation (Theorem 1's claim).
//!
//! ## Overhead guarantees
//!
//! The default tracer is [`Tracer::off`]: every method short-circuits on
//! one `Option` discriminant, constructs nothing, and — the load-bearing
//! property — never touches any RNG stream, so enabling the telemetry
//! *code path* cannot perturb the simulation. Enabling a *sink* only
//! adds work outside the simulation's random sequence; the
//! `integration_telemetry` tests pin both properties (byte-identical
//! results with the sink off and with the JSONL sink on).

#![warn(missing_docs)]

pub mod convergence;
pub mod event;
pub mod registry;
pub mod sink;
pub mod tracer;

pub use convergence::{
    cosine, population_diameter, ConvergenceMonitor, ConvergenceSample, OverlayHealth,
};
pub use event::{AbortReason, Event, EventKind, MsgOp, ParseError, Phase};
pub use registry::{CounterRegistry, CounterSnapshot, Histogram};
pub use sink::{EventSink, JsonlSink, MemorySink, NullSink, SharedBuf};
pub use tracer::{TraceCore, Tracer};
