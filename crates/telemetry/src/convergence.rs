//! Convergence monitor: Theorem 1's claim as a live-tracked series.
//!
//! Per sampling point (one training cycle) the monitor records the
//! *population diameter* — the maximum pairwise L∞ (Chebyshev) distance
//! between any two alive Q-tables — plus the mean cosine similarity to a
//! reference (converged/unified) table and basic overlay health.
//!
//! The diameter is the key series: a gossip merge replaces a pair of
//! entries with values inside the pair's `[min, max]` interval, so the
//! per-coordinate population range — and therefore the diameter, its
//! maximum over coordinates — can never increase during aggregation.
//! That turns Theorem 1's qualitative claim into a per-run machine-
//! checkable invariant (see [`ConvergenceMonitor::diameter_is_nonincreasing`]).
//!
//! The L∞ pairwise maximum equals the maximum over coordinates of
//! `(max_i v_i - min_i v_i)`, so it is computed in `O(n·d)` rather than
//! `O(n²·d)`.

use crate::event::Phase;

/// Overlay health at a sampling point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlayHealth {
    /// Alive overlay nodes.
    pub alive: usize,
    /// Whether alive nodes form one connected component.
    pub connected: bool,
    /// Smallest in-degree among alive nodes.
    pub min_in_degree: usize,
    /// Largest in-degree among alive nodes.
    pub max_in_degree: usize,
    /// Mean in-degree among alive nodes.
    pub mean_in_degree: f64,
}

impl OverlayHealth {
    /// Health derived from an in-degree distribution and a partition
    /// check (both provided by the overlay).
    pub fn from_in_degrees(in_degrees: &[usize], alive: &[bool], connected: bool) -> Self {
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0usize;
        let mut n = 0usize;
        for (i, &d) in in_degrees.iter().enumerate() {
            if alive.get(i).copied().unwrap_or(true) {
                min = min.min(d);
                max = max.max(d);
                sum += d;
                n += 1;
            }
        }
        if n == 0 {
            min = 0;
        }
        OverlayHealth {
            alive: n,
            connected,
            min_in_degree: min,
            max_in_degree: max,
            mean_in_degree: if n == 0 { 0.0 } else { sum as f64 / n as f64 },
        }
    }
}

/// One sampling point of the monitor.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSample {
    /// Phase the cycle belongs to.
    pub phase: Phase,
    /// Cycle index within the phase.
    pub cycle: u64,
    /// Max pairwise L∞ distance across alive tables.
    pub diameter: f64,
    /// Mean cosine similarity of alive tables vs. the reference table.
    pub mean_cosine_to_ref: f64,
    /// Overlay health at sampling time.
    pub health: OverlayHealth,
}

/// Collects [`ConvergenceSample`]s over a training run.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceMonitor {
    /// All samples, in sampling order.
    pub samples: Vec<ConvergenceSample>,
}

/// Max pairwise L∞ distance over a population of equal-length vectors,
/// computed per-coordinate in one pass (`O(n·d)`).
pub fn population_diameter<'a, I>(tables: I) -> f64
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut lo: Vec<f64> = Vec::new();
    let mut hi: Vec<f64> = Vec::new();
    for t in tables {
        if lo.is_empty() {
            lo = t.to_vec();
            hi = t.to_vec();
            continue;
        }
        debug_assert_eq!(lo.len(), t.len());
        for (i, &v) in t.iter().enumerate() {
            if v < lo[i] {
                lo[i] = v;
            }
            if v > hi[i] {
                hi[i] = v;
            }
        }
    }
    lo.iter()
        .zip(&hi)
        .map(|(l, h)| h - l)
        .fold(0.0f64, f64::max)
}

/// Cosine similarity between two equal-length vectors (1 when either is
/// all-zero, matching the Q-table convention used by the trainer).
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        1.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

impl ConvergenceMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes and stores one sample from the alive tables (flattened
    /// Q-value vectors) and a reference table, returning it.
    pub fn record<'a, I>(
        &mut self,
        phase: Phase,
        cycle: u64,
        tables: I,
        reference: &[f64],
        health: OverlayHealth,
    ) -> &ConvergenceSample
    where
        I: IntoIterator<Item = &'a [f64]> + Clone,
    {
        let diameter = population_diameter(tables.clone());
        let mut cos_sum = 0.0;
        let mut n = 0usize;
        for t in tables {
            cos_sum += cosine(t, reference);
            n += 1;
        }
        let sample = ConvergenceSample {
            phase,
            cycle,
            diameter,
            mean_cosine_to_ref: if n == 0 { 1.0 } else { cos_sum / n as f64 },
            health,
        };
        self.samples.push(sample);
        self.samples.last().unwrap()
    }

    /// The diameter series restricted to one phase.
    pub fn diameters(&self, phase: Phase) -> Vec<f64> {
        self.samples
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.diameter)
            .collect()
    }

    /// Whether the diameter series of `phase` never increases — the
    /// machine-checkable form of Theorem 1's convergence claim for the
    /// aggregation phase.
    pub fn diameter_is_nonincreasing(&self, phase: Phase) -> bool {
        self.diameter_is_nonincreasing_within(phase, 0.0)
    }

    /// [`diameter_is_nonincreasing`](Self::diameter_is_nonincreasing)
    /// with an explicit per-step tolerance on top of the built-in
    /// float-noise epsilon. Lossy gossip codecs certify Theorem 1 with
    /// `tol` derived from their accumulated quantization error bound:
    /// each exchange may re-inject at most that much spread.
    pub fn diameter_is_nonincreasing_within(&self, phase: Phase, tol: f64) -> bool {
        let d = self.diameters(phase);
        d.windows(2).all(|w| w[1] <= w[0] + tol + 1e-12)
    }

    /// The final sample, if any.
    pub fn last(&self) -> Option<&ConvergenceSample> {
        self.samples.last()
    }

    /// CSV export: `phase,cycle,diameter,mean_cosine,alive,connected,`
    /// `min_in_degree,max_in_degree,mean_in_degree`.
    pub fn csv(&self) -> String {
        let mut out = String::from(
            "phase,cycle,diameter,mean_cosine,alive,connected,min_in_degree,max_in_degree,mean_in_degree\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{:.9},{:.9},{},{},{},{},{:.3}\n",
                s.phase.tag(),
                s.cycle,
                s.diameter,
                s.mean_cosine_to_ref,
                s.health.alive,
                s.health.connected,
                s.health.min_in_degree,
                s.health.max_in_degree,
                s.health.mean_in_degree,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diameter_is_max_coordinate_range() {
        let a = [0.0, 1.0, 5.0];
        let b = [1.0, 1.0, 2.0];
        let c = [0.5, -1.0, 3.0];
        let d = population_diameter([a.as_slice(), b.as_slice(), c.as_slice()]);
        // ranges: 1.0, 2.0, 3.0 -> 3.0
        assert!((d - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_of_identical_tables_is_zero() {
        let a = [0.3, 0.7];
        assert_eq!(population_diameter([a.as_slice(), a.as_slice()]), 0.0);
        assert_eq!(population_diameter(std::iter::empty::<&[f64]>()), 0.0);
    }

    #[test]
    fn averaging_merge_never_increases_diameter() {
        // Simulate random pairwise averaging and check the invariant the
        // monitor is designed to certify.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut tables: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..16).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let mut prev = population_diameter(tables.iter().map(Vec::as_slice));
        for _ in 0..50 {
            let i = rng.gen_range(0..tables.len());
            let j = rng.gen_range(0..tables.len());
            if i == j {
                continue;
            }
            for k in 0..tables[i].len() {
                let m = 0.5 * (tables[i][k] + tables[j][k]);
                tables[i][k] = m;
                tables[j][k] = m;
            }
            let d = population_diameter(tables.iter().map(Vec::as_slice));
            assert!(d <= prev + 1e-12);
            prev = d;
        }
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
    }

    #[test]
    fn monitor_records_and_checks_monotonicity() {
        let mut m = ConvergenceMonitor::new();
        let health = OverlayHealth::from_in_degrees(&[2, 2], &[true, true], true);
        let a0 = [0.0, 4.0];
        let b0 = [2.0, 0.0];
        let reference = [1.0, 2.0];
        m.record(
            Phase::Aggregation,
            0,
            [a0.as_slice(), b0.as_slice()],
            &reference,
            health,
        );
        let a1 = [1.0, 2.0];
        m.record(
            Phase::Aggregation,
            1,
            [a1.as_slice(), a1.as_slice()],
            &reference,
            health,
        );
        assert!(m.diameter_is_nonincreasing(Phase::Aggregation));
        assert_eq!(m.diameters(Phase::Aggregation), vec![4.0, 0.0]);
        assert!((m.last().unwrap().mean_cosine_to_ref - 1.0).abs() < 1e-12);
        let csv = m.csv();
        assert!(csv.starts_with("phase,cycle,diameter"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn overlay_health_ignores_dead_nodes() {
        let h = OverlayHealth::from_in_degrees(&[5, 0, 3], &[true, false, true], true);
        assert_eq!(h.alive, 2);
        assert_eq!(h.min_in_degree, 3);
        assert_eq!(h.max_in_degree, 5);
        assert!((h.mean_in_degree - 4.0).abs() < 1e-12);
    }
}
