//! Typed protocol events and their JSONL wire format.
//!
//! Every event is one flat JSON object per line. The schema is fixed and
//! documented on [`Event::to_json`]; `Event::from_json` is the strict
//! inverse, so `from_json(to_json(e)) == e` and
//! `to_json(from_json(line)) == line` for every line this crate emits.
//! The vendored `serde` is an inert marker stub, so the codec here is
//! hand-rolled and the round-trip property is what CI validates.

use std::fmt;

/// Which simulation phase an event was emitted in.
///
/// The trainer runs the `Learning` (WOG) and `Aggregation` (WG) phases
/// before the measured day (`Run`). Round indices restart per phase, so
/// the phase tag is part of every event's timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Phase {
    /// Pre-training, learning rounds (without gossip).
    Learning,
    /// Pre-training, gossip aggregation rounds.
    Aggregation,
    /// The measured simulation day.
    #[default]
    Run,
}

impl Phase {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            Phase::Learning => "learn",
            Phase::Aggregation => "agg",
            Phase::Run => "run",
        }
    }

    /// Inverse of [`Phase::tag`].
    pub fn parse(s: &str) -> Option<Phase> {
        match s {
            "learn" => Some(Phase::Learning),
            "agg" => Some(Phase::Aggregation),
            "run" => Some(Phase::Run),
            _ => None,
        }
    }
}

/// Whether a network interaction was a one-way send or a request/reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgOp {
    /// Fire-and-forget message.
    Send,
    /// Round-trip request (two legs).
    Request,
}

impl MsgOp {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            MsgOp::Send => "send",
            MsgOp::Request => "request",
        }
    }

    /// Inverse of [`MsgOp::tag`].
    pub fn parse(s: &str) -> Option<MsgOp> {
        match s {
            "send" => Some(MsgOp::Send),
            "request" => Some(MsgOp::Request),
            _ => None,
        }
    }
}

/// Why a migration attempt stopped without committing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortReason {
    /// The `π_out` policy selected no VM to evict.
    NoAction,
    /// The destination had no spare capacity for the selected VM.
    NoCapacity,
    /// The migration handshake failed (partner down / message lost).
    Unreachable,
}

impl AbortReason {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            AbortReason::NoAction => "no_action",
            AbortReason::NoCapacity => "no_capacity",
            AbortReason::Unreachable => "unreachable",
        }
    }

    /// Inverse of [`AbortReason::tag`].
    pub fn parse(s: &str) -> Option<AbortReason> {
        match s {
            "no_action" => Some(AbortReason::NoAction),
            "no_capacity" => Some(AbortReason::NoCapacity),
            "unreachable" => Some(AbortReason::Unreachable),
            _ => None,
        }
    }
}

/// The event vocabulary. All four policies emit from this one set; the
/// `DataCenter` and `NetworkModel` funnels guarantee the shared subset
/// (migration commits, sleep/wake, message fates, crash/recover).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A message was delivered.
    MsgSent {
        /// Sender PM.
        from: u32,
        /// Receiver PM.
        to: u32,
        /// Send or request.
        op: MsgOp,
    },
    /// A message was dropped by the network.
    MsgDropped {
        /// Sender PM.
        from: u32,
        /// Receiver PM.
        to: u32,
        /// Send or request.
        op: MsgOp,
    },
    /// A request's round-trip exceeded the timeout.
    MsgTimedOut {
        /// Sender PM.
        from: u32,
        /// Receiver PM.
        to: u32,
    },
    /// The target PM was down when the message was sent.
    MsgTargetDown {
        /// Sender PM.
        from: u32,
        /// Receiver PM.
        to: u32,
        /// Send or request.
        op: MsgOp,
    },
    /// A PM crashed (scripted or stochastic).
    PmCrashed {
        /// The PM.
        pm: u32,
    },
    /// A crashed PM came back up.
    PmRecovered {
        /// The PM.
        pm: u32,
    },
    /// A Cyclon shuffle round-trip completed.
    ShuffleCompleted {
        /// Initiator node.
        from: u32,
        /// Shuffle partner.
        to: u32,
    },
    /// A Cyclon shuffle was aborted (partner unreachable).
    ShuffleFailed {
        /// Initiator node.
        from: u32,
        /// Shuffle partner.
        to: u32,
    },
    /// A pairwise Q-table merge was applied (both directions).
    MergeApplied {
        /// First PM of the merged pair.
        a: u32,
        /// Second PM of the merged pair.
        b: u32,
    },
    /// A merge attempt failed and the PM retried with another peer.
    MergeRetried {
        /// The initiating PM.
        pm: u32,
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// A consolidation exchange (GLAP/GRMP pairwise session) opened.
    ExchangeOpened {
        /// Initiator PM.
        p: u32,
        /// Partner PM.
        q: u32,
    },
    /// `π_out` proposed evicting a VM to a destination.
    MigrationProposed {
        /// The VM.
        vm: u32,
        /// Source PM.
        from: u32,
        /// Destination PM.
        to: u32,
    },
    /// The destination's `π_in` policy vetoed the proposal.
    MigrationVetoed {
        /// The VM.
        vm: u32,
        /// Source PM.
        from: u32,
        /// Destination PM.
        to: u32,
    },
    /// A migration committed (the `DataCenter::migrate` funnel).
    MigrationCommitted {
        /// The VM.
        vm: u32,
        /// Source PM.
        from: u32,
        /// Destination PM.
        to: u32,
    },
    /// A migration attempt stopped before committing.
    MigrationAborted {
        /// Source PM.
        from: u32,
        /// Destination PM.
        to: u32,
        /// Why it stopped.
        reason: AbortReason,
    },
    /// An emptied PM was switched to sleep.
    PmSlept {
        /// The PM.
        pm: u32,
    },
    /// A sleeping PM was woken up.
    PmWoke {
        /// The PM.
        pm: u32,
    },
    /// A checkpoint of the full simulation state was written. Emitted
    /// *before* the snapshot is encoded so the event itself is part of
    /// the checkpointed trace; the size lands in the
    /// `checkpoint.bytes` counter instead of an event payload.
    CheckpointWritten,
    /// The convergence monitor sampled the Q-table population.
    ConvergenceSampled {
        /// Cycle index within the phase.
        cycle: u32,
        /// Max pairwise L∞ distance across alive tables.
        diameter: f64,
        /// Mean cosine similarity vs. the unified reference table.
        cosine: f64,
        /// Alive overlay nodes at sampling time.
        alive: u32,
        /// Whether the alive overlay is a single connected component.
        connected: bool,
    },
}

impl EventKind {
    /// Stable wire tag, also used as the per-kind counter suffix.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MsgSent { .. } => "msg_sent",
            EventKind::MsgDropped { .. } => "msg_dropped",
            EventKind::MsgTimedOut { .. } => "msg_timed_out",
            EventKind::MsgTargetDown { .. } => "msg_target_down",
            EventKind::PmCrashed { .. } => "pm_crashed",
            EventKind::PmRecovered { .. } => "pm_recovered",
            EventKind::ShuffleCompleted { .. } => "shuffle_completed",
            EventKind::ShuffleFailed { .. } => "shuffle_failed",
            EventKind::MergeApplied { .. } => "merge_applied",
            EventKind::MergeRetried { .. } => "merge_retried",
            EventKind::ExchangeOpened { .. } => "exchange_opened",
            EventKind::MigrationProposed { .. } => "migration_proposed",
            EventKind::MigrationVetoed { .. } => "migration_vetoed",
            EventKind::MigrationCommitted { .. } => "migration_committed",
            EventKind::MigrationAborted { .. } => "migration_aborted",
            EventKind::PmSlept { .. } => "pm_slept",
            EventKind::PmWoke { .. } => "pm_woke",
            EventKind::CheckpointWritten => "checkpoint_written",
            EventKind::ConvergenceSampled { .. } => "convergence_sampled",
        }
    }
}

/// One timestamped protocol event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulation phase.
    pub phase: Phase,
    /// Round index within the phase.
    pub round: u64,
    /// Logical time: monotone sequence number over the whole trace.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Parse error for a JSONL trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { msg: msg.into() })
}

impl Event {
    /// Encodes this event as one flat JSON object (no trailing newline).
    ///
    /// Schema: every line has `"phase"` (`"learn" | "agg" | "run"`),
    /// `"round"` (u64), `"seq"` (u64) and `"kind"` (the tag from
    /// [`EventKind::name`]), followed by the kind's payload fields in a
    /// fixed order:
    ///
    /// | kind | payload |
    /// |------|---------|
    /// | `msg_sent`, `msg_dropped`, `msg_target_down` | `from`, `to`, `op` (`"send" \| "request"`) |
    /// | `msg_timed_out` | `from`, `to` |
    /// | `pm_crashed`, `pm_recovered`, `pm_slept`, `pm_woke` | `pm` |
    /// | `shuffle_completed`, `shuffle_failed` | `from`, `to` |
    /// | `merge_applied` | `a`, `b` |
    /// | `merge_retried` | `pm`, `attempt` |
    /// | `exchange_opened` | `p`, `q` |
    /// | `migration_proposed`, `migration_vetoed`, `migration_committed` | `vm`, `from`, `to` |
    /// | `migration_aborted` | `from`, `to`, `reason` (`"no_action" \| "no_capacity" \| "unreachable"`) |
    /// | `checkpoint_written` | *(no payload)* |
    /// | `convergence_sampled` | `cycle`, `diameter` (f64), `cosine` (f64), `alive`, `connected` (bool) |
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"phase\":\"");
        s.push_str(self.phase.tag());
        s.push_str("\",\"round\":");
        s.push_str(&self.round.to_string());
        s.push_str(",\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.name());
        s.push('"');
        let num = |s: &mut String, key: &str, v: u64| {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&v.to_string());
        };
        match &self.kind {
            EventKind::MsgSent { from, to, op }
            | EventKind::MsgDropped { from, to, op }
            | EventKind::MsgTargetDown { from, to, op } => {
                num(&mut s, "from", u64::from(*from));
                num(&mut s, "to", u64::from(*to));
                s.push_str(",\"op\":\"");
                s.push_str(op.tag());
                s.push('"');
            }
            EventKind::MsgTimedOut { from, to }
            | EventKind::ShuffleCompleted { from, to }
            | EventKind::ShuffleFailed { from, to } => {
                num(&mut s, "from", u64::from(*from));
                num(&mut s, "to", u64::from(*to));
            }
            EventKind::PmCrashed { pm }
            | EventKind::PmRecovered { pm }
            | EventKind::PmSlept { pm }
            | EventKind::PmWoke { pm } => {
                num(&mut s, "pm", u64::from(*pm));
            }
            EventKind::MergeApplied { a, b } => {
                num(&mut s, "a", u64::from(*a));
                num(&mut s, "b", u64::from(*b));
            }
            EventKind::MergeRetried { pm, attempt } => {
                num(&mut s, "pm", u64::from(*pm));
                num(&mut s, "attempt", u64::from(*attempt));
            }
            EventKind::ExchangeOpened { p, q } => {
                num(&mut s, "p", u64::from(*p));
                num(&mut s, "q", u64::from(*q));
            }
            EventKind::MigrationProposed { vm, from, to }
            | EventKind::MigrationVetoed { vm, from, to }
            | EventKind::MigrationCommitted { vm, from, to } => {
                num(&mut s, "vm", u64::from(*vm));
                num(&mut s, "from", u64::from(*from));
                num(&mut s, "to", u64::from(*to));
            }
            EventKind::MigrationAborted { from, to, reason } => {
                num(&mut s, "from", u64::from(*from));
                num(&mut s, "to", u64::from(*to));
                s.push_str(",\"reason\":\"");
                s.push_str(reason.tag());
                s.push('"');
            }
            EventKind::CheckpointWritten => {}
            EventKind::ConvergenceSampled {
                cycle,
                diameter,
                cosine,
                alive,
                connected,
            } => {
                num(&mut s, "cycle", u64::from(*cycle));
                s.push_str(",\"diameter\":");
                s.push_str(&fmt_f64(*diameter));
                s.push_str(",\"cosine\":");
                s.push_str(&fmt_f64(*cosine));
                num(&mut s, "alive", u64::from(*alive));
                s.push_str(",\"connected\":");
                s.push_str(if *connected { "true" } else { "false" });
            }
        }
        s.push('}');
        s
    }

    /// Strict inverse of [`Event::to_json`]: parses one trace line,
    /// rejecting unknown kinds, missing/extra fields and malformed JSON.
    pub fn from_json(line: &str) -> Result<Event, ParseError> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&JsonValue, ParseError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| ParseError {
                    msg: format!("missing field `{key}`"),
                })
        };
        let get_u64 = |key: &str| -> Result<u64, ParseError> {
            match get(key)? {
                JsonValue::Num(raw) => raw.parse::<u64>().map_err(|_| ParseError {
                    msg: format!("field `{key}` is not a u64: {raw}"),
                }),
                _ => err(format!("field `{key}` is not a number")),
            }
        };
        let get_u32 = |key: &str| -> Result<u32, ParseError> {
            u32::try_from(get_u64(key)?).map_err(|_| ParseError {
                msg: format!("field `{key}` overflows u32"),
            })
        };
        let get_f64 = |key: &str| -> Result<f64, ParseError> {
            match get(key)? {
                JsonValue::Num(raw) => raw.parse::<f64>().map_err(|_| ParseError {
                    msg: format!("field `{key}` is not an f64: {raw}"),
                }),
                _ => err(format!("field `{key}` is not a number")),
            }
        };
        let get_str = |key: &str| -> Result<&str, ParseError> {
            match get(key)? {
                JsonValue::Str(s) => Ok(s.as_str()),
                _ => err(format!("field `{key}` is not a string")),
            }
        };
        let get_bool = |key: &str| -> Result<bool, ParseError> {
            match get(key)? {
                JsonValue::Bool(b) => Ok(*b),
                _ => err(format!("field `{key}` is not a bool")),
            }
        };
        let get_op = |key: &str| -> Result<MsgOp, ParseError> {
            let raw = get_str(key)?;
            MsgOp::parse(raw).ok_or_else(|| ParseError {
                msg: format!("unknown op `{raw}`"),
            })
        };

        let phase_raw = get_str("phase")?;
        let phase = Phase::parse(phase_raw).ok_or_else(|| ParseError {
            msg: format!("unknown phase `{phase_raw}`"),
        })?;
        let round = get_u64("round")?;
        let seq = get_u64("seq")?;
        let kind_tag = get_str("kind")?.to_string();

        let (kind, payload_fields): (EventKind, usize) = match kind_tag.as_str() {
            "msg_sent" => (
                EventKind::MsgSent {
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                    op: get_op("op")?,
                },
                3,
            ),
            "msg_dropped" => (
                EventKind::MsgDropped {
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                    op: get_op("op")?,
                },
                3,
            ),
            "msg_timed_out" => (
                EventKind::MsgTimedOut {
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                },
                2,
            ),
            "msg_target_down" => (
                EventKind::MsgTargetDown {
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                    op: get_op("op")?,
                },
                3,
            ),
            "pm_crashed" => (EventKind::PmCrashed { pm: get_u32("pm")? }, 1),
            "pm_recovered" => (EventKind::PmRecovered { pm: get_u32("pm")? }, 1),
            "shuffle_completed" => (
                EventKind::ShuffleCompleted {
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                },
                2,
            ),
            "shuffle_failed" => (
                EventKind::ShuffleFailed {
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                },
                2,
            ),
            "merge_applied" => (
                EventKind::MergeApplied {
                    a: get_u32("a")?,
                    b: get_u32("b")?,
                },
                2,
            ),
            "merge_retried" => (
                EventKind::MergeRetried {
                    pm: get_u32("pm")?,
                    attempt: get_u32("attempt")?,
                },
                2,
            ),
            "exchange_opened" => (
                EventKind::ExchangeOpened {
                    p: get_u32("p")?,
                    q: get_u32("q")?,
                },
                2,
            ),
            "migration_proposed" => (
                EventKind::MigrationProposed {
                    vm: get_u32("vm")?,
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                },
                3,
            ),
            "migration_vetoed" => (
                EventKind::MigrationVetoed {
                    vm: get_u32("vm")?,
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                },
                3,
            ),
            "migration_committed" => (
                EventKind::MigrationCommitted {
                    vm: get_u32("vm")?,
                    from: get_u32("from")?,
                    to: get_u32("to")?,
                },
                3,
            ),
            "migration_aborted" => {
                let raw = get_str("reason")?;
                (
                    EventKind::MigrationAborted {
                        from: get_u32("from")?,
                        to: get_u32("to")?,
                        reason: AbortReason::parse(raw).ok_or_else(|| ParseError {
                            msg: format!("unknown abort reason `{raw}`"),
                        })?,
                    },
                    3,
                )
            }
            "pm_slept" => (EventKind::PmSlept { pm: get_u32("pm")? }, 1),
            "pm_woke" => (EventKind::PmWoke { pm: get_u32("pm")? }, 1),
            "checkpoint_written" => (EventKind::CheckpointWritten, 0),
            "convergence_sampled" => (
                EventKind::ConvergenceSampled {
                    cycle: get_u32("cycle")?,
                    diameter: get_f64("diameter")?,
                    cosine: get_f64("cosine")?,
                    alive: get_u32("alive")?,
                    connected: get_bool("connected")?,
                },
                5,
            ),
            other => return err(format!("unknown event kind `{other}`")),
        };

        // Strict: no extra fields beyond header (4) + payload.
        if fields.len() != 4 + payload_fields {
            return err(format!(
                "expected {} fields for `{kind_tag}`, found {}",
                4 + payload_fields,
                fields.len()
            ));
        }

        Ok(Event {
            phase,
            round,
            seq,
            kind,
        })
    }
}

/// Round-trip-stable f64 formatting (`Display` prints the shortest
/// decimal that parses back exactly).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Minimal JSON value for the flat trace objects.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    /// Raw number text (parsed to u64/f64 on demand).
    Num(String),
    /// String (no escape sequences — none are ever emitted).
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// Parses a flat JSON object `{"k":v,...}` with string/number/bool
/// values. Rejects nesting, escapes, duplicate keys and trailing input.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, ParseError> {
    let b = line.trim().as_bytes();
    let mut i = 0usize;
    let mut out: Vec<(String, JsonValue)> = Vec::with_capacity(8);

    let take = |i: &mut usize, c: u8| -> Result<(), ParseError> {
        if *i < b.len() && b[*i] == c {
            *i += 1;
            Ok(())
        } else {
            err(format!("expected `{}` at byte {}", c as char, *i))
        }
    };

    take(&mut i, b'{')?;
    loop {
        // Key.
        take(&mut i, b'"')?;
        let start = i;
        while i < b.len() && b[i] != b'"' {
            if b[i] == b'\\' {
                return err("escape sequences are not part of the schema");
            }
            i += 1;
        }
        if i >= b.len() {
            return err("unterminated key");
        }
        let key = std::str::from_utf8(&b[start..i])
            .map_err(|_| ParseError {
                msg: "non-utf8 key".into(),
            })?
            .to_string();
        i += 1;
        take(&mut i, b':')?;

        // Value.
        let value = if i < b.len() && b[i] == b'"' {
            i += 1;
            let vs = i;
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    return err("escape sequences are not part of the schema");
                }
                i += 1;
            }
            if i >= b.len() {
                return err("unterminated string value");
            }
            let v = std::str::from_utf8(&b[vs..i])
                .map_err(|_| ParseError {
                    msg: "non-utf8 string value".into(),
                })?
                .to_string();
            i += 1;
            JsonValue::Str(v)
        } else if b[i..].starts_with(b"true") {
            i += 4;
            JsonValue::Bool(true)
        } else if b[i..].starts_with(b"false") {
            i += 5;
            JsonValue::Bool(false)
        } else {
            let vs = i;
            while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                i += 1;
            }
            if vs == i {
                return err(format!("expected a value at byte {vs}"));
            }
            JsonValue::Num(
                std::str::from_utf8(&b[vs..i])
                    .map_err(|_| ParseError {
                        msg: "non-utf8 number".into(),
                    })?
                    .to_string(),
            )
        };
        if out.iter().any(|(k, _)| *k == key) {
            return err(format!("duplicate key `{key}`"));
        }
        out.push((key, value));

        if i < b.len() && b[i] == b',' {
            i += 1;
            continue;
        }
        break;
    }
    take(&mut i, b'}')?;
    if i != b.len() {
        return err("trailing input after object");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: Event) {
        let line = e.to_json();
        let back = Event::from_json(&line).expect(&line);
        assert_eq!(back, e, "{line}");
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn every_kind_round_trips() {
        let kinds = vec![
            EventKind::MsgSent {
                from: 1,
                to: 2,
                op: MsgOp::Send,
            },
            EventKind::MsgDropped {
                from: 3,
                to: 4,
                op: MsgOp::Request,
            },
            EventKind::MsgTimedOut { from: 5, to: 6 },
            EventKind::MsgTargetDown {
                from: 7,
                to: 8,
                op: MsgOp::Request,
            },
            EventKind::PmCrashed { pm: 9 },
            EventKind::PmRecovered { pm: 10 },
            EventKind::ShuffleCompleted { from: 11, to: 12 },
            EventKind::ShuffleFailed { from: 13, to: 14 },
            EventKind::MergeApplied { a: 15, b: 16 },
            EventKind::MergeRetried { pm: 17, attempt: 2 },
            EventKind::ExchangeOpened { p: 18, q: 19 },
            EventKind::MigrationProposed {
                vm: 20,
                from: 21,
                to: 22,
            },
            EventKind::MigrationVetoed {
                vm: 23,
                from: 24,
                to: 25,
            },
            EventKind::MigrationCommitted {
                vm: 26,
                from: 27,
                to: 28,
            },
            EventKind::MigrationAborted {
                from: 29,
                to: 30,
                reason: AbortReason::NoCapacity,
            },
            EventKind::PmSlept { pm: 31 },
            EventKind::PmWoke { pm: 32 },
            EventKind::CheckpointWritten,
            EventKind::ConvergenceSampled {
                cycle: 7,
                diameter: 0.125,
                cosine: 0.987654321,
                alive: 40,
                connected: true,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            for phase in [Phase::Learning, Phase::Aggregation, Phase::Run] {
                roundtrip(Event {
                    phase,
                    round: i as u64 * 13,
                    seq: i as u64 * 101 + 7,
                    kind: kind.clone(),
                });
            }
        }
    }

    #[test]
    fn abort_reasons_round_trip() {
        for reason in [
            AbortReason::NoAction,
            AbortReason::NoCapacity,
            AbortReason::Unreachable,
        ] {
            roundtrip(Event {
                phase: Phase::Run,
                round: 1,
                seq: 2,
                kind: EventKind::MigrationAborted {
                    from: 0,
                    to: 1,
                    reason,
                },
            });
        }
    }

    #[test]
    fn extreme_floats_round_trip() {
        for diameter in [0.0, 1e-300, 1e300, 0.1 + 0.2, f64::MIN_POSITIVE] {
            roundtrip(Event {
                phase: Phase::Aggregation,
                round: 0,
                seq: 0,
                kind: EventKind::ConvergenceSampled {
                    cycle: 0,
                    diameter,
                    cosine: -1.0 / 3.0,
                    alive: 1,
                    connected: false,
                },
            });
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{}",
            "not json",
            r#"{"phase":"run","round":1,"seq":2,"kind":"no_such_kind"}"#,
            r#"{"phase":"run","round":1,"seq":2,"kind":"pm_slept"}"#, // missing pm
            r#"{"phase":"run","round":1,"seq":2,"kind":"pm_slept","pm":1,"extra":9}"#,
            r#"{"phase":"run","round":1,"seq":2,"kind":"pm_slept","pm":-1}"#,
            r#"{"phase":"walk","round":1,"seq":2,"kind":"pm_slept","pm":1}"#,
            r#"{"phase":"run","round":1,"seq":2,"kind":"pm_slept","pm":1} trailing"#,
            r#"{"phase":"run","round":1,"round":1,"seq":2,"kind":"pm_slept","pm":1}"#,
        ] {
            assert!(Event::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn seq_and_round_are_preserved_verbatim() {
        let e = Event {
            phase: Phase::Run,
            round: u64::MAX,
            seq: u64::MAX - 1,
            kind: EventKind::PmWoke { pm: u32::MAX },
        };
        roundtrip(e);
    }
}
