//! The [`Tracer`] handle: the one type instrumented code touches.
//!
//! A tracer is either **off** (`Tracer::off()`, the default) — every
//! method is a single `Option` branch, no event is constructed, no
//! allocation happens, and crucially no RNG is touched, so an off tracer
//! preserves byte-identical determinism by construction — or **on**,
//! holding a shared [`TraceCore`] (sink + counter registry + the current
//! phase/round/sequence stamp).
//!
//! Handles are cheap to clone (`Option<Rc>`); the engine, the network
//! model and the data center each hold one, all pointing at the same
//! core, so sequence numbers are globally monotone across emitters.

use crate::event::{Event, EventKind, Phase};
use crate::registry::CounterRegistry;
use crate::sink::{EventSink, MemorySink, NullSink};
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Shared state behind an enabled tracer.
pub struct TraceCore {
    sink: Box<dyn EventSink>,
    /// Counter/histogram registry fed by every emit.
    pub counters: CounterRegistry,
    phase: Phase,
    round: u64,
    seq: u64,
}

/// Cheap, cloneable tracing handle. See the module docs.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceCore>>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("on", &self.inner.is_some())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer (the default everywhere).
    pub fn off() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer writing events to `sink`.
    pub fn new(sink: Box<dyn EventSink>) -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceCore {
                sink,
                counters: CounterRegistry::new(),
                phase: Phase::Run,
                round: 0,
                seq: 0,
            }))),
        }
    }

    /// An enabled tracer that discards events but still maintains the
    /// counter registry (and lets callers run the convergence monitor).
    pub fn counting() -> Self {
        Self::new(Box::new(NullSink))
    }

    /// An enabled tracer backed by an in-memory sink; returns the
    /// tracer and a handle for reading the captured events.
    pub fn memory() -> (Self, MemorySink) {
        let sink = MemorySink::new();
        (Self::new(Box::new(sink.clone())), sink)
    }

    /// Whether this tracer records anything.
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the phase stamped on subsequent events.
    pub fn set_phase(&self, phase: Phase) {
        if let Some(core) = &self.inner {
            core.borrow_mut().phase = phase;
        }
    }

    /// Sets the round stamped on subsequent events.
    pub fn begin_round(&self, round: u64) {
        if let Some(core) = &self.inner {
            core.borrow_mut().round = round;
        }
    }

    /// Closes the current round: snapshots counter deltas.
    pub fn end_round(&self) {
        if let Some(core) = &self.inner {
            let mut core = core.borrow_mut();
            let (phase, round) = (core.phase, core.round);
            core.counters.end_round(phase, round);
        }
    }

    /// Emits one event: stamps it with the current phase/round and the
    /// next sequence number, bumps the `ev.<kind>` counter, and hands it
    /// to the sink. A no-op when the tracer is off — callers may build
    /// `kind` unconditionally (it is just an enum, no allocation for the
    /// common kinds), or guard with [`Tracer::is_on`] first.
    pub fn emit(&self, kind: EventKind) {
        if let Some(core) = &self.inner {
            let mut core = core.borrow_mut();
            let event = Event {
                phase: core.phase,
                round: core.round,
                seq: core.seq,
                kind,
            };
            core.seq += 1;
            let mut name = String::with_capacity(3 + event.kind.name().len());
            name.push_str("ev.");
            name.push_str(event.kind.name());
            core.counters.add(&name, 1);
            core.sink.emit(&event);
        }
    }

    /// Adds to a named counter (no event).
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(core) = &self.inner {
            core.borrow_mut().counters.add(name, delta);
        }
    }

    /// Records a latency observation into a named histogram.
    pub fn observe_ms(&self, name: &str, v: f64) {
        if let Some(core) = &self.inner {
            core.borrow_mut().counters.observe(name, v);
        }
    }

    /// Runs `f` against the counter registry; `None` when off.
    pub fn with_counters<T>(&self, f: impl FnOnce(&CounterRegistry) -> T) -> Option<T> {
        self.inner.as_ref().map(|core| f(&core.borrow().counters))
    }

    /// Total of a named counter (0 when off).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.with_counters(|c| c.total(name)).unwrap_or(0)
    }

    /// Events emitted so far (0 when off).
    pub fn events_emitted(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|core| core.borrow().seq)
            .unwrap_or(0)
    }

    /// Wide-format per-round counter CSV (empty when off).
    pub fn counters_csv(&self) -> String {
        self.with_counters(CounterRegistry::counters_csv)
            .unwrap_or_default()
    }

    /// Histogram CSV (empty when off).
    pub fn histograms_csv(&self) -> String {
        self.with_counters(CounterRegistry::histograms_csv)
            .unwrap_or_default()
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        if let Some(core) = &self.inner {
            core.borrow_mut().sink.flush();
        }
    }

    /// Serializes the tracer's dynamic state: a leading on/off flag,
    /// then (when on) the phase/round/seq stamp and the full counter
    /// registry including per-round snapshots, so a resumed run's
    /// counter CSV covers the rounds before the checkpoint too. The
    /// sink itself is not serialized — the resuming caller re-opens it
    /// (e.g. appending to the same JSONL path).
    pub fn save_state(&self, w: &mut Writer) {
        match &self.inner {
            None => w.put_bool(false),
            Some(core) => {
                let core = core.borrow();
                w.put_bool(true);
                w.put_str(core.phase.tag());
                w.put_u64(core.round);
                w.put_u64(core.seq);
                core.counters.save(w);
            }
        }
    }

    /// Inverse of [`Tracer::save_state`]. Always consumes the full
    /// record; the state is applied only when this tracer is on (an
    /// off tracer has nothing to restore into, and a snapshot taken
    /// with tracing off carries no state).
    pub fn restore_state(&self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        if !r.get_bool()? {
            return Ok(());
        }
        let tag = r.get_str()?;
        let phase = Phase::parse(&tag)
            .ok_or_else(|| SnapshotError::Corrupt(format!("unknown phase tag `{tag}`")))?;
        let round = r.get_u64()?;
        let seq = r.get_u64()?;
        let mut counters = CounterRegistry::new();
        counters.restore(r)?;
        if let Some(core) = &self.inner {
            let mut core = core.borrow_mut();
            core.phase = phase;
            core.round = round;
            core.seq = seq;
            core.counters = counters;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_is_inert() {
        let t = Tracer::off();
        assert!(!t.is_on());
        t.begin_round(3);
        t.emit(EventKind::PmSlept { pm: 1 });
        t.add("x", 5);
        t.end_round();
        assert_eq!(t.events_emitted(), 0);
        assert_eq!(t.counter_total("x"), 0);
        assert_eq!(t.counters_csv(), "");
    }

    #[test]
    fn emit_stamps_phase_round_seq() {
        let (t, sink) = Tracer::memory();
        t.set_phase(Phase::Aggregation);
        t.begin_round(7);
        t.emit(EventKind::MergeApplied { a: 1, b: 2 });
        t.emit(EventKind::MergeRetried { pm: 1, attempt: 1 });
        t.begin_round(8);
        t.emit(EventKind::MergeApplied { a: 3, b: 4 });
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].round, 7);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[2].round, 8);
        assert_eq!(events[2].seq, 2);
        assert!(events.iter().all(|e| e.phase == Phase::Aggregation));
        assert_eq!(t.counter_total("ev.merge_applied"), 2);
        assert_eq!(t.counter_total("ev.merge_retried"), 1);
    }

    #[test]
    fn clones_share_one_core() {
        let (t, sink) = Tracer::memory();
        let u = t.clone();
        t.emit(EventKind::PmWoke { pm: 0 });
        u.emit(EventKind::PmWoke { pm: 1 });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(t.events_emitted(), 2);
    }

    #[test]
    fn tracer_state_round_trips_through_checkpoint() {
        let t = Tracer::counting();
        t.set_phase(Phase::Aggregation);
        t.begin_round(5);
        t.emit(EventKind::MergeApplied { a: 1, b: 2 });
        t.add("cyclon.bytes", 64);
        t.end_round();
        t.begin_round(6);
        t.add("cyclon.bytes", 8);

        let mut w = Writer::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();

        let u = Tracer::counting();
        u.restore_state(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(u.events_emitted(), 1);
        assert_eq!(u.counter_total("cyclon.bytes"), 72);
        assert_eq!(u.counters_csv(), t.counters_csv());

        // The restored tracer continues exactly where the original
        // would: same round stamp, same next sequence number.
        u.emit(EventKind::MergeApplied { a: 3, b: 4 });
        t.emit(EventKind::MergeApplied { a: 3, b: 4 });
        u.end_round();
        t.end_round();
        assert_eq!(u.counters_csv(), t.counters_csv());

        let (mut w1, mut w2) = (Writer::new(), Writer::new());
        t.save_state(&mut w1);
        u.save_state(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn off_tracer_saves_and_restores_as_nothing() {
        let t = Tracer::off();
        let mut w = Writer::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0]);
        let u = Tracer::off();
        let mut r = Reader::new(&bytes);
        u.restore_state(&mut r).unwrap();
        assert!(r.is_exhausted());
    }

    #[test]
    fn end_round_snapshots_counters() {
        let t = Tracer::counting();
        t.begin_round(0);
        t.add("cyclon.bytes", 64);
        t.end_round();
        t.begin_round(1);
        t.add("cyclon.bytes", 32);
        t.end_round();
        t.with_counters(|c| {
            assert_eq!(c.snapshots.len(), 2);
            assert_eq!(c.snapshots[0].deltas, vec![("cyclon.bytes".into(), 64)]);
            assert_eq!(c.snapshots[1].deltas, vec![("cyclon.bytes".into(), 32)]);
        })
        .unwrap();
    }
}
