//! Property-based tests for the Cyclon peer-sampling service.

use glap_cyclon::{CyclonOverlay, NodeId, RoundIo};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Views never exceed capacity and never contain self-pointers,
    /// regardless of rounds run and nodes killed.
    #[test]
    fn view_invariants_under_churn(
        seed in 0u64..500,
        rounds in 1usize..25,
        kills in proptest::collection::vec(0u32..40, 0..10),
    ) {
        let n = 40;
        let mut o = CyclonOverlay::new(n, 6, 3);
        let mut rng = SmallRng::seed_from_u64(seed);
        o.bootstrap_random(&mut rng);
        for k in kills {
            o.set_dead(k);
        }
        for _ in 0..rounds {
            o.run_round(&mut rng, RoundIo::default());
            for i in 0..n as NodeId {
                let view: Vec<NodeId> = o.node(i).neighbors().collect();
                prop_assert!(view.len() <= 6);
                prop_assert!(!view.contains(&i), "self-pointer at node {i}");
                // No duplicates.
                let mut sorted = view.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), view.len());
            }
        }
    }

    /// With no churn the overlay stays connected through shuffling.
    #[test]
    fn connectivity_is_preserved(seed in 0u64..200, rounds in 1usize..30) {
        let mut o = CyclonOverlay::new(64, 8, 4);
        let mut rng = SmallRng::seed_from_u64(seed);
        o.bootstrap_random(&mut rng);
        for _ in 0..rounds {
            o.run_round(&mut rng, RoundIo::default());
        }
        prop_assert!(o.is_connected());
    }

    /// Total descriptor mass is conserved modulo drops: the sum of view
    /// sizes never grows beyond n * cache_size.
    #[test]
    fn descriptor_mass_bounded(seed in 0u64..200, rounds in 1usize..20) {
        let n = 30;
        let mut o = CyclonOverlay::new(n, 5, 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        o.bootstrap_random(&mut rng);
        for _ in 0..rounds {
            o.run_round(&mut rng, RoundIo::default());
            let mass: usize = (0..n as NodeId).map(|i| o.node(i).view_size()).sum();
            prop_assert!(mass <= n * 5);
        }
    }
}
