//! # glap-cyclon — gossip-based peer sampling
//!
//! A from-scratch implementation of the **Cyclon** protocol (Voulgaris,
//! Gavidia & van Steen, 2005), the membership/peer-sampling component of the
//! GLAP architecture (Figure 2 of the paper). Each node maintains a small
//! partial view of the network and periodically *shuffles* part of it with
//! the neighbour holding its oldest descriptor; the resulting communication
//! graph is close to a random graph, which gives every higher-level gossip
//! protocol (GLAP's learning aggregation and consolidation components) a
//! cheap, uniform, churn-tolerant random-peer service.
//!
//! ```
//! use glap_cyclon::{CyclonOverlay, RoundIo};
//! use rand::SeedableRng;
//!
//! let mut overlay = CyclonOverlay::new(100, 8, 4);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! overlay.bootstrap_random(&mut rng);
//! for _ in 0..10 {
//!     overlay.run_round(&mut rng, RoundIo::default());
//! }
//! assert!(overlay.is_connected());
//! let peer = overlay.random_alive_peer(0, &mut rng);
//! assert!(peer.is_some());
//! ```

pub mod descriptor;
pub mod node;
pub mod overlay;

pub use descriptor::{Descriptor, NodeId};
pub use node::{CyclonNode, PendingShuffle};
pub use overlay::{CyclonOverlay, RoundIo};
