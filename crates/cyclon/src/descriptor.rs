//! Node descriptors — the currency of Cyclon shuffles.

/// Identifier of an overlay node. In this workspace overlay nodes are
/// physical machines, and the id equals the PM index.
pub type NodeId = u32;

/// A pointer to a node plus its gossip age.
///
/// Age counts the shuffle rounds since the descriptor was created by its
/// subject; Cyclon shuffles always target the oldest descriptor in the
/// cache, which is what gives the protocol its self-healing property
/// (descriptors of dead nodes age out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// The node this descriptor points at.
    pub node: NodeId,
    /// Rounds since the subject node minted this descriptor.
    pub age: u32,
}

impl Descriptor {
    /// A freshly minted descriptor (age 0).
    pub const fn fresh(node: NodeId) -> Self {
        Descriptor { node, age: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_has_age_zero() {
        let d = Descriptor::fresh(7);
        assert_eq!(d.node, 7);
        assert_eq!(d.age, 0);
    }
}
