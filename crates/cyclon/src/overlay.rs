//! A whole-overlay driver: owns every node's Cyclon state and runs
//! synchronous shuffle rounds, mirroring how PeerSim schedules a
//! cycle-driven protocol.
//!
//! Nodes can be marked dead (a PM going to sleep leaves the overlay); their
//! descriptors age out of the live nodes' caches and contacts to them fail
//! gracefully, which is Cyclon's designed behaviour under churn.

use crate::descriptor::NodeId;
use crate::node::CyclonNode;
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};
use glap_telemetry::{EventKind, Tracer};
use rand::seq::SliceRandom;
use rand::Rng;

/// Bytes one node descriptor occupies on the wire (id + age), used for
/// the gossip-traffic counter estimate.
const DESCRIPTOR_BYTES: u64 = 8;

/// Per-round context for [`CyclonOverlay::run_round`]: an optional
/// transport (`contact`) and an optional event tracer. `RoundIo::default()`
/// is the ideal, untraced round — every contact succeeds, nothing is
/// recorded — and costs two `Option` branches per shuffle, so the hot
/// no-op path stays free. Both fields are plain `pub`: build the struct
/// literal or start from `default()` and fill in what you need.
#[derive(Default)]
pub struct RoundIo<'a> {
    /// Transport callback: `contact(from, to)` returns whether the
    /// shuffle round trip completed in time. `None` means every contact
    /// succeeds (the ideal network). A failed contact (message dropped,
    /// reply past the timeout, target crashed) behaves exactly like
    /// contacting a dead node: the initiator gives up and the target's
    /// descriptor — already removed by `start_shuffle`, which always
    /// evicts the oldest entry — stays evicted. That *is* Cyclon's
    /// neighbour-eviction-on-non-response rule.
    pub contact: Option<&'a mut dyn FnMut(NodeId, NodeId) -> bool>,
    /// Event tracer: emits `shuffle_completed` / `shuffle_failed` per
    /// active shuffle and accounts gossip traffic under `cyclon.bytes` /
    /// `cyclon.shuffles`. Tracing reads no randomness, so any tracer
    /// (or `None`) leaves the view evolution identical.
    pub tracer: Option<&'a Tracer>,
}

impl<'a> RoundIo<'a> {
    /// A round over a caller-provided transport, untraced.
    pub fn contact(f: &'a mut dyn FnMut(NodeId, NodeId) -> bool) -> Self {
        RoundIo {
            contact: Some(f),
            tracer: None,
        }
    }

    /// An ideal-network round with an event tracer.
    pub fn traced(tracer: &'a Tracer) -> Self {
        RoundIo {
            contact: None,
            tracer: Some(tracer),
        }
    }

    /// A transport-backed, traced round.
    pub fn full(f: &'a mut dyn FnMut(NodeId, NodeId) -> bool, tracer: &'a Tracer) -> Self {
        RoundIo {
            contact: Some(f),
            tracer: Some(tracer),
        }
    }
}

/// All Cyclon state for an `n`-node overlay.
#[derive(Debug, Clone)]
pub struct CyclonOverlay {
    nodes: Vec<CyclonNode>,
    alive: Vec<bool>,
}

impl CyclonOverlay {
    /// Creates an overlay of `n` nodes with the given per-node parameters.
    /// Views start empty; call a bootstrap method before running rounds.
    pub fn new(n: usize, cache_size: usize, shuffle_len: usize) -> Self {
        let nodes = (0..n)
            .map(|i| CyclonNode::new(i as NodeId, cache_size, shuffle_len))
            .collect();
        CyclonOverlay {
            nodes,
            alive: vec![true; n],
        }
    }

    /// Number of nodes (alive or dead).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the overlay has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Seeds every node's cache with uniformly random alive peers.
    pub fn bootstrap_random<R: Rng>(&mut self, rng: &mut R) {
        let n = self.nodes.len();
        let alive_ids: Vec<NodeId> = (0..n as NodeId)
            .filter(|&i| self.alive[i as usize])
            .collect();
        for i in 0..n {
            if !self.alive[i] {
                continue;
            }
            let want = self.nodes[i].cache_size();
            let mut pool = alive_ids.clone();
            pool.retain(|&x| x != i as NodeId);
            pool.shuffle(rng);
            pool.truncate(want);
            self.nodes[i].bootstrap(pool);
        }
    }

    /// Seeds a deterministic ring + chords bootstrap (used by tests that
    /// need reproducible topology without an RNG).
    pub fn bootstrap_ring(&mut self) {
        let n = self.nodes.len() as NodeId;
        for i in 0..self.nodes.len() {
            let id = i as NodeId;
            let want = self.nodes[i].cache_size();
            let peers = (1..=want as NodeId).map(|k| (id + k) % n);
            self.nodes[i].bootstrap(peers);
        }
    }

    /// Marks a node dead (e.g. PM went to sleep). Dead nodes stop
    /// shuffling, refuse contacts and are dropped from callers' views on
    /// failed contact.
    pub fn set_dead(&mut self, node: NodeId) {
        self.alive[node as usize] = false;
    }

    /// Marks a node alive again.
    pub fn set_alive(&mut self, node: NodeId) {
        self.alive[node as usize] = true;
    }

    /// Liveness of a node.
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node as usize]
    }

    /// Immutable access to a node's Cyclon state.
    #[inline]
    pub fn node(&self, id: NodeId) -> &CyclonNode {
        &self.nodes[id as usize]
    }

    /// Mutable access to a node's Cyclon state.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut CyclonNode {
        &mut self.nodes[id as usize]
    }

    /// Picks a uniformly random *alive* peer from `node`'s view, pruning
    /// dead entries as they are discovered (the failed-contact path).
    /// Returns `None` if the view holds no alive peer.
    pub fn random_alive_peer<R: Rng>(&mut self, node: NodeId, rng: &mut R) -> Option<NodeId> {
        Self::random_alive_peer_in(&mut self.nodes[node as usize], &self.alive, rng)
    }

    /// Splits the overlay into its disjoint per-node slots plus the
    /// shared liveness view. Each slot can then be mutated independently
    /// — this is what lets the trainer fan per-PM peer sampling out over
    /// a worker pool, each worker holding one `&mut CyclonNode` and the
    /// read-only `alive` slice. Pair with
    /// [`random_alive_peer_in`](Self::random_alive_peer_in).
    pub fn split_mut(&mut self) -> (&mut [CyclonNode], &[bool]) {
        (&mut self.nodes, &self.alive)
    }

    /// [`random_alive_peer`](Self::random_alive_peer) on one node slot
    /// obtained from [`split_mut`](Self::split_mut): same draws, same
    /// dead-entry pruning, usable from concurrent workers on disjoint
    /// slots.
    pub fn random_alive_peer_in<R: Rng>(
        node: &mut CyclonNode,
        alive: &[bool],
        rng: &mut R,
    ) -> Option<NodeId> {
        loop {
            let peer = node.random_peer(rng)?;
            if alive[peer as usize] {
                return Some(peer);
            }
            node.remove(peer);
        }
    }

    /// Runs one synchronous shuffle round: every alive node, in a random
    /// activation order, performs one active shuffle against the oldest
    /// entry of its view. Transport and tracing come from the [`RoundIo`]
    /// context — `RoundIo::default()` is the ideal, untraced round, and
    /// neither field changes the draws taken from `rng`, so any context
    /// yields the same view evolution for contacts that succeed.
    pub fn run_round<R: Rng>(&mut self, rng: &mut R, mut io: RoundIo<'_>) {
        let mut order: Vec<usize> = (0..self.nodes.len()).filter(|&i| self.alive[i]).collect();
        order.shuffle(rng);
        for i in order {
            let Some(pending) = self.nodes[i].start_shuffle(rng) else {
                continue;
            };
            let target = pending.target as usize;
            if let Some(tracer) = io.tracer {
                // Unified wire accounting: the request leg is transmitted
                // at attempt time whether or not it arrives.
                tracer.add("net.msgs", 1);
                tracer.add("net.bytes_tx", pending.sent.len() as u64 * DESCRIPTOR_BYTES);
            }
            let delivered = match io.contact.as_mut() {
                Some(f) => f(i as NodeId, pending.target),
                None => true,
            };
            if !self.alive[target] || !delivered {
                // Contact failure (dead, crashed or timed out): descriptor
                // already dropped by start_shuffle, nothing else to do.
                self.nodes[i].abort_shuffle(&pending);
                if let Some(tracer) = io.tracer {
                    tracer.emit(EventKind::ShuffleFailed {
                        from: i as u32,
                        to: pending.target,
                    });
                }
                continue;
            }
            let reply = self.nodes[target].handle_shuffle(&pending.sent, rng);
            self.nodes[i].complete_shuffle(&pending, &reply);
            if let Some(tracer) = io.tracer {
                tracer.emit(EventKind::ShuffleCompleted {
                    from: i as u32,
                    to: pending.target,
                });
                tracer.add("cyclon.shuffles", 1);
                tracer.add(
                    "cyclon.bytes",
                    (pending.sent.len() + reply.len()) as u64 * DESCRIPTOR_BYTES,
                );
                // Reply leg of the completed round trip.
                tracer.add("net.msgs", 1);
                tracer.add("net.bytes_tx", reply.len() as u64 * DESCRIPTOR_BYTES);
                tracer.add(
                    "net.bytes_rx",
                    (pending.sent.len() + reply.len()) as u64 * DESCRIPTOR_BYTES,
                );
            }
        }
    }

    /// In-degree of every node (how many alive views contain it) — used to
    /// validate the uniformity of the sampling service.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if !self.alive[i] {
                continue;
            }
            for nb in node.neighbors() {
                deg[nb as usize] += 1;
            }
        }
        deg
    }

    /// `true` when the directed union graph over alive nodes is weakly
    /// connected (every alive node reachable from the first alive node,
    /// treating view edges as undirected).
    pub fn is_connected(&self) -> bool {
        let n = self.nodes.len();
        let alive_count = self.alive.iter().filter(|&&a| a).count();
        if alive_count <= 1 {
            return true;
        }
        // Build undirected adjacency over alive nodes.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if !self.alive[i] {
                continue;
            }
            for nb in node.neighbors() {
                let j = nb as usize;
                if self.alive[j] {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        let start = (0..n).find(|&i| self.alive[i]).expect("alive node exists");
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start] = true;
        let mut visited = 0usize;
        while let Some(u) = stack.pop() {
            visited += 1;
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        visited == alive_count
    }
}

impl Checkpointable for CyclonOverlay {
    fn save(&self, w: &mut Writer) {
        w.put_usize(self.nodes.len());
        w.put_bool_slice(&self.alive);
        for node in &self.nodes {
            node.save(w);
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_usize()?;
        if n != self.nodes.len() {
            return Err(SnapshotError::Corrupt(format!(
                "overlay has {n} nodes in snapshot, {} in world",
                self.nodes.len()
            )));
        }
        let alive = r.get_bool_slice()?;
        if alive.len() != n {
            return Err(SnapshotError::Corrupt(format!(
                "overlay alive vector has {} entries for {n} nodes",
                alive.len()
            )));
        }
        for node in &mut self.nodes {
            node.restore(r)?;
        }
        self.alive = alive;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn overlay(n: usize) -> (CyclonOverlay, SmallRng) {
        let mut o = CyclonOverlay::new(n, 8, 4);
        let mut rng = SmallRng::seed_from_u64(7);
        o.bootstrap_random(&mut rng);
        (o, rng)
    }

    #[test]
    fn bootstrap_fills_views() {
        let (o, _) = overlay(50);
        for i in 0..50 {
            assert_eq!(o.node(i).view_size(), 8);
        }
    }

    #[test]
    fn rounds_keep_overlay_connected() {
        let (mut o, mut rng) = overlay(100);
        for _ in 0..30 {
            o.run_round(&mut rng, RoundIo::default());
            assert!(o.is_connected());
        }
    }

    #[test]
    fn in_degree_concentrates_around_cache_size() {
        let (mut o, mut rng) = overlay(200);
        for _ in 0..50 {
            o.run_round(&mut rng, RoundIo::default());
        }
        let deg = o.in_degrees();
        let mean: f64 = deg.iter().sum::<usize>() as f64 / deg.len() as f64;
        // Total out-degree ≈ n * cache_size, so mean in-degree ≈ cache size.
        assert!((mean - 8.0).abs() < 1.0, "mean in-degree {mean}");
        // No pathological hub: Cyclon keeps the max in-degree within a
        // small factor of the mean.
        let max = *deg.iter().max().unwrap();
        assert!(max < 8 * 4, "max in-degree {max}");
    }

    #[test]
    fn dead_nodes_age_out_of_views() {
        let (mut o, mut rng) = overlay(60);
        for d in 0..10u32 {
            o.set_dead(d);
        }
        for _ in 0..40 {
            o.run_round(&mut rng, RoundIo::default());
        }
        for i in 10..60u32 {
            for nb in o.node(i).neighbors().collect::<Vec<_>>() {
                assert!(nb >= 10, "node {i} still references dead node {nb}");
            }
        }
    }

    #[test]
    fn random_alive_peer_prunes_dead() {
        let (mut o, mut rng) = overlay(20);
        // Kill everything except nodes 0 and 1.
        for d in 2..20u32 {
            o.set_dead(d);
        }
        for _ in 0..50 {
            if let Some(p) = o.random_alive_peer(0, &mut rng) {
                assert_eq!(p, 1);
            }
        }
    }

    #[test]
    fn split_slot_peer_sampling_matches_whole_overlay_api() {
        let (mut a, rng0) = overlay(30);
        for d in [3u32, 7, 11] {
            a.set_dead(d);
        }
        let mut b = a.clone();
        let mut rng_a = rng0.clone();
        let mut rng_b = rng0;
        for i in 0..30u32 {
            let via_whole = a.random_alive_peer(i, &mut rng_a);
            let (nodes, alive) = b.split_mut();
            let via_slot =
                CyclonOverlay::random_alive_peer_in(&mut nodes[i as usize], alive, &mut rng_b);
            assert_eq!(via_whole, via_slot, "node {i} diverged");
        }
        // Pruning must have been applied identically too.
        for i in 0..30u32 {
            let na: Vec<NodeId> = a.node(i).neighbors().collect();
            let nb: Vec<NodeId> = b.node(i).neighbors().collect();
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn ring_bootstrap_is_deterministic_and_connected() {
        let mut o = CyclonOverlay::new(30, 5, 3);
        o.bootstrap_ring();
        assert!(o.is_connected());
        let view: Vec<NodeId> = o.node(0).neighbors().collect();
        assert_eq!(view, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn revived_node_rejoins_via_bootstrap() {
        let (mut o, mut rng) = overlay(30);
        o.set_dead(3);
        for _ in 0..20 {
            o.run_round(&mut rng, RoundIo::default());
        }
        o.set_alive(3);
        o.node_mut(3).bootstrap([0, 1, 2]);
        for _ in 0..10 {
            o.run_round(&mut rng, RoundIo::default());
        }
        assert!(o.is_connected());
        // Node 3 should be referenced again by someone.
        assert!(o.in_degrees()[3] > 0);
    }

    #[test]
    fn single_node_overlay_is_trivially_connected() {
        let o = CyclonOverlay::new(1, 4, 2);
        assert!(o.is_connected());
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let (mut a, mut rng) = overlay(40);
        a.set_dead(5);
        for _ in 0..10 {
            a.run_round(&mut rng, RoundIo::default());
        }

        let mut w = Writer::new();
        a.save(&mut w);
        let bytes = w.into_bytes();

        let mut b = CyclonOverlay::new(40, 8, 4);
        b.restore(&mut Reader::new(&bytes)).unwrap();
        let mut w2 = Writer::new();
        b.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        assert!(!b.is_alive(5));

        // Identical evolution from identical RNG state.
        let mut rng_b = rng.clone();
        for _ in 0..10 {
            a.run_round(&mut rng, RoundIo::default());
            b.run_round(&mut rng_b, RoundIo::default());
        }
        for i in 0..40u32 {
            let na: Vec<NodeId> = a.node(i).neighbors().collect();
            let nb: Vec<NodeId> = b.node(i).neighbors().collect();
            assert_eq!(na, nb, "node {i} diverged after restore");
        }
    }

    #[test]
    fn restore_rejects_mismatched_overlay() {
        let (a, _) = overlay(40);
        let mut w = Writer::new();
        a.save(&mut w);
        let bytes = w.into_bytes();
        let mut wrong_n = CyclonOverlay::new(41, 8, 4);
        assert!(wrong_n.restore(&mut Reader::new(&bytes)).is_err());
        let mut wrong_cache = CyclonOverlay::new(40, 9, 4);
        assert!(wrong_cache.restore(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn run_round_with_true_contact_matches_run_round_exactly() {
        let (mut a, mut rng_a) = overlay(40);
        let mut b = a.clone();
        let mut rng_b = rng_a.clone();
        for _ in 0..15 {
            a.run_round(&mut rng_a, RoundIo::default());
            b.run_round(&mut rng_b, RoundIo::contact(&mut |_, _| true));
        }
        for i in 0..40u32 {
            let na: Vec<NodeId> = a.node(i).neighbors().collect();
            let nb: Vec<NodeId> = b.node(i).neighbors().collect();
            assert_eq!(na, nb, "node {i} diverged");
        }
    }

    #[test]
    fn failed_contacts_evict_without_refilling() {
        let (mut o, mut rng) = overlay(20);
        let before: usize = (0..20u32).map(|i| o.node(i).view_size()).sum();
        // Every contact fails: each initiator loses its shuffle target and
        // gains nothing back.
        o.run_round(&mut rng, RoundIo::contact(&mut |_, _| false));
        let after: usize = (0..20u32).map(|i| o.node(i).view_size()).sum();
        assert!(
            after < before,
            "no eviction on non-response: {before} → {after}"
        );
    }

    #[test]
    fn overlay_survives_partial_contact_failure() {
        let (mut o, mut rng) = overlay(60);
        let mut flip = false;
        for _ in 0..40 {
            o.run_round(
                &mut rng,
                RoundIo::contact(&mut |_, _| {
                    flip = !flip;
                    flip
                }),
            );
        }
        // Half the shuffles failing must not disconnect the overlay.
        assert!(o.is_connected());
    }
}
