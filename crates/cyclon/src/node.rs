//! Per-node Cyclon state machine.
//!
//! Implements the enhanced shuffle of Voulgaris, Gavidia & van Steen,
//! *"Cyclon: Inexpensive membership management for unstructured P2P
//! overlays"* (JNSM 2005), which the GLAP paper uses as its peer-sampling
//! component: each round a node increments all descriptor ages, contacts the
//! neighbour with the *oldest* descriptor, and the two nodes swap up to
//! `shuffle_len` descriptors, preferring to overwrite the entries they just
//! sent away.

use crate::descriptor::{Descriptor, NodeId};
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};
use rand::seq::SliceRandom;
use rand::Rng;

/// The Cyclon state of one overlay node.
#[derive(Debug, Clone)]
pub struct CyclonNode {
    id: NodeId,
    cache_size: usize,
    shuffle_len: usize,
    cache: Vec<Descriptor>,
}

/// An in-flight shuffle started by [`CyclonNode::start_shuffle`]; must be
/// finished with [`CyclonNode::complete_shuffle`] once the peer's reply
/// arrives (or abandoned with [`CyclonNode::abort_shuffle`] if the peer is
/// down).
#[derive(Debug, Clone)]
pub struct PendingShuffle {
    /// The contacted peer.
    pub target: NodeId,
    /// Descriptors sent to the peer (includes our own fresh descriptor).
    pub sent: Vec<Descriptor>,
}

impl CyclonNode {
    /// Creates a node with the given cache size and shuffle length.
    /// `shuffle_len` is clamped to `cache_size`.
    pub fn new(id: NodeId, cache_size: usize, shuffle_len: usize) -> Self {
        assert!(cache_size > 0, "cache size must be positive");
        CyclonNode {
            id,
            cache_size,
            shuffle_len: shuffle_len.min(cache_size),
            cache: Vec::new(),
        }
    }

    /// This node's id.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current partial view (neighbour ids).
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.cache.iter().map(|d| d.node)
    }

    /// Number of cached descriptors.
    #[inline]
    pub fn view_size(&self) -> usize {
        self.cache.len()
    }

    /// Maximum cache size.
    #[inline]
    pub fn cache_size(&self) -> usize {
        self.cache_size
    }

    /// Seeds the cache with bootstrap neighbours (deduplicated, self
    /// excluded, truncated to the cache size).
    pub fn bootstrap<I: IntoIterator<Item = NodeId>>(&mut self, peers: I) {
        self.cache.clear();
        for node in peers {
            if node != self.id
                && !self.cache.iter().any(|d| d.node == node)
                && self.cache.len() < self.cache_size
            {
                self.cache.push(Descriptor::fresh(node));
            }
        }
    }

    /// Uniformly random neighbour from the current view — the peer
    /// selection service the consolidation and learning components consume.
    pub fn random_peer<R: Rng>(&self, rng: &mut R) -> Option<NodeId> {
        self.cache.choose(rng).map(|d| d.node)
    }

    /// Drops every descriptor pointing at `node` (used when a contact
    /// failed or the node is known to have left, e.g. a PM went to sleep).
    pub fn remove(&mut self, node: NodeId) {
        self.cache.retain(|d| d.node != node);
    }

    /// Begins an active shuffle: ages all descriptors, removes the oldest
    /// one as the shuffle target, and selects up to `shuffle_len − 1`
    /// additional random descriptors plus a fresh self-descriptor to send.
    ///
    /// Returns `None` when the cache is empty (isolated node).
    pub fn start_shuffle<R: Rng>(&mut self, rng: &mut R) -> Option<PendingShuffle> {
        if self.cache.is_empty() {
            return None;
        }
        for d in &mut self.cache {
            d.age += 1;
        }
        // Remove the oldest descriptor: it is the shuffle target.
        let oldest_idx = self
            .cache
            .iter()
            .enumerate()
            .max_by_key(|(_, d)| d.age)
            .map(|(i, _)| i)
            .expect("non-empty");
        let target = self.cache.swap_remove(oldest_idx).node;

        // Pick shuffle_len - 1 random others (without removing them yet).
        let extra = self.shuffle_len.saturating_sub(1).min(self.cache.len());
        let mut idxs: Vec<usize> = (0..self.cache.len()).collect();
        idxs.shuffle(rng);
        idxs.truncate(extra);
        let mut sent: Vec<Descriptor> = idxs.iter().map(|&i| self.cache[i]).collect();
        sent.push(Descriptor::fresh(self.id));
        Some(PendingShuffle { target, sent })
    }

    /// Passive side of a shuffle: replies with up to `shuffle_len` random
    /// descriptors from the local cache and merges the received ones.
    pub fn handle_shuffle<R: Rng>(
        &mut self,
        received: &[Descriptor],
        rng: &mut R,
    ) -> Vec<Descriptor> {
        let count = self.shuffle_len.min(self.cache.len());
        let mut idxs: Vec<usize> = (0..self.cache.len()).collect();
        idxs.shuffle(rng);
        idxs.truncate(count);
        let reply: Vec<Descriptor> = idxs.iter().map(|&i| self.cache[i]).collect();
        self.merge(received, &reply);
        reply
    }

    /// Active side completion: merges the peer's reply, preferring to
    /// overwrite the descriptors that were sent out.
    pub fn complete_shuffle(&mut self, pending: &PendingShuffle, reply: &[Descriptor]) {
        self.merge(reply, &pending.sent);
    }

    /// Abandons an active shuffle whose target did not answer. The target's
    /// descriptor was already discarded by `start_shuffle`, which is
    /// exactly Cyclon's failure handling: dead nodes silently age out.
    pub fn abort_shuffle(&mut self, _pending: &PendingShuffle) {}

    /// Cyclon merge: insert received descriptors (ignoring self-pointers
    /// and keeping the younger copy of duplicates), using empty cache slots
    /// first and then replacing the entries in `sent_away`.
    fn merge(&mut self, received: &[Descriptor], sent_away: &[Descriptor]) {
        for &d in received {
            if d.node == self.id {
                continue;
            }
            if let Some(existing) = self.cache.iter_mut().find(|e| e.node == d.node) {
                if d.age < existing.age {
                    existing.age = d.age;
                }
                continue;
            }
            if self.cache.len() < self.cache_size {
                self.cache.push(d);
                continue;
            }
            // Cache full: replace one of the descriptors we sent away.
            if let Some(pos) = self.cache.iter().position(|e| {
                sent_away
                    .iter()
                    .any(|s| s.node == e.node && e.node != d.node)
            }) {
                self.cache[pos] = d;
            }
            // Otherwise drop the received descriptor (cache stays full).
        }
        debug_assert!(self.cache.len() <= self.cache_size);
        debug_assert!(self.cache.iter().all(|d| d.node != self.id));
    }
}

/// Checkpointing a node captures its cache *in order* (shuffle-target
/// selection and replacement depend on slot order) plus the static
/// parameters, which `restore` validates against the receiving node.
impl Checkpointable for CyclonNode {
    fn save(&self, w: &mut Writer) {
        w.put_u32(self.id);
        w.put_usize(self.cache_size);
        w.put_usize(self.shuffle_len);
        w.put_usize(self.cache.len());
        for d in &self.cache {
            w.put_u32(d.node);
            w.put_u32(d.age);
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let id = r.get_u32()?;
        let cache_size = r.get_usize()?;
        let shuffle_len = r.get_usize()?;
        if id != self.id || cache_size != self.cache_size || shuffle_len != self.shuffle_len {
            return Err(SnapshotError::Corrupt(format!(
                "cyclon node mismatch: snapshot ({id}, c={cache_size}, l={shuffle_len}) \
                 vs world ({}, c={}, l={})",
                self.id, self.cache_size, self.shuffle_len
            )));
        }
        let n = r.get_usize()?;
        if n > cache_size {
            return Err(SnapshotError::Corrupt(format!(
                "cyclon node {id} cache holds {n} > size {cache_size}"
            )));
        }
        let mut cache = Vec::with_capacity(n);
        for _ in 0..n {
            let node = r.get_u32()?;
            let age = r.get_u32()?;
            if node == id || cache.iter().any(|d: &Descriptor| d.node == node) {
                return Err(SnapshotError::Corrupt(format!(
                    "cyclon node {id} cache has self-pointer or duplicate {node}"
                )));
            }
            cache.push(Descriptor { node, age });
        }
        self.cache = cache;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn bootstrap_filters_self_and_duplicates() {
        let mut n = CyclonNode::new(0, 4, 3);
        n.bootstrap([0, 1, 1, 2, 3, 4, 5]);
        let view: Vec<NodeId> = n.neighbors().collect();
        assert_eq!(view, vec![1, 2, 3, 4]);
    }

    #[test]
    fn random_peer_comes_from_view() {
        let mut n = CyclonNode::new(0, 4, 3);
        n.bootstrap([1, 2, 3]);
        let mut r = rng();
        for _ in 0..20 {
            let p = n.random_peer(&mut r).unwrap();
            assert!((1..=3).contains(&p));
        }
    }

    #[test]
    fn empty_view_has_no_peer_and_no_shuffle() {
        let mut n = CyclonNode::new(0, 4, 3);
        assert!(n.random_peer(&mut rng()).is_none());
        assert!(n.start_shuffle(&mut rng()).is_none());
    }

    #[test]
    fn start_shuffle_targets_oldest_and_sends_self() {
        let mut n = CyclonNode::new(0, 4, 3);
        n.bootstrap([1, 2, 3]);
        // Age descriptor of node 2 artificially via repeated shuffles is
        // indirect; instead rely on bootstrap ages all being equal: after
        // aging, all have age 1 and any may be chosen. Check structure.
        let p = n.start_shuffle(&mut rng()).unwrap();
        assert!((1..=3).contains(&p.target));
        assert!(p.sent.iter().any(|d| d.node == 0 && d.age == 0));
        assert!(p.sent.len() <= 3);
        // Target removed from cache.
        assert!(!n.neighbors().any(|x| x == p.target));
    }

    #[test]
    fn handle_shuffle_merges_and_replies() {
        let mut n = CyclonNode::new(5, 4, 3);
        n.bootstrap([1, 2]);
        let received = vec![Descriptor::fresh(9), Descriptor::fresh(5)];
        let reply = n.handle_shuffle(&received, &mut rng());
        assert!(reply.len() <= 3);
        // 9 merged, self-descriptor 5 ignored.
        assert!(n.neighbors().any(|x| x == 9));
        assert!(!n.neighbors().any(|x| x == 5));
    }

    #[test]
    fn merge_keeps_younger_duplicate() {
        let mut n = CyclonNode::new(0, 4, 3);
        n.bootstrap([1]);
        // Age node 1's descriptor.
        let p = n.start_shuffle(&mut rng()).unwrap();
        assert_eq!(p.target, 1);
        // Re-learn node 1 with age 0 via a reply.
        n.complete_shuffle(&p, &[Descriptor::fresh(1)]);
        let d: Vec<Descriptor> = n.cache.clone();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].node, 1);
        assert_eq!(d[0].age, 0);
    }

    #[test]
    fn merge_respects_cache_capacity() {
        let mut n = CyclonNode::new(0, 3, 3);
        n.bootstrap([1, 2, 3]);
        let received = vec![Descriptor::fresh(4), Descriptor::fresh(5)];
        // Nothing was sent away → full cache, received entries dropped.
        n.merge(&received, &[]);
        assert_eq!(n.view_size(), 3);
        assert!(!n.neighbors().any(|x| x == 4 || x == 5));
    }

    #[test]
    fn merge_overwrites_sent_entries_when_full() {
        let mut n = CyclonNode::new(0, 3, 3);
        n.bootstrap([1, 2, 3]);
        let sent = vec![Descriptor::fresh(1)];
        n.merge(&[Descriptor::fresh(9)], &sent);
        assert_eq!(n.view_size(), 3);
        assert!(n.neighbors().any(|x| x == 9));
        assert!(!n.neighbors().any(|x| x == 1));
    }

    #[test]
    fn remove_drops_descriptor() {
        let mut n = CyclonNode::new(0, 4, 3);
        n.bootstrap([1, 2, 3]);
        n.remove(2);
        assert_eq!(n.view_size(), 2);
        assert!(!n.neighbors().any(|x| x == 2));
    }

    #[test]
    fn shuffle_ages_survivors() {
        let mut n = CyclonNode::new(0, 4, 2);
        n.bootstrap([1, 2, 3]);
        let _ = n.start_shuffle(&mut rng()).unwrap();
        assert!(n.cache.iter().all(|d| d.age == 1));
    }
}
