//! The GLAP wire format: every message one node sends another,
//! serialized with the `glap-snapshot` little-endian codec.
//!
//! Both transports route *encoded* payloads — [`SimTransport`]
//! (crate::SimTransport) included — so the byte stream a run puts on the
//! wire is identical whichever transport carries it, and the driver's
//! `net.bytes_tx` telemetry counter measures real serialized payload
//! sizes, not estimates.
//!
//! Format: a one-byte message tag followed by the tag-specific body.
//! Descriptors are `u32` node id + `u32` age; VM profiles are the
//! current demand vector plus the running-average parts; Q-table pairs
//! reuse their [`Checkpointable`] encoding (so a table travels the wire
//! in exactly its checkpoint representation).

use glap_cluster::{Resources, RunningAvg, VmProfile};
use glap_cyclon::{Descriptor, NodeId};
use glap_qlearn::{QParams, QTablePair};
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};

/// Message tags (the first byte of every encoded payload).
pub const TAG_SHUFFLE_REQUEST: u8 = 1;
/// See [`TAG_SHUFFLE_REQUEST`].
pub const TAG_SHUFFLE_REPLY: u8 = 2;
/// See [`TAG_SHUFFLE_REQUEST`].
pub const TAG_PROFILE_REQUEST: u8 = 3;
/// See [`TAG_SHUFFLE_REQUEST`].
pub const TAG_PROFILE_REPLY: u8 = 4;
/// See [`TAG_SHUFFLE_REQUEST`].
pub const TAG_AGG_PUSH: u8 = 5;
/// See [`TAG_SHUFFLE_REQUEST`].
pub const TAG_AGG_REPLY: u8 = 6;
/// Codec-coded aggregation push: a [`glap_codec::CodedHeader`]-prefixed
/// body produced by the cluster's configured [`TableCodec`]
/// (`glap_codec::TableCodec`). Only non-identity codecs use these tags —
/// the identity codec keeps the legacy [`TAG_AGG_PUSH`] path verbatim.
pub const TAG_AGG_PUSH_CODED: u8 = 7;
/// See [`TAG_AGG_PUSH_CODED`].
pub const TAG_AGG_REPLY_CODED: u8 = 8;

/// One protocol message between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Active half of a Cyclon shuffle: the initiator's descriptor batch.
    ShuffleRequest {
        /// Descriptors sent by the initiator (fresh self + random sample).
        descriptors: Vec<Descriptor>,
    },
    /// Passive half of a Cyclon shuffle: the target's random sample back.
    ShuffleReply {
        /// Descriptors returned by the target.
        descriptors: Vec<Descriptor>,
    },
    /// Ask a neighbour for its VMs' demand profiles (Algorithm 1's
    /// "profiles of the neighbour's VMs" input to local training).
    ProfileRequest,
    /// The neighbour's current VM demand profiles.
    ProfileReply {
        /// One profile per VM hosted on the replying PM.
        profiles: Vec<VmProfile>,
    },
    /// Push–pull aggregation, push leg: the initiator's full Q-table pair.
    AggPush {
        /// The initiator's tables (boxed: a table pair is ~100 KiB).
        table: Box<QTablePair>,
    },
    /// Push–pull aggregation, pull leg: the merged result back.
    AggReply {
        /// The merged tables the initiator adopts.
        table: Box<QTablePair>,
    },
    /// Codec-coded aggregation push (delta / quantized / priority): an
    /// opaque, self-describing coded body the receiver's codec state
    /// interprets. Versioned via the body's leading
    /// [`CodedHeader`](glap_codec::CodedHeader).
    AggPushCoded {
        /// The coded body (header + codec-specific payload).
        body: Vec<u8>,
    },
    /// Codec-coded aggregation reply.
    AggReplyCoded {
        /// The coded body (header + codec-specific payload).
        body: Vec<u8>,
    },
}

fn put_profile(w: &mut Writer, p: &VmProfile) {
    w.put_f64(p.current.cpu());
    w.put_f64(p.current.mem());
    w.put_u64(p.avg.count());
    w.put_f64(p.avg.value().cpu());
    w.put_f64(p.avg.value().mem());
}

fn get_profile(r: &mut Reader<'_>) -> Result<VmProfile, SnapshotError> {
    let cur = Resources::new(r.get_f64()?, r.get_f64()?);
    let count = r.get_u64()?;
    let avg = Resources::new(r.get_f64()?, r.get_f64()?);
    Ok(VmProfile {
        current: cur,
        avg: RunningAvg::from_parts(count, avg),
    })
}

/// Serializes a profile list (shared by the wire format and the
/// [`NodeCore`](crate::NodeCore) checkpoint encoding).
pub(crate) fn put_profiles(w: &mut Writer, ps: &[VmProfile]) {
    w.put_usize(ps.len());
    for p in ps {
        put_profile(w, p);
    }
}

/// Inverse of [`put_profiles`].
pub(crate) fn get_profiles(r: &mut Reader<'_>) -> Result<Vec<VmProfile>, SnapshotError> {
    let n = r.get_usize()?;
    // Each profile is 40 bytes; reject absurd lengths before allocating.
    if n > r.remaining() / 40 + 1 {
        return Err(SnapshotError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_profile(r)?);
    }
    Ok(out)
}

pub(crate) fn put_descriptors(w: &mut Writer, ds: &[Descriptor]) {
    w.put_usize(ds.len());
    for d in ds {
        w.put_u32(d.node);
        w.put_u32(d.age);
    }
}

pub(crate) fn get_descriptors(r: &mut Reader<'_>) -> Result<Vec<Descriptor>, SnapshotError> {
    let n = r.get_usize()?;
    if n > r.remaining() / 8 + 1 {
        return Err(SnapshotError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let node = r.get_u32()?;
        let age = r.get_u32()?;
        out.push(Descriptor { node, age });
    }
    Ok(out)
}

impl WireMsg {
    /// The tag byte this message encodes under.
    pub fn tag(&self) -> u8 {
        match self {
            WireMsg::ShuffleRequest { .. } => TAG_SHUFFLE_REQUEST,
            WireMsg::ShuffleReply { .. } => TAG_SHUFFLE_REPLY,
            WireMsg::ProfileRequest => TAG_PROFILE_REQUEST,
            WireMsg::ProfileReply { .. } => TAG_PROFILE_REPLY,
            WireMsg::AggPush { .. } => TAG_AGG_PUSH,
            WireMsg::AggReply { .. } => TAG_AGG_REPLY,
            WireMsg::AggPushCoded { .. } => TAG_AGG_PUSH_CODED,
            WireMsg::AggReplyCoded { .. } => TAG_AGG_REPLY_CODED,
        }
    }

    /// Serializes to the canonical payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(self.tag());
        match self {
            WireMsg::ShuffleRequest { descriptors } | WireMsg::ShuffleReply { descriptors } => {
                put_descriptors(&mut w, descriptors);
            }
            WireMsg::ProfileRequest => {}
            WireMsg::ProfileReply { profiles } => put_profiles(&mut w, profiles),
            WireMsg::AggPush { table } | WireMsg::AggReply { table } => table.save(&mut w),
            WireMsg::AggPushCoded { body } | WireMsg::AggReplyCoded { body } => {
                w.put_bytes(body);
            }
        }
        w.into_bytes()
    }

    /// Decodes a payload. Q-table messages need the receiver's
    /// [`QParams`] to shape the table before restoring into it (the
    /// wire carries values, not hyper-parameters the whole cluster
    /// already agrees on).
    pub fn decode(payload: &[u8], params: QParams) -> Result<WireMsg, SnapshotError> {
        let mut r = Reader::new(payload);
        let tag = r.get_u8()?;
        let msg = match tag {
            TAG_SHUFFLE_REQUEST => WireMsg::ShuffleRequest {
                descriptors: get_descriptors(&mut r)?,
            },
            TAG_SHUFFLE_REPLY => WireMsg::ShuffleReply {
                descriptors: get_descriptors(&mut r)?,
            },
            TAG_PROFILE_REQUEST => WireMsg::ProfileRequest,
            TAG_PROFILE_REPLY => WireMsg::ProfileReply {
                profiles: get_profiles(&mut r)?,
            },
            TAG_AGG_PUSH | TAG_AGG_REPLY => {
                let mut table = Box::new(QTablePair::new(params));
                table.restore(&mut r)?;
                if tag == TAG_AGG_PUSH {
                    WireMsg::AggPush { table }
                } else {
                    WireMsg::AggReply { table }
                }
            }
            TAG_AGG_PUSH_CODED | TAG_AGG_REPLY_CODED => {
                let body = r.get_bytes()?;
                // The codec interprets the body later; validate its
                // self-describing header here so corrupt payloads are
                // rejected at the same layer as every other message.
                glap_codec::CodedHeader::peek(&body)?;
                if tag == TAG_AGG_PUSH_CODED {
                    WireMsg::AggPushCoded { body }
                } else {
                    WireMsg::AggReplyCoded { body }
                }
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown wire message tag {other}"
                )))
            }
        };
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after wire message",
                r.remaining()
            )));
        }
        Ok(msg)
    }
}

/// The tag byte of an encoded payload (0 for an empty payload, which no
/// encoder produces).
pub fn payload_tag(payload: &[u8]) -> u8 {
    payload.first().copied().unwrap_or(0)
}

/// Whether `tag` names a request-type message — one whose delivery is a
/// request/reply round trip subject to the fault model. Replies travel
/// inside that round trip, so the driver delivers them unconditionally.
pub fn tag_is_request(tag: u8) -> bool {
    matches!(
        tag,
        TAG_SHUFFLE_REQUEST | TAG_PROFILE_REQUEST | TAG_AGG_PUSH | TAG_AGG_PUSH_CODED
    )
}

/// The per-kind telemetry counter an encoded payload accrues under.
pub fn tag_counter(tag: u8) -> Option<&'static str> {
    match tag {
        TAG_SHUFFLE_REQUEST => Some("wire.shuffle.req"),
        TAG_SHUFFLE_REPLY => Some("wire.shuffle.reply"),
        TAG_PROFILE_REQUEST => Some("wire.profile.req"),
        TAG_PROFILE_REPLY => Some("wire.profile.reply"),
        TAG_AGG_PUSH => Some("wire.agg.push"),
        TAG_AGG_REPLY => Some("wire.agg.reply"),
        TAG_AGG_PUSH_CODED => Some("wire.agg.push_coded"),
        TAG_AGG_REPLY_CODED => Some("wire.agg.reply_coded"),
        _ => None,
    }
}

/// The coded header of a coded aggregation payload (`None` for legacy
/// tags or malformed bodies). Lets the transport driver account `codec.*`
/// counters from bytes alone, without per-peer codec state.
pub fn coded_header(payload: &[u8]) -> Option<glap_codec::CodedHeader> {
    if !matches!(
        payload_tag(payload),
        TAG_AGG_PUSH_CODED | TAG_AGG_REPLY_CODED
    ) {
        return None;
    }
    // Skip the tag byte and the u64 length prefix `put_bytes` wrote.
    payload
        .get(9..)
        .and_then(|body| glap_codec::CodedHeader::peek(body).ok())
}

/// An outgoing message from a node: destination plus typed payload.
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// Destination node.
    pub to: NodeId,
    /// The message itself (encoded by the transport before routing).
    pub msg: WireMsg,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: WireMsg) {
        let bytes = msg.encode();
        assert_eq!(payload_tag(&bytes), msg.tag());
        let back = WireMsg::decode(&bytes, QParams::default()).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn shuffle_messages_round_trip() {
        let ds = vec![
            Descriptor { node: 3, age: 0 },
            Descriptor { node: 9, age: 17 },
        ];
        roundtrip(WireMsg::ShuffleRequest {
            descriptors: ds.clone(),
        });
        roundtrip(WireMsg::ShuffleReply { descriptors: ds });
        roundtrip(WireMsg::ShuffleRequest {
            descriptors: vec![],
        });
    }

    #[test]
    fn profile_messages_round_trip() {
        roundtrip(WireMsg::ProfileRequest);
        let profiles = vec![
            VmProfile {
                current: Resources::new(0.25, 0.5),
                avg: RunningAvg::from_parts(7, Resources::new(0.3, 0.4)),
            },
            VmProfile {
                current: Resources::new(0.0, 0.0),
                avg: RunningAvg::from_parts(0, Resources::new(0.0, 0.0)),
            },
        ];
        roundtrip(WireMsg::ProfileReply { profiles });
    }

    #[test]
    fn table_messages_round_trip_bit_exact() {
        use glap_cluster::Resources;
        use glap_qlearn::{PmState, VmAction};
        let mut table = QTablePair::new(QParams::default());
        let s = PmState::from_utilization(Resources::splat(0.5));
        let a = VmAction::from_demand(Resources::splat(0.3));
        table.out.set(s, a, -0.0);
        table.r#in.set(s, a, 1.25e-3);
        let msg = WireMsg::AggPush {
            table: Box::new(table.clone()),
        };
        let bytes = msg.encode();
        let back = WireMsg::decode(&bytes, QParams::default()).unwrap();
        let WireMsg::AggPush { table: t } = back else {
            panic!("wrong variant");
        };
        let (mut w1, mut w2) = (Writer::new(), Writer::new());
        table.save(&mut w1);
        t.save(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
        roundtrip(WireMsg::AggReply {
            table: Box::new(table),
        });
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        assert!(WireMsg::decode(&[], QParams::default()).is_err());
        assert!(WireMsg::decode(&[99], QParams::default()).is_err());
        // Trailing garbage after a valid message.
        let mut bytes = WireMsg::ProfileRequest.encode();
        bytes.push(0);
        assert!(WireMsg::decode(&bytes, QParams::default()).is_err());
        // Truncated descriptor list.
        let bytes = WireMsg::ShuffleRequest {
            descriptors: vec![Descriptor { node: 1, age: 2 }],
        }
        .encode();
        assert!(WireMsg::decode(&bytes[..bytes.len() - 2], QParams::default()).is_err());
    }

    #[test]
    fn request_reply_classification() {
        assert!(tag_is_request(TAG_SHUFFLE_REQUEST));
        assert!(tag_is_request(TAG_PROFILE_REQUEST));
        assert!(tag_is_request(TAG_AGG_PUSH));
        assert!(tag_is_request(TAG_AGG_PUSH_CODED));
        assert!(!tag_is_request(TAG_SHUFFLE_REPLY));
        assert!(!tag_is_request(TAG_PROFILE_REPLY));
        assert!(!tag_is_request(TAG_AGG_REPLY));
        assert!(!tag_is_request(TAG_AGG_REPLY_CODED));
    }

    fn coded_body(kind: u8, subtag: u8, err: f64, junk: &[u8]) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(1); // CODEC_WIRE_VERSION
        w.put_u8(kind);
        w.put_u8(subtag);
        w.put_f64(err);
        let mut body = w.into_bytes();
        body.extend_from_slice(junk);
        body
    }

    #[test]
    fn coded_messages_round_trip_and_validate_headers() {
        let body = coded_body(1, 1, 0.0, &[1, 2, 3]);
        roundtrip(WireMsg::AggPushCoded { body: body.clone() });
        roundtrip(WireMsg::AggReplyCoded { body: body.clone() });

        let msg = WireMsg::AggPushCoded { body: body.clone() };
        let bytes = msg.encode();
        let h = coded_header(&bytes).expect("valid coded header");
        assert_eq!(h.kind, glap_codec::CodecKind::Delta);
        assert_eq!(h.subtag, glap_codec::subtag::DELTA);
        assert!(coded_header(&WireMsg::ProfileRequest.encode()).is_none());

        // A coded message whose body fails header validation is rejected
        // at decode time.
        for bad in [
            coded_body(9, 1, 0.0, &[]),           // unknown kind
            coded_body(1, 77, 0.0, &[]),          // unknown subtag
            coded_body(1, 1, f64::INFINITY, &[]), // invalid error bound
            vec![1, 1],                           // truncated header
        ] {
            let bytes = WireMsg::AggPushCoded { body: bad }.encode();
            assert!(WireMsg::decode(&bytes, QParams::default()).is_err());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_descriptors() -> impl Strategy<Value = Vec<Descriptor>> {
        proptest::collection::vec(
            (0u32..1024, 0u32..64).prop_map(|(node, age)| Descriptor { node, age }),
            0..12,
        )
    }

    fn arb_profiles() -> impl Strategy<Value = Vec<VmProfile>> {
        proptest::collection::vec(
            (
                0.0f64..1.0,
                0.0f64..1.0,
                0u64..100,
                0.0f64..1.0,
                0.0f64..1.0,
            )
                .prop_map(|(c, m, n, ac, am)| VmProfile {
                    current: Resources::new(c, m),
                    avg: RunningAvg::from_parts(n, Resources::new(ac, am)),
                }),
            0..8,
        )
    }

    fn arb_table() -> impl Strategy<Value = Box<QTablePair>> {
        proptest::collection::vec((0usize..6561, -5.0f64..5.0), 0..60).prop_map(|entries| {
            let mut t = QTablePair::new(QParams::default());
            for (i, v) in entries {
                t.out.set_index(i, v);
                t.r#in.set_index((i * 13) % 6561, -v);
            }
            Box::new(t)
        })
    }

    fn arb_coded_body() -> impl Strategy<Value = Vec<u8>> {
        (
            0u8..4,
            0u8..5,
            0.0f64..1.0,
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..64),
        )
            .prop_map(|(kind, subtag, err, junk)| {
                let mut w = Writer::new();
                w.put_u8(1);
                w.put_u8(kind);
                w.put_u8(subtag);
                w.put_f64(err);
                let mut body = w.into_bytes();
                body.extend_from_slice(&junk);
                body
            })
    }

    fn arb_msg() -> impl Strategy<Value = WireMsg> {
        prop_oneof![
            arb_descriptors().prop_map(|descriptors| WireMsg::ShuffleRequest { descriptors }),
            arb_descriptors().prop_map(|descriptors| WireMsg::ShuffleReply { descriptors }),
            Just(WireMsg::ProfileRequest),
            arb_profiles().prop_map(|profiles| WireMsg::ProfileReply { profiles }),
            arb_table().prop_map(|table| WireMsg::AggPush { table }),
            arb_table().prop_map(|table| WireMsg::AggReply { table }),
            arb_coded_body().prop_map(|body| WireMsg::AggPushCoded { body }),
            arb_coded_body().prop_map(|body| WireMsg::AggReplyCoded { body }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every message round-trips, and the same payload with *any*
        /// trailing bytes appended is rejected — a decode that succeeds
        /// must have consumed the payload exactly.
        #[test]
        fn decode_rejects_trailing_bytes(
            msg in arb_msg(),
            junk in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 1..16),
        ) {
            let bytes = msg.encode();
            let back = WireMsg::decode(&bytes, QParams::default()).unwrap();
            prop_assert_eq!(&back, &msg);
            let mut padded = bytes;
            padded.extend_from_slice(&junk);
            prop_assert!(WireMsg::decode(&padded, QParams::default()).is_err());
        }

        /// Truncating a valid payload anywhere may not panic and (except
        /// at full length) may not decode successfully.
        #[test]
        fn decode_rejects_truncations(msg in arb_msg(), cut in 0usize..10_000) {
            let bytes = msg.encode();
            let cut = cut % bytes.len();
            prop_assert!(WireMsg::decode(&bytes[..cut], QParams::default()).is_err());
        }

        /// Arbitrary byte soup never panics the decoder, and anything it
        /// *does* accept re-encodes to exactly the input bytes (the wire
        /// format is canonical).
        #[test]
        fn decode_is_total_and_canonical(
            bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..200),
        ) {
            if let Ok(msg) = WireMsg::decode(&bytes, QParams::default()) {
                prop_assert_eq!(msg.encode(), bytes);
            }
        }
    }
}
