//! # glap-node — GLAP as real, transport-agnostic nodes
//!
//! The rest of the workspace trains GLAP with centralized loops that
//! *model* a distributed protocol: one function iterates over all PMs,
//! touching their tables and overlay views directly. This crate carves
//! that per-node protocol logic out into [`NodeCore`] — one PM's
//! complete GLAP state machine with a pure message-driven API — and
//! runs fleets of them behind a [`Transport`]:
//!
//! * [`SimTransport`] hosts the cores in a `Vec` and steps them inline —
//!   the deterministic oracle;
//! * [`ChannelTransport`] hosts them on a pool of real worker threads,
//!   every exchange a serialized [`WireMsg`] over `std::sync::mpsc`
//!   channels — real concurrency, real bytes on the wire.
//!
//! The two are **byte-identical**: each core draws randomness only from
//! its private `Stream::Node(id)` cursor, the driver
//! ([`NodeRuntime`]) fixes delivery order with a seeded
//! `Stream::Delivery` schedule, and all payloads cross both transports
//! as the same encoded bytes. A channel-backed run at any worker count
//! therefore reproduces the in-process run bit-for-bit — Q-tables,
//! telemetry counters and all — which is the property the
//! `node_runtime` experiment binary and CI enforce.

#![warn(missing_docs)]

mod channel;
mod core;
mod runtime;
mod transport;
mod wire;

pub use crate::core::{NodeCore, NodeInput, TickKind};
pub use channel::ChannelTransport;
pub use runtime::NodeRuntime;
pub use transport::{Routed, SimTransport, Transport};
pub use wire::{
    coded_header, payload_tag, tag_counter, tag_is_request, Outgoing, WireMsg, TAG_AGG_PUSH,
    TAG_AGG_PUSH_CODED, TAG_AGG_REPLY, TAG_AGG_REPLY_CODED, TAG_PROFILE_REPLY, TAG_PROFILE_REQUEST,
    TAG_SHUFFLE_REPLY, TAG_SHUFFLE_REQUEST,
};
