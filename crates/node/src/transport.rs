//! The [`Transport`] abstraction: how a fleet of [`NodeCore`]s is
//! hosted and how [`NodeInput`]s reach them.
//!
//! The driver ([`NodeRuntime`](crate::NodeRuntime)) is transport-generic:
//! it decides *what* happens (the seeded delivery schedule, the fault
//! fates, the telemetry) and the transport decides *where* the cores
//! live — in a plain `Vec` stepped inline ([`SimTransport`]) or behind
//! real mpsc channels on a worker pool
//! ([`ChannelTransport`](crate::ChannelTransport)). Both return each
//! node's outgoing messages as **encoded** wire payloads, so byte
//! accounting and message routing are identical across transports.

use crate::core::{NodeCore, NodeInput, TickKind};
use crate::wire::Outgoing;
use glap::prelude::{Checkpointable, GlapConfig, Reader, SnapshotError, Writer};
use glap_cyclon::NodeId;
use glap_qlearn::QTablePair;

/// Encoded outgoing traffic: `(destination, wire payload)` pairs.
pub type Routed = Vec<(NodeId, Vec<u8>)>;

/// Hosts N [`NodeCore`]s and routes inputs to them.
pub trait Transport {
    /// Number of nodes hosted.
    fn n_nodes(&self) -> usize;

    /// Delivers one input to one node, returning the node's outgoing
    /// messages as `(destination, encoded payload)` pairs.
    fn dispatch(&mut self, node: NodeId, input: NodeInput) -> Routed;

    /// Runs the deferred `TrainLocal` tick on every node. Training
    /// emits no messages and each node draws only its private RNG, so
    /// transports are free to run the nodes concurrently.
    fn train_all(&mut self);

    /// Serializes every node (ascending id order) into `w`, one
    /// length-prefixed record per node — the framing is part of the
    /// format, so a snapshot taken on one transport restores on any
    /// other.
    fn save_nodes(&mut self, w: &mut Writer);

    /// Restores every node (ascending id order) from `r` (the framing
    /// written by [`Transport::save_nodes`], whichever transport wrote
    /// it).
    fn restore_nodes(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError>;

    /// Tears the transport down, yielding each node's Q-table pair in
    /// id order.
    fn into_tables(self) -> Vec<QTablePair>
    where
        Self: Sized;
}

/// Encodes a batch of outgoing messages to wire payloads.
pub(crate) fn encode_outgoing(outs: Vec<Outgoing>) -> Routed {
    outs.into_iter().map(|o| (o.to, o.msg.encode())).collect()
}

/// The in-process transport: nodes live in a `Vec` and every input is
/// handled inline on the caller's thread. This is the oracle the
/// channel transport must match byte-for-byte.
pub struct SimTransport {
    nodes: Vec<NodeCore>,
}

impl SimTransport {
    /// `n` fresh nodes with ids `0..n`.
    pub fn new(n: usize, cfg: &GlapConfig, master_seed: u64) -> SimTransport {
        SimTransport {
            nodes: (0..n as NodeId)
                .map(|id| NodeCore::new(id, cfg, master_seed))
                .collect(),
        }
    }

    /// Direct access for tests and diagnostics.
    pub fn node(&self, id: NodeId) -> &NodeCore {
        &self.nodes[id as usize]
    }
}

impl Transport for SimTransport {
    fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn dispatch(&mut self, node: NodeId, input: NodeInput) -> Routed {
        encode_outgoing(self.nodes[node as usize].handle(input))
    }

    fn train_all(&mut self) {
        for node in &mut self.nodes {
            let outs = node.on_tick(TickKind::TrainLocal);
            debug_assert!(outs.is_empty(), "TrainLocal must not emit messages");
        }
    }

    fn save_nodes(&mut self, w: &mut Writer) {
        for node in &self.nodes {
            let mut nw = Writer::new();
            node.save(&mut nw);
            w.put_bytes(&nw.into_bytes());
        }
    }

    fn restore_nodes(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        for node in &mut self.nodes {
            let bytes = r.get_bytes()?;
            let mut nr = Reader::new(&bytes);
            node.restore(&mut nr)?;
            if !nr.is_exhausted() {
                return Err(SnapshotError::Corrupt(format!(
                    "trailing bytes after node {} record",
                    node.id()
                )));
            }
        }
        Ok(())
    }

    fn into_tables(self) -> Vec<QTablePair> {
        self.nodes.into_iter().map(NodeCore::into_table).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{payload_tag, TAG_SHUFFLE_REQUEST};

    #[test]
    fn sim_transport_routes_and_encodes() {
        let cfg = GlapConfig::default();
        let mut t = SimTransport::new(4, &cfg, 11);
        for id in 0..4u32 {
            t.dispatch(
                id,
                NodeInput::Bootstrap {
                    peers: (0..4).filter(|&p| p != id).collect(),
                },
            );
        }
        let outs = t.dispatch(0, NodeInput::Tick(TickKind::Shuffle));
        assert_eq!(outs.len(), 1);
        assert_eq!(payload_tag(&outs[0].1), TAG_SHUFFLE_REQUEST);
        assert_ne!(outs[0].0, 0);
    }

    #[test]
    fn save_restore_round_trips_all_nodes() {
        let cfg = GlapConfig::default();
        let mut t = SimTransport::new(3, &cfg, 5);
        for id in 0..3u32 {
            t.dispatch(
                id,
                NodeInput::Bootstrap {
                    peers: (0..3).filter(|&p| p != id).collect(),
                },
            );
            t.dispatch(id, NodeInput::Tick(TickKind::Shuffle));
        }
        let mut w = Writer::new();
        t.save_nodes(&mut w);
        let bytes = w.into_bytes();

        let mut fresh = SimTransport::new(3, &cfg, 99);
        let mut r = Reader::new(&bytes);
        fresh.restore_nodes(&mut r).unwrap();
        assert!(r.is_exhausted());
        let mut w2 = Writer::new();
        fresh.save_nodes(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }
}
