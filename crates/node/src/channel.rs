//! [`ChannelTransport`]: the same fleet of [`NodeCore`]s, hosted on a
//! pool of real worker threads and driven over `std::sync::mpsc`
//! channels.
//!
//! Nodes are partitioned into contiguous chunks, one chunk per worker;
//! each worker owns its cores outright (no locks, no sharing) and
//! serves a strict request/reply protocol: every [`ToWorker`] message
//! the coordinator sends is answered by exactly one [`FromWorker`]
//! reply on a shared return channel. Because the coordinator never has
//! more than one routing request in flight, replies cannot interleave —
//! which, together with each core drawing only its private
//! `Stream::Node(id)` RNG, makes a channel-backed run byte-identical to
//! [`SimTransport`](crate::SimTransport) at any worker count.
//!
//! The one deliberately concurrent step is [`train_all`]: `TrainLocal`
//! emits no messages, so the coordinator broadcasts it and all workers
//! train their chunks simultaneously.
//!
//! [`train_all`]: crate::Transport::train_all

use crate::core::{NodeCore, NodeInput, TickKind};
use crate::transport::{encode_outgoing, Routed, Transport};
use crate::wire::Outgoing;
use glap::prelude::{Checkpointable, GlapConfig, Reader, SnapshotError, Writer};
use glap_cyclon::NodeId;
use glap_par::resolve_threads;
use glap_qlearn::QTablePair;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Coordinator → worker requests.
enum ToWorker {
    /// Route one input to one owned node; reply `Out`.
    Input { node: NodeId, input: NodeInput },
    /// Run `TrainLocal` on every owned node; reply `TrainDone`.
    Train,
    /// Serialize every owned node; reply `Saved`.
    Save,
    /// Restore one owned node from its snapshot bytes; reply `Restored`.
    Restore { node: NodeId, bytes: Vec<u8> },
    /// Hand the cores back and exit; reply `Finished`.
    Finish,
}

/// Worker → coordinator replies.
enum FromWorker {
    Out(Routed),
    TrainDone,
    /// `(node id, snapshot bytes)` per owned node, ascending id.
    Saved(Vec<(NodeId, Vec<u8>)>),
    Restored {
        err: Option<String>,
    },
    Finished(Vec<NodeCore>),
}

fn worker_loop(
    mut cores: Vec<NodeCore>,
    base: NodeId,
    rx: Receiver<ToWorker>,
    tx: Sender<FromWorker>,
) {
    while let Ok(req) = rx.recv() {
        let reply = match req {
            ToWorker::Input { node, input } => {
                let outs = cores[(node - base) as usize].handle(input);
                FromWorker::Out(encode_outgoing(outs))
            }
            ToWorker::Train => {
                for core in &mut cores {
                    let outs: Vec<Outgoing> = core.on_tick(TickKind::TrainLocal);
                    debug_assert!(outs.is_empty(), "TrainLocal must not emit messages");
                }
                FromWorker::TrainDone
            }
            ToWorker::Save => FromWorker::Saved(
                cores
                    .iter()
                    .map(|core| {
                        let mut w = Writer::new();
                        core.save(&mut w);
                        (core.id(), w.into_bytes())
                    })
                    .collect(),
            ),
            ToWorker::Restore { node, bytes } => {
                let mut r = Reader::new(&bytes);
                let err = cores[(node - base) as usize]
                    .restore(&mut r)
                    .err()
                    .map(|e| e.to_string());
                FromWorker::Restored { err }
            }
            ToWorker::Finish => {
                let _ = tx.send(FromWorker::Finished(std::mem::take(&mut cores)));
                return;
            }
        };
        if tx.send(reply).is_err() {
            return;
        }
    }
}

/// Channel-backed [`Transport`]: N nodes multiplexed over a worker
/// thread pool, all traffic as serialized wire payloads over mpsc
/// channels. See the module docs for the determinism argument.
pub struct ChannelTransport {
    n: usize,
    chunk: usize,
    to_workers: Vec<Sender<ToWorker>>,
    from_workers: Receiver<FromWorker>,
    handles: Vec<JoinHandle<()>>,
}

impl ChannelTransport {
    /// `n` fresh nodes with ids `0..n`, spread over `threads` workers
    /// (`None` resolves through [`glap_par::resolve_threads`]: the
    /// `GLAP_THREADS` env var, then all cores).
    pub fn new(
        n: usize,
        cfg: &GlapConfig,
        master_seed: u64,
        threads: Option<usize>,
    ) -> ChannelTransport {
        let workers = resolve_threads(threads).min(n.max(1));
        let chunk = n.div_ceil(workers);
        let (from_tx, from_rx) = channel();
        let mut to_workers = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            let cores: Vec<NodeCore> = (lo as NodeId..hi as NodeId)
                .map(|id| NodeCore::new(id, cfg, master_seed))
                .collect();
            let (to_tx, to_rx) = channel();
            let tx = from_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("glap-node-{lo}..{hi}"))
                    .spawn(move || worker_loop(cores, lo as NodeId, to_rx, tx))
                    .expect("spawn node worker"),
            );
            to_workers.push(to_tx);
        }
        ChannelTransport {
            n,
            chunk,
            to_workers,
            from_workers: from_rx,
            handles,
        }
    }

    /// Number of worker threads hosting the nodes.
    pub fn workers(&self) -> usize {
        self.to_workers.len()
    }

    fn owner(&self, node: NodeId) -> usize {
        node as usize / self.chunk
    }

    fn send(&self, node: NodeId, req: ToWorker) {
        self.to_workers[self.owner(node)]
            .send(req)
            .expect("node worker died");
    }

    fn recv(&self) -> FromWorker {
        self.from_workers.recv().expect("node worker died")
    }

    /// Sends `Finish` to every worker, collects the cores and joins the
    /// threads. Idempotent (workers already gone = nothing to collect).
    fn shutdown(&mut self) -> Vec<NodeCore> {
        let mut cores = Vec::with_capacity(self.n);
        let senders: Vec<Sender<ToWorker>> = self.to_workers.drain(..).collect();
        for tx in senders {
            if tx.send(ToWorker::Finish).is_ok() {
                match self.recv() {
                    FromWorker::Finished(chunk) => cores.extend(chunk),
                    _ => unreachable!("worker replied out of protocol"),
                }
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        cores.sort_by_key(|c| c.id());
        cores
    }
}

impl Transport for ChannelTransport {
    fn n_nodes(&self) -> usize {
        self.n
    }

    fn dispatch(&mut self, node: NodeId, input: NodeInput) -> Routed {
        self.send(node, ToWorker::Input { node, input });
        match self.recv() {
            FromWorker::Out(outs) => outs,
            _ => unreachable!("worker replied out of protocol"),
        }
    }

    fn train_all(&mut self) {
        // The only broadcast: all workers train their chunks in
        // parallel, then the coordinator collects one TrainDone each.
        for tx in &self.to_workers {
            tx.send(ToWorker::Train).expect("node worker died");
        }
        for _ in 0..self.to_workers.len() {
            match self.recv() {
                FromWorker::TrainDone => {}
                _ => unreachable!("worker replied out of protocol"),
            }
        }
    }

    fn save_nodes(&mut self, w: &mut Writer) {
        let mut parts: Vec<(NodeId, Vec<u8>)> = Vec::with_capacity(self.n);
        for tx in &self.to_workers {
            tx.send(ToWorker::Save).expect("node worker died");
        }
        for _ in 0..self.to_workers.len() {
            match self.recv() {
                FromWorker::Saved(chunk) => parts.extend(chunk),
                _ => unreachable!("worker replied out of protocol"),
            }
        }
        parts.sort_by_key(|(id, _)| *id);
        // Length-prefixed per node so restore can route each blob to its
        // owner without understanding the node encoding.
        for (_, bytes) in &parts {
            w.put_bytes(bytes);
        }
    }

    fn restore_nodes(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        for node in 0..self.n as NodeId {
            let bytes = r.get_bytes()?;
            self.send(node, ToWorker::Restore { node, bytes });
            match self.recv() {
                FromWorker::Restored { err: None } => {}
                FromWorker::Restored { err: Some(e) } => return Err(SnapshotError::Corrupt(e)),
                _ => unreachable!("worker replied out of protocol"),
            }
        }
        Ok(())
    }

    fn into_tables(mut self) -> Vec<QTablePair> {
        self.shutdown()
            .into_iter()
            .map(NodeCore::into_table)
            .collect()
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTransport;

    fn bootstrap<T: Transport>(t: &mut T) {
        let n = t.n_nodes() as NodeId;
        for id in 0..n {
            t.dispatch(
                id,
                NodeInput::Bootstrap {
                    peers: (0..n).filter(|&p| p != id).collect(),
                },
            );
        }
    }

    /// Drives the same scripted exchange through both transports and
    /// asserts identical outgoing bytes at every step.
    fn run_script<T: Transport>(t: &mut T) -> Vec<Routed> {
        bootstrap(t);
        let mut log = Vec::new();
        for round in 0..5 {
            for id in 0..t.n_nodes() as NodeId {
                let outs = t.dispatch(id, NodeInput::Tick(TickKind::Shuffle));
                // Deliver inline, recording everything.
                let mut queue: Vec<(NodeId, Routed)> = vec![(id, outs)];
                while let Some((from, outs)) = queue.pop() {
                    log.push(outs.clone());
                    for (to, payload) in outs {
                        let next = t.dispatch(to, NodeInput::Deliver { from, payload });
                        queue.push((to, next));
                    }
                }
            }
            if round % 2 == 0 {
                t.train_all();
            }
        }
        log
    }

    #[test]
    fn channel_matches_sim_byte_for_byte() {
        let cfg = GlapConfig {
            learning_iterations: 3,
            ..Default::default()
        };
        let mut sim = SimTransport::new(6, &cfg, 17);
        let sim_log = run_script(&mut sim);
        for threads in [1, 3] {
            let mut chan = ChannelTransport::new(6, &cfg, 17, Some(threads));
            assert_eq!(chan.workers(), threads);
            let chan_log = run_script(&mut chan);
            assert_eq!(sim_log, chan_log, "threads={threads}");
            // Final tables identical too.
            let st: Vec<_> = SimTransport::new(0, &cfg, 0).into_tables();
            assert!(st.is_empty());
            let a = {
                let mut fresh = SimTransport::new(6, &cfg, 17);
                run_script(&mut fresh);
                fresh.into_tables()
            };
            let b = chan.into_tables();
            let enc = |ts: &[QTablePair]| {
                let mut w = Writer::new();
                for t in ts {
                    t.save(&mut w);
                }
                w.into_bytes()
            };
            assert_eq!(enc(&a), enc(&b));
        }
    }

    #[test]
    fn channel_save_restore_round_trips() {
        let cfg = GlapConfig::default();
        let mut t = ChannelTransport::new(5, &cfg, 23, Some(2));
        bootstrap(&mut t);
        for id in 0..5u32 {
            t.dispatch(id, NodeInput::Tick(TickKind::Shuffle));
        }
        let mut w = Writer::new();
        t.save_nodes(&mut w);
        let bytes = w.into_bytes();

        // Restore into a fresh pool with a different worker count.
        let mut fresh = ChannelTransport::new(5, &cfg, 99, Some(3));
        let mut r = Reader::new(&bytes);
        fresh.restore_nodes(&mut r).unwrap();
        assert!(r.is_exhausted());
        let mut w2 = Writer::new();
        fresh.save_nodes(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // The framing is transport-independent: the same snapshot
        // restores into the in-process oracle and re-saves identically.
        let mut sim = SimTransport::new(5, &cfg, 7);
        let mut r = Reader::new(&bytes);
        sim.restore_nodes(&mut r).unwrap();
        assert!(r.is_exhausted());
        let mut w3 = Writer::new();
        sim.save_nodes(&mut w3);
        assert_eq!(bytes, w3.into_bytes());
    }

    #[test]
    fn drop_without_finish_joins_workers() {
        let cfg = GlapConfig::default();
        let t = ChannelTransport::new(4, &cfg, 1, Some(2));
        drop(t); // must not hang or leak threads
    }
}
