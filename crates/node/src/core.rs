//! `NodeCore`: one PM's complete GLAP protocol logic as a pure
//! message-driven state machine.
//!
//! A `NodeCore` owns everything a real node would own — its Cyclon view,
//! its Q-table pair, its private RNG stream — and interacts with the
//! world only through [`on_tick`](NodeCore::on_tick),
//! [`on_message`](NodeCore::on_message) and
//! [`on_send_failed`](NodeCore::on_send_failed), each returning the
//! messages the node wants sent. No shared state, no callbacks, no
//! transport knowledge: the same core runs single-threaded inside the
//! simulation loop or on a worker thread behind an mpsc channel, and —
//! because its randomness is the private `Stream::Node(id)` cursor —
//! produces byte-identical results either way.
//!
//! The protocol it implements is GLAP's training side: Cyclon shuffles
//! keep the overlay fresh, `ProfileRequest`/`ProfileReply` fetch one
//! neighbour's VM profiles for Algorithm 1's local training, and
//! `AggPush`/`AggReply` run Algorithm 2's symmetric push–pull merge with
//! the same re-pick-and-retry rule as
//! [`aggregation_round`](glap::aggregation::aggregation_round).

use crate::wire::{self, Outgoing, WireMsg};
use glap::prelude::{
    local_train_with, restore_rng, save_rng, stream_rng, Checkpointable, CyclonNode, GlapConfig,
    PendingShuffle, Reader, SimRng, SnapshotError, Stream, Writer, AGGREGATION_MAX_ATTEMPTS,
};
use glap_cluster::VmProfile;
use glap_codec::{AnyCodec, CodecKind, TableCodec};
use glap_cyclon::NodeId;
use glap_qlearn::QTablePair;

/// The driver-initiated protocol steps of a round, in the order the
/// driver issues them. Ticks carry no payload: everything a step needs
/// is either node state or arrives by message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickKind {
    /// Initiate this round's Cyclon shuffle.
    Shuffle,
    /// Start a learning step: if eligible, request a neighbour's
    /// profiles (Algorithm 1 lines 3–5).
    LearnRequest,
    /// Run the deferred local training over own + received profiles
    /// (Algorithm 1 lines 6–13). Issued after all profile exchanges of
    /// the round settle, so every node can train in parallel.
    TrainLocal,
    /// Initiate this round's push–pull aggregation (Algorithm 2).
    Aggregate,
}

/// Everything that can happen to a node, as one typed event. The
/// transports route `NodeInput`s to cores; `Deliver`/`Failed` carry the
/// *encoded* wire payload so both transports move real bytes.
#[derive(Debug, Clone)]
pub enum NodeInput {
    /// A driver-initiated protocol step.
    Tick(TickKind),
    /// A message from another node arrived.
    Deliver {
        /// The sender.
        from: NodeId,
        /// Encoded [`WireMsg`].
        payload: Vec<u8>,
    },
    /// A message this node sent could not be delivered (dropped, timed
    /// out, or the target is down).
    Failed {
        /// The intended recipient.
        to: NodeId,
        /// The encoded message that failed.
        payload: Vec<u8>,
        /// Whether the failure was the target being crashed (prune it)
        /// as opposed to a transient loss (keep it).
        target_down: bool,
    },
    /// The driver's per-round world snapshot: this PM's VM profiles and
    /// whether it is eligible to train this round.
    SetWorld {
        /// Profiles of the VMs currently placed on this PM.
        profiles: Vec<VmProfile>,
        /// Algorithm 1 line 3: active and under the learning threshold.
        eligible: bool,
    },
    /// Seed the Cyclon view (start-up only).
    Bootstrap {
        /// Initial neighbours.
        peers: Vec<NodeId>,
    },
}

/// One PM's GLAP protocol state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct NodeCore {
    id: NodeId,
    cfg: GlapConfig,
    cyclon: CyclonNode,
    table: QTablePair,
    rng: SimRng,
    /// Shuffle awaiting its reply (at most one in flight per round).
    pending: Option<PendingShuffle>,
    /// This round's own VM profiles (from `SetWorld`).
    own_profiles: Vec<VmProfile>,
    eligible: bool,
    /// Neighbour profiles received this round, if any.
    neighbor_profiles: Option<Vec<VmProfile>>,
    /// Set by `LearnRequest` when eligible; consumed by `TrainLocal`.
    pending_train: bool,
    /// Aggregation attempts used this round (Algorithm 2 retry cap).
    agg_attempts: usize,
    /// Bellman updates applied (2 per training iteration).
    updates: u64,
    /// Payload codec (and its per-peer state) for aggregation exchanges.
    /// Identity nodes keep the legacy verbatim-table wire path and never
    /// touch this beyond checkpointing its (empty) state.
    codec: AnyCodec,
    /// Coded aggregation bodies the codec rejected (diagnostic only, not
    /// checkpointed): each one dropped its exchange and reset the peer's
    /// codec state instead of crashing the node.
    codec_errors: u64,
    train_buf: Vec<VmProfile>,
    idx_buf: Vec<usize>,
}

impl NodeCore {
    /// A fresh node. Its RNG is the private `Stream::Node(id)` cursor of
    /// `master_seed`, so no ordering of other nodes' work can perturb
    /// its draws.
    pub fn new(id: NodeId, cfg: &GlapConfig, master_seed: u64) -> NodeCore {
        NodeCore {
            id,
            cfg: *cfg,
            cyclon: CyclonNode::new(id, cfg.cyclon_cache, cfg.cyclon_shuffle),
            table: QTablePair::new(cfg.qparams),
            rng: stream_rng(master_seed, Stream::Node(id)),
            pending: None,
            own_profiles: Vec::new(),
            eligible: false,
            neighbor_profiles: None,
            pending_train: false,
            agg_attempts: 0,
            updates: 0,
            codec: AnyCodec::new(cfg.codec),
            codec_errors: 0,
            train_buf: Vec::new(),
            idx_buf: Vec::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current Q-table pair.
    pub fn table(&self) -> &QTablePair {
        &self.table
    }

    /// Consumes the node, yielding its Q-table pair.
    pub fn into_table(self) -> QTablePair {
        self.table
    }

    /// Bellman updates this node has applied.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Coded aggregation bodies this node's codec rejected (each dropped
    /// its exchange and resynchronized the peer instead of panicking).
    pub fn codec_errors(&self) -> u64 {
        self.codec_errors
    }

    /// Current Cyclon view size (diagnostics).
    pub fn view_size(&self) -> usize {
        self.cyclon.view_size()
    }

    /// Routes any [`NodeInput`] to the matching handler.
    pub fn handle(&mut self, input: NodeInput) -> Vec<Outgoing> {
        match input {
            NodeInput::Tick(tick) => self.on_tick(tick),
            NodeInput::Deliver { from, payload } => {
                let msg = WireMsg::decode(&payload, self.cfg.qparams)
                    .expect("transport delivered an undecodable payload");
                self.on_message(from, msg)
            }
            NodeInput::Failed {
                to,
                payload,
                target_down,
            } => self.on_send_failed(to, wire::payload_tag(&payload), target_down),
            NodeInput::SetWorld { profiles, eligible } => {
                self.set_world(profiles, eligible);
                Vec::new()
            }
            NodeInput::Bootstrap { peers } => {
                self.cyclon.bootstrap(peers);
                Vec::new()
            }
        }
    }

    /// Installs the driver's per-round world snapshot.
    pub fn set_world(&mut self, profiles: Vec<VmProfile>, eligible: bool) {
        self.own_profiles = profiles;
        self.eligible = eligible;
    }

    /// A driver-initiated protocol step.
    pub fn on_tick(&mut self, tick: TickKind) -> Vec<Outgoing> {
        match tick {
            TickKind::Shuffle => {
                let Some(pending) = self.cyclon.start_shuffle(&mut self.rng) else {
                    return Vec::new();
                };
                let out = Outgoing {
                    to: pending.target,
                    msg: WireMsg::ShuffleRequest {
                        descriptors: pending.sent.clone(),
                    },
                };
                self.pending = Some(pending);
                vec![out]
            }
            TickKind::LearnRequest => {
                self.neighbor_profiles = None;
                self.pending_train = self.eligible;
                if !self.eligible {
                    return Vec::new();
                }
                match self.cyclon.random_peer(&mut self.rng) {
                    Some(peer) => vec![Outgoing {
                        to: peer,
                        msg: WireMsg::ProfileRequest,
                    }],
                    // Empty view: train over own profiles alone, exactly
                    // like a trainer PM with no alive neighbour.
                    None => Vec::new(),
                }
            }
            TickKind::TrainLocal => {
                if self.pending_train {
                    self.train_local();
                }
                Vec::new()
            }
            TickKind::Aggregate => {
                self.agg_attempts = 1;
                self.push_table()
            }
        }
    }

    /// A message from `from` arrived.
    pub fn on_message(&mut self, from: NodeId, msg: WireMsg) -> Vec<Outgoing> {
        match msg {
            WireMsg::ShuffleRequest { descriptors } => {
                let reply = self.cyclon.handle_shuffle(&descriptors, &mut self.rng);
                vec![Outgoing {
                    to: from,
                    msg: WireMsg::ShuffleReply { descriptors: reply },
                }]
            }
            WireMsg::ShuffleReply { descriptors } => {
                if let Some(pending) = self.pending.take() {
                    debug_assert_eq!(pending.target, from, "shuffle reply from wrong peer");
                    self.cyclon.complete_shuffle(&pending, &descriptors);
                }
                Vec::new()
            }
            WireMsg::ProfileRequest => vec![Outgoing {
                to: from,
                msg: WireMsg::ProfileReply {
                    profiles: self.own_profiles.clone(),
                },
            }],
            WireMsg::ProfileReply { profiles } => {
                self.neighbor_profiles = Some(profiles);
                Vec::new()
            }
            WireMsg::AggPush { table } => {
                // Symmetric UPDATE (Algorithm 2): both sides end with the
                // identical merged table; the pull leg ships it back.
                let mut incoming = *table;
                QTablePair::merge_symmetric(&mut self.table, &mut incoming);
                vec![Outgoing {
                    to: from,
                    msg: WireMsg::AggReply {
                        table: Box::new(incoming),
                    },
                }]
            }
            WireMsg::AggReply { table } => {
                self.table = *table;
                Vec::new()
            }
            WireMsg::AggPushCoded { body } => {
                match self.codec.apply_push(from, &mut self.table, &body) {
                    Ok(reply) => vec![Outgoing {
                        to: from,
                        msg: WireMsg::AggReplyCoded { body: reply },
                    }],
                    Err(_) => {
                        // A body the codec cannot apply — version or
                        // baseline skew, a malformed payload — drops the
                        // exchange instead of crashing the node: send no
                        // reply and clear the peer's codec state so the
                        // next contact resyncs via FULL/STALE_FULL. The
                        // driver counts the missing reply under
                        // `codec.decode_errors`.
                        self.drop_coded_exchange(from)
                    }
                }
            }
            WireMsg::AggReplyCoded { body } => {
                if self
                    .codec
                    .apply_reply(from, &mut self.table, &body)
                    .is_err()
                {
                    // Same recovery as the push side: our table is left
                    // as-is (no partial merge escapes the codec) and the
                    // peer's codec state is dropped for a clean resync.
                    self.drop_coded_exchange(from);
                }
                Vec::new()
            }
        }
    }

    /// A send of ours failed; `tag` is the failed message's wire tag.
    pub fn on_send_failed(&mut self, to: NodeId, tag: u8, target_down: bool) -> Vec<Outgoing> {
        match tag {
            wire::TAG_SHUFFLE_REQUEST => {
                if let Some(pending) = self.pending.take() {
                    self.cyclon.abort_shuffle(&pending);
                }
                Vec::new()
            }
            wire::TAG_PROFILE_REQUEST => {
                // Train over own profiles alone this round; prune a
                // crashed neighbour (Cyclon's failed-contact rule).
                if target_down {
                    self.cyclon.remove(to);
                }
                Vec::new()
            }
            wire::TAG_AGG_PUSH | wire::TAG_AGG_PUSH_CODED => {
                if tag == wire::TAG_AGG_PUSH_CODED {
                    self.codec.push_failed(to);
                }
                if target_down {
                    self.cyclon.remove(to);
                }
                if self.agg_attempts < AGGREGATION_MAX_ATTEMPTS {
                    // Re-pick the partner and re-send: the original peer
                    // may be the problem (same rule as aggregation_round).
                    self.agg_attempts += 1;
                    self.push_table()
                } else {
                    Vec::new()
                }
            }
            // Replies ride the request's round trip; the driver never
            // fails them independently.
            _ => Vec::new(),
        }
    }

    /// Recovery path for a coded aggregation body the codec rejected:
    /// count it and wipe the peer's codec state (baselines, in-flight
    /// bookkeeping) so the next contact starts from a clean FULL /
    /// STALE_FULL resync. Emits nothing — the exchange is abandoned.
    fn drop_coded_exchange(&mut self, peer: NodeId) -> Vec<Outgoing> {
        self.codec_errors += 1;
        self.codec.reset_peer(peer);
        Vec::new()
    }

    fn push_table(&mut self) -> Vec<Outgoing> {
        match self.cyclon.random_peer(&mut self.rng) {
            Some(peer) => {
                // Identity keeps the legacy verbatim-table path so a
                // default run stays byte-identical on the wire; the other
                // codecs route through the coded payload tags.
                let msg = if self.cfg.codec == CodecKind::Identity {
                    WireMsg::AggPush {
                        table: Box::new(self.table.clone()),
                    }
                } else {
                    WireMsg::AggPushCoded {
                        body: self.codec.encode_push(peer, &self.table),
                    }
                };
                vec![Outgoing { to: peer, msg }]
            }
            None => Vec::new(),
        }
    }

    /// Algorithm 1 lines 6–13 over own + neighbour profiles, duplicated
    /// `cfg.profile_duplication` times — the same list construction as
    /// `gather_profiles_into`, fed from messages instead of a shared
    /// data-center reference.
    fn train_local(&mut self) {
        self.train_buf.clear();
        self.train_buf.extend_from_slice(&self.own_profiles);
        if let Some(nb) = self.neighbor_profiles.take() {
            self.train_buf.extend_from_slice(&nb);
        }
        if self.cfg.profile_duplication > 1 && !self.train_buf.is_empty() {
            let base = self.train_buf.len();
            for _ in 1..self.cfg.profile_duplication {
                self.train_buf.extend_from_within(..base);
            }
        }
        local_train_with(
            &mut self.table,
            &self.train_buf,
            self.cfg.learning_iterations,
            &mut self.rng,
            &mut self.idx_buf,
        );
        self.updates += 2 * self.cfg.learning_iterations as u64;
        self.pending_train = false;
    }
}

impl Checkpointable for NodeCore {
    fn save(&self, w: &mut Writer) {
        w.put_u32(self.id);
        self.cyclon.save(w);
        self.table.save(w);
        save_rng(&self.rng, w);
        w.put_bool(self.pending.is_some());
        if let Some(p) = &self.pending {
            w.put_u32(p.target);
            wire::put_descriptors(w, &p.sent);
        }
        wire::put_profiles(w, &self.own_profiles);
        w.put_bool(self.eligible);
        w.put_bool(self.neighbor_profiles.is_some());
        if let Some(nb) = &self.neighbor_profiles {
            wire::put_profiles(w, nb);
        }
        w.put_bool(self.pending_train);
        w.put_usize(self.agg_attempts);
        w.put_u64(self.updates);
        self.codec.save(w);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let id = r.get_u32()?;
        if id != self.id {
            return Err(SnapshotError::Corrupt(format!(
                "node id mismatch: snapshot {id}, live {}",
                self.id
            )));
        }
        self.cyclon.restore(r)?;
        self.table.restore(r)?;
        self.rng = restore_rng(r)?;
        self.pending = if r.get_bool()? {
            let target = r.get_u32()?;
            let sent = wire::get_descriptors(r)?;
            Some(PendingShuffle { target, sent })
        } else {
            None
        };
        self.own_profiles = wire::get_profiles(r)?;
        self.eligible = r.get_bool()?;
        self.neighbor_profiles = if r.get_bool()? {
            Some(wire::get_profiles(r)?)
        } else {
            None
        };
        self.pending_train = r.get_bool()?;
        self.agg_attempts = r.get_usize()?;
        self.updates = r.get_u64()?;
        self.codec.restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::Resources;

    fn cfg() -> GlapConfig {
        GlapConfig {
            learning_iterations: 5,
            ..Default::default()
        }
    }

    fn profile(x: f64) -> VmProfile {
        VmProfile::from_fractions(Resources::splat(x), Resources::splat(x))
    }

    fn bootstrapped(id: NodeId) -> NodeCore {
        let mut node = NodeCore::new(id, &cfg(), 42);
        node.handle(NodeInput::Bootstrap {
            peers: (0..8).filter(|&p| p != id).collect(),
        });
        node
    }

    #[test]
    fn shuffle_round_trip_updates_both_views() {
        let mut a = bootstrapped(0);
        let mut b = bootstrapped(1);
        let out = a.on_tick(TickKind::Shuffle);
        assert_eq!(out.len(), 1);
        let req = &out[0];
        let replies = b.on_message(0, req.msg.clone());
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].to, 0);
        a.on_message(req.to, replies[0].msg.clone());
        assert!(a.pending.is_none());
        assert!(a.view_size() > 0 && b.view_size() > 0);
    }

    #[test]
    fn failed_shuffle_aborts_pending() {
        let mut a = bootstrapped(0);
        let out = a.on_tick(TickKind::Shuffle);
        assert!(a.pending.is_some());
        let payload = out[0].msg.encode();
        let retries = a.handle(NodeInput::Failed {
            to: out[0].to,
            payload,
            target_down: false,
        });
        assert!(retries.is_empty());
        assert!(a.pending.is_none());
    }

    #[test]
    fn eligible_node_requests_profiles_and_trains() {
        let mut a = bootstrapped(0);
        a.set_world(vec![profile(0.2), profile(0.3)], true);
        let out = a.on_tick(TickKind::LearnRequest);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].msg, WireMsg::ProfileRequest));
        a.on_message(
            out[0].to,
            WireMsg::ProfileReply {
                profiles: vec![profile(0.1), profile(0.4)],
            },
        );
        assert!(a.on_tick(TickKind::TrainLocal).is_empty());
        assert_eq!(a.updates(), 2 * 5);
        assert!(a.table().trained_pairs() > 0);
        assert!(!a.pending_train);
        assert!(a.neighbor_profiles.is_none());
    }

    #[test]
    fn ineligible_node_stays_silent_and_untrained() {
        let mut a = bootstrapped(0);
        a.set_world(vec![profile(0.9)], false);
        assert!(a.on_tick(TickKind::LearnRequest).is_empty());
        assert!(a.on_tick(TickKind::TrainLocal).is_empty());
        assert_eq!(a.updates(), 0);
    }

    #[test]
    fn profile_request_is_answered_with_own_profiles() {
        let mut b = bootstrapped(1);
        b.set_world(vec![profile(0.25)], true);
        let replies = b.on_message(0, WireMsg::ProfileRequest);
        assert_eq!(replies.len(), 1);
        let WireMsg::ProfileReply { profiles } = &replies[0].msg else {
            panic!("expected ProfileReply");
        };
        assert_eq!(profiles.len(), 1);
    }

    #[test]
    fn aggregation_push_pull_unifies_tables() {
        let mut a = bootstrapped(0);
        let mut b = bootstrapped(1);
        // Give each side distinct knowledge.
        a.set_world(vec![profile(0.1), profile(0.2)], true);
        a.on_tick(TickKind::LearnRequest);
        a.on_tick(TickKind::TrainLocal);
        b.set_world(vec![profile(0.4), profile(0.5)], true);
        b.on_tick(TickKind::LearnRequest);
        b.on_tick(TickKind::TrainLocal);

        let pushes = a.on_tick(TickKind::Aggregate);
        assert_eq!(pushes.len(), 1);
        let replies = b.on_message(0, pushes[0].msg.clone());
        assert_eq!(replies.len(), 1);
        a.on_message(pushes[0].to, replies[0].msg.clone());
        // Symmetric merge: both sides hold the identical result.
        let (mut wa, mut wb) = (Writer::new(), Writer::new());
        a.table().save(&mut wa);
        b.table().save(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn failed_agg_push_retries_up_to_cap() {
        let mut a = bootstrapped(0);
        let mut sent = a.on_tick(TickKind::Aggregate);
        let mut attempts = 1;
        while let Some(out) = sent.pop() {
            let payload = out.msg.encode();
            sent = a.handle(NodeInput::Failed {
                to: out.to,
                payload,
                target_down: false,
            });
            if !sent.is_empty() {
                attempts += 1;
            }
        }
        assert_eq!(attempts, AGGREGATION_MAX_ATTEMPTS);
    }

    #[test]
    fn crashed_agg_partner_is_pruned() {
        let mut a = bootstrapped(0);
        let before = a.view_size();
        let out = a.on_tick(TickKind::Aggregate);
        let payload = out[0].msg.encode();
        a.handle(NodeInput::Failed {
            to: out[0].to,
            payload,
            target_down: true,
        });
        assert_eq!(a.view_size(), before - 1);
        assert!(!a.cyclon.neighbors().any(|p| p == out[0].to));
    }

    fn bootstrapped_with_codec(id: NodeId, codec: CodecKind) -> NodeCore {
        let config = GlapConfig { codec, ..cfg() };
        let mut node = NodeCore::new(id, &config, 42);
        node.handle(NodeInput::Bootstrap {
            peers: (0..8).filter(|&p| p != id).collect(),
        });
        node
    }

    #[test]
    fn rejected_coded_push_drops_exchange_without_panicking() {
        let mut b = bootstrapped_with_codec(1, CodecKind::Delta);
        let before = {
            let mut w = Writer::new();
            b.table().save(&mut w);
            w.into_bytes()
        };
        // A coded body the codec cannot apply (garbage past the wire
        // layer) must be swallowed: no reply, no panic, table untouched.
        let out = b.on_message(
            0,
            WireMsg::AggPushCoded {
                body: vec![0xFF; 16],
            },
        );
        assert!(out.is_empty());
        assert_eq!(b.codec_errors(), 1);
        let mut w = Writer::new();
        b.table().save(&mut w);
        assert_eq!(w.into_bytes(), before);

        // The node keeps aggregating normally afterwards.
        let mut a = bootstrapped_with_codec(0, CodecKind::Delta);
        a.set_world(vec![profile(0.1)], true);
        a.on_tick(TickKind::LearnRequest);
        a.on_tick(TickKind::TrainLocal);
        let pushes = a.on_tick(TickKind::Aggregate);
        assert_eq!(pushes.len(), 1);
        assert!(matches!(pushes[0].msg, WireMsg::AggPushCoded { .. }));
        // Route the push to B regardless of which peer A drew.
        let replies = b.on_message(0, pushes[0].msg.clone());
        assert_eq!(replies.len(), 1);
        a.on_message(pushes[0].to, replies[0].msg.clone());
        let (mut wa, mut wb) = (Writer::new(), Writer::new());
        a.table().save(&mut wa);
        b.table().save(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn rejected_coded_reply_drops_exchange_without_panicking() {
        let mut a = bootstrapped_with_codec(0, CodecKind::Delta);
        let out = a.on_tick(TickKind::Aggregate);
        assert_eq!(out.len(), 1);
        // A reply with no decodable codec body — and, after the reset, a
        // well-formed reply with no push in flight — are both dropped.
        let out2 = a.on_message(
            out[0].to,
            WireMsg::AggReplyCoded {
                body: vec![0xFF; 16],
            },
        );
        assert!(out2.is_empty());
        assert_eq!(a.codec_errors(), 1);
        // The peer's in-flight state was reset: the node can push again.
        assert!(!a.on_tick(TickKind::Aggregate).is_empty());
    }

    #[test]
    fn checkpoint_round_trips_mid_protocol() {
        let mut a = bootstrapped(0);
        a.set_world(vec![profile(0.2), profile(0.3)], true);
        a.on_tick(TickKind::Shuffle);
        a.on_tick(TickKind::LearnRequest);
        a.on_message(
            1,
            WireMsg::ProfileReply {
                profiles: vec![profile(0.15)],
            },
        );

        let mut w = Writer::new();
        a.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = NodeCore::new(0, &cfg(), 7);
        let mut r = Reader::new(&bytes);
        restored.restore(&mut r).unwrap();
        assert!(r.is_exhausted());

        // The restored node continues identically.
        let out_a = a.on_tick(TickKind::TrainLocal);
        let out_r = restored.on_tick(TickKind::TrainLocal);
        assert!(out_a.is_empty() && out_r.is_empty());
        let (mut wa, mut wr) = (Writer::new(), Writer::new());
        a.save(&mut wa);
        restored.save(&mut wr);
        assert_eq!(wa.into_bytes(), wr.into_bytes());
    }

    #[test]
    fn restore_rejects_wrong_id() {
        let a = bootstrapped(0);
        let mut w = Writer::new();
        a.save(&mut w);
        let bytes = w.into_bytes();
        let mut other = NodeCore::new(3, &cfg(), 42);
        assert!(other.restore(&mut Reader::new(&bytes)).is_err());
    }
}
