//! [`NodeRuntime`]: the transport-generic round driver.
//!
//! The runtime owns the things that must live on one thread for the run
//! to be reproducible: the [`NetworkModel`] (fault fates), the seeded
//! delivery schedule (`Stream::Delivery`), and the [`Tracer`] interface
//! (telemetry is `Rc`-based and not `Send`). Each round it ticks every
//! scheduled node through the transport and *transacts* the resulting
//! message cascade to completion — requests subject to the fault model,
//! replies riding the request's round trip — before moving to the next
//! node. Delivery order is therefore a pure function of the master
//! seed, which is what makes a channel-backed run byte-identical to the
//! in-process oracle.
//!
//! Round structure mirrors
//! [`train_traced`](glap::trainer::train_traced): learning rounds step
//! the workload, refresh the overlay, fetch one neighbour's profiles
//! per eligible node and train (in parallel — the `TrainLocal` tick is
//! deferred until all exchanges settle); aggregation rounds refresh the
//! overlay and run the symmetric push–pull merge.

use crate::core::{NodeInput, TickKind};
use crate::transport::{Routed, Transport};
use crate::wire::{
    coded_header, payload_tag, tag_counter, tag_is_request, TAG_AGG_PUSH, TAG_AGG_PUSH_CODED,
    TAG_AGG_REPLY, TAG_AGG_REPLY_CODED, TAG_SHUFFLE_REPLY, TAG_SHUFFLE_REQUEST,
};
use glap::prelude::{
    is_eligible, restore_rng, save_rng, stream_rng, Checkpointable, Delivery, EventKind,
    GlapConfig, NetworkModel, Phase, Reader, SimRng, SnapshotError, Stream, Tracer, Writer,
};
use glap_cluster::{DataCenter, DemandSource, PmId, VmProfile};
use glap_cyclon::NodeId;
use glap_profile::Profiler;
use rand::seq::SliceRandom;
use std::collections::VecDeque;
use std::time::Instant;

/// Drives a fleet of nodes behind any [`Transport`] through GLAP's
/// two training phases. See the module docs.
pub struct NodeRuntime<T: Transport> {
    transport: T,
    cfg: GlapConfig,
    net: NetworkModel,
    /// Delivery-schedule randomness: which node transacts first each
    /// round. Private stream — nodes never touch it.
    sched_rng: SimRng,
    /// PM activity at construction time (sleeping PMs host no node).
    active: Vec<bool>,
    learning_done: u64,
    aggregation_done: u64,
    profile_buf: Vec<VmProfile>,
    sched_buf: Vec<NodeId>,
    /// Wall-clock profiler (off by default; observational only).
    profiler: Profiler,
}

impl<T: Transport> NodeRuntime<T> {
    /// Wires `transport`'s nodes to `dc`'s PMs and bootstraps the
    /// overlay from the `Stream::Overlay` cursor of `master_seed`
    /// (the same scheme as `CyclonOverlay::bootstrap_random`).
    pub fn new(
        transport: T,
        cfg: &GlapConfig,
        net: NetworkModel,
        master_seed: u64,
        dc: &DataCenter,
    ) -> NodeRuntime<T> {
        let n = transport.n_nodes();
        assert_eq!(n, dc.n_pms(), "one node per PM");
        let active: Vec<bool> = dc.pms().map(|pm| pm.is_active()).collect();
        let mut rt = NodeRuntime {
            transport,
            cfg: *cfg,
            net,
            sched_rng: stream_rng(master_seed, Stream::Delivery),
            active,
            learning_done: 0,
            aggregation_done: 0,
            profile_buf: Vec::new(),
            sched_buf: Vec::new(),
            profiler: Profiler::off(),
        };
        let mut boot_rng = stream_rng(master_seed, Stream::Overlay);
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        for id in 0..n as NodeId {
            if !rt.active[id as usize] {
                continue;
            }
            let mut pool = ids.clone();
            pool.retain(|&x| x != id);
            pool.shuffle(&mut boot_rng);
            pool.truncate(cfg.cyclon_cache);
            rt.transport
                .dispatch(id, NodeInput::Bootstrap { peers: pool });
        }
        rt
    }

    /// Attaches a wall-clock profiler: rounds record phase spans and
    /// `transact` records per-message `transport_dispatch` samples.
    /// Profiling reads no randomness and never changes delivery fates.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Learning rounds completed so far.
    pub fn learning_done(&self) -> u64 {
        self.learning_done
    }

    /// Aggregation rounds completed so far.
    pub fn aggregation_done(&self) -> u64 {
        self.aggregation_done
    }

    /// Tears down the runtime, yielding per-node Q-tables in id order.
    pub fn into_tables(self) -> Vec<glap_qlearn::QTablePair> {
        self.transport.into_tables()
    }

    /// Read-only access to the transport (e.g. for inspecting tables
    /// mid-run from experiment drivers).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// One learning round (Algorithm 1): step the workload, push each
    /// active node its world snapshot, shuffle, fetch profiles, then
    /// train every node — the only concurrent step, safe because each
    /// node draws only its private RNG.
    pub fn learning_round<D: DemandSource + ?Sized>(
        &mut self,
        dc: &mut DataCenter,
        source: &mut D,
        tracer: &Tracer,
    ) {
        let round_span = self.profiler.span("node_learn_round");
        tracer.set_phase(Phase::Learning);
        tracer.begin_round(self.learning_done);
        self.net.begin_round(self.learning_done);
        {
            let _s = self.profiler.span("workload_step");
            dc.step(source);
        }
        {
            let _s = self.profiler.span("world_push");
            for id in 0..self.transport.n_nodes() as NodeId {
                if !self.active[id as usize] {
                    continue;
                }
                let pm = PmId(id);
                dc.pm_profiles_into(pm, &mut self.profile_buf);
                let input = NodeInput::SetWorld {
                    profiles: self.profile_buf.clone(),
                    eligible: is_eligible(dc, pm, &self.cfg),
                };
                self.transport.dispatch(id, input);
            }
        }
        self.draw_schedule();
        let sched = std::mem::take(&mut self.sched_buf);
        {
            let _s = self.profiler.span("shuffle");
            for &p in &sched {
                self.transact(p, NodeInput::Tick(TickKind::Shuffle), tracer);
            }
        }
        {
            let _s = self.profiler.span("learn_exchange");
            for &p in &sched {
                self.transact(p, NodeInput::Tick(TickKind::LearnRequest), tracer);
            }
        }
        self.sched_buf = sched;
        {
            let _s = self.profiler.span("train_all");
            self.transport.train_all();
        }
        self.learning_done += 1;
        tracer.end_round();
        drop(round_span);
    }

    /// One aggregation round (Algorithm 2): shuffle, then push–pull
    /// table merges.
    pub fn aggregation_round(&mut self, tracer: &Tracer) {
        let round_span = self.profiler.span("node_agg_round");
        tracer.set_phase(Phase::Aggregation);
        tracer.begin_round(self.aggregation_done);
        self.net
            .begin_round(self.learning_done + self.aggregation_done);
        self.draw_schedule();
        let sched = std::mem::take(&mut self.sched_buf);
        {
            let _s = self.profiler.span("shuffle");
            for &p in &sched {
                self.transact(p, NodeInput::Tick(TickKind::Shuffle), tracer);
            }
        }
        {
            let _s = self.profiler.span("aggregate");
            for &p in &sched {
                self.transact(p, NodeInput::Tick(TickKind::Aggregate), tracer);
            }
        }
        self.sched_buf = sched;
        self.aggregation_done += 1;
        tracer.end_round();
        drop(round_span);
    }

    /// This round's activation order: alive nodes, shuffled by the
    /// delivery stream. Crashed initiators sit the round out (same rule
    /// as `aggregation_round`'s `is_up` gate).
    fn draw_schedule(&mut self) {
        self.sched_buf.clear();
        self.sched_buf.extend(
            (0..self.transport.n_nodes() as NodeId)
                .filter(|&id| self.active[id as usize] && self.net.is_up(id)),
        );
        self.sched_buf.shuffle(&mut self.sched_rng);
    }

    /// Runs one node input and the complete message cascade it causes.
    ///
    /// Requests (shuffle request, profile request, table push) are
    /// subject to the fault model — a failed request is bounced back to
    /// its sender as a `Failed` input (which may cascade a retry).
    /// Replies are delivered unconditionally: they ride the request's
    /// round trip, whose fate was already drawn.
    fn transact(&mut self, origin: NodeId, input: NodeInput, tracer: &Tracer) {
        let profiling = self.profiler.is_on();
        let mut dispatch_ns = 0u64;
        let mut dispatches = 0u64;
        let mut queue: VecDeque<(NodeId, Routed)> = VecDeque::new();
        let t0 = profiling.then(Instant::now);
        let outs = self.transport.dispatch(origin, input);
        if let Some(t0) = t0 {
            dispatch_ns += t0.elapsed().as_nanos() as u64;
            dispatches += 1;
        }
        queue.push_back((origin, outs));
        // Table-push attempt counter for MergeRetried events (the
        // cascade retries at most AGGREGATION_MAX_ATTEMPTS times).
        let mut agg_attempt = 0u32;
        while let Some((from, outs)) = queue.pop_front() {
            for (to, payload) in outs {
                let tag = payload_tag(&payload);
                let bytes = payload.len() as u64;
                tracer.add("net.msgs", 1);
                tracer.add("net.bytes_tx", bytes);
                if let Some(counter) = tag_counter(tag) {
                    tracer.add(counter, 1);
                }
                if let Some(header) = coded_header(&payload) {
                    account_coded(tracer, bytes, &header);
                }
                let (delivered, target_down) = if !tag_is_request(tag) {
                    (true, false)
                } else if !self.active[to as usize] {
                    (false, true)
                } else {
                    match self.net.request(from, to) {
                        d if d.is_ok() => (true, false),
                        Delivery::TargetDown => (false, true),
                        _ => (false, false),
                    }
                };
                if delivered {
                    tracer.add("net.bytes_rx", bytes);
                    match tag {
                        // A delivered reply completes its exchange.
                        TAG_SHUFFLE_REPLY => {
                            tracer.emit(EventKind::ShuffleCompleted { from: to, to: from })
                        }
                        TAG_AGG_REPLY | TAG_AGG_REPLY_CODED => {
                            tracer.emit(EventKind::MergeApplied { a: to, b: from })
                        }
                        _ => {}
                    }
                    let t0 = profiling.then(Instant::now);
                    let next = self
                        .transport
                        .dispatch(to, NodeInput::Deliver { from, payload });
                    if let Some(t0) = t0 {
                        dispatch_ns += t0.elapsed().as_nanos() as u64;
                        dispatches += 1;
                    }
                    // A delivered coded push is always answered — unless
                    // the responder's codec rejected the body and dropped
                    // the exchange (`NodeCore::drop_coded_exchange`).
                    // Zero in healthy runs: both transports only carry
                    // payloads our own encoders produced.
                    if tag == TAG_AGG_PUSH_CODED && next.is_empty() {
                        tracer.add("codec.decode_errors", 1);
                    }
                    queue.push_back((to, next));
                } else {
                    match tag {
                        TAG_SHUFFLE_REQUEST => tracer.emit(EventKind::ShuffleFailed { from, to }),
                        TAG_AGG_PUSH | TAG_AGG_PUSH_CODED => {
                            agg_attempt += 1;
                            tracer.emit(EventKind::MergeRetried {
                                pm: from,
                                attempt: agg_attempt,
                            });
                        }
                        _ => {}
                    }
                    let t0 = profiling.then(Instant::now);
                    let next = self.transport.dispatch(
                        from,
                        NodeInput::Failed {
                            to,
                            payload,
                            target_down,
                        },
                    );
                    if let Some(t0) = t0 {
                        dispatch_ns += t0.elapsed().as_nanos() as u64;
                        dispatches += 1;
                    }
                    queue.push_back((from, next));
                }
            }
        }
        if profiling && dispatches > 0 {
            self.profiler
                .record_ns_n("transport_dispatch", dispatch_ns, dispatches);
        }
    }
}

/// Accounts `codec.*` telemetry for one coded aggregation payload:
/// bytes saved versus the legacy verbatim-table message, full-table and
/// stale-fallback payload counts, and the running maximum declared
/// quantization error (stored as a monotone counter in units of 1e-9 so
/// it fits the add-only u64 counter model).
fn account_coded(tracer: &Tracer, wire_bytes: u64, header: &glap_codec::CodedHeader) {
    let identity = glap_codec::identity_payload_len() as u64;
    tracer.add("codec.payloads", 1);
    tracer.add("codec.bytes_saved", identity.saturating_sub(wire_bytes));
    match header.subtag {
        glap_codec::subtag::FULL => tracer.add("codec.full_payloads", 1),
        glap_codec::subtag::STALE_FULL => tracer.add("codec.fallbacks", 1),
        _ => {}
    }
    if header.err_bound > 0.0 {
        let scaled = (header.err_bound * 1e9).ceil() as u64;
        let prev = tracer.counter_total("codec.q_err_max_1e9");
        if scaled > prev {
            tracer.add("codec.q_err_max_1e9", scaled - prev);
        }
    }
}

impl<T: Transport> NodeRuntime<T> {
    /// Serializes the complete runtime state — fault model, schedule
    /// cursor, round counters and every node — so a resumed run
    /// continues byte-identically. (Not `Checkpointable`: transports
    /// route the snapshot request through their normal `&mut` dispatch
    /// machinery, so `save` needs `&mut self`.)
    pub fn save(&mut self, w: &mut Writer) {
        w.put_usize(self.transport.n_nodes());
        self.net.save(w);
        save_rng(&self.sched_rng, w);
        w.put_bool_slice(&self.active);
        w.put_u64(self.learning_done);
        w.put_u64(self.aggregation_done);
        self.transport.save_nodes(w);
    }

    /// Inverse of [`save`](NodeRuntime::save), over a freshly
    /// constructed runtime with the same node count.
    pub fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_usize()?;
        if n != self.transport.n_nodes() {
            return Err(SnapshotError::Corrupt(format!(
                "node count mismatch: snapshot {n}, live {}",
                self.transport.n_nodes()
            )));
        }
        self.net.restore(r)?;
        self.sched_rng = restore_rng(r)?;
        self.active = r.get_bool_slice()?;
        if self.active.len() != n {
            return Err(SnapshotError::Corrupt("active mask length mismatch".into()));
        }
        self.learning_done = r.get_u64()?;
        self.aggregation_done = r.get_u64()?;
        self.transport.restore_nodes(r)
    }
}
