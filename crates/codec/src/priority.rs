//! Priority gossip: spend each exchange's bandwidth on the table regions
//! that diverged most since the last exchange with that peer, deferring
//! the rest to later rounds (after Frey et al.'s differentiated-
//! consistency gossip).
//!
//! A *region* is one Q-table row (81 entries); a pair has
//! [`NUM_REGIONS`] = 162 of them (φ_out rows first, then φ_in). Each push
//! selects the top-k regions by divergence against the per-peer baseline —
//! the sum of |current − baseline| over the row, with a small floor for
//! entries the baseline has never seen so new knowledge always scores —
//! and sends those rows at full `f64` precision. The responder merges
//! them with the usual average/adopt rule and replies with the merged
//! contents of the *same* regions; both sides then advance the baseline
//! for exactly the exchanged regions, so their divergence drops to ~zero
//! and the next exchange naturally rotates to other rows. Under repeated
//! contact the union of exchanges covers every divergent region
//! (⌈162/k⌉ exchanges suffice when nothing else changes), which the
//! eventually-complete proptest pins.
//!
//! Partial merges stay diameter-safe: every adopted value either already
//! exists at the peer or is a pairwise average, the same operations
//! Theorem 1's non-increasing-diameter argument covers — a region left
//! unsent merely keeps its current (in-hull) values.
//!
//! First contact falls back to a sparse full-table exchange; a version
//! mismatch resynchronizes via `STALE_FULL` exactly like the delta codec.
//!
//! Crossed exchanges (both sides pushing to each other concurrently)
//! share the delta codec's hazard: each completion would install its own
//! merged contents as the baseline, leaving the two sides with different
//! baselines at the same version — divergence would then be scored
//! against a table that never crossed the wire. The codec tracks which
//! peers it has a push in flight to and answers a crossed push with
//! `STALE_FULL` instead of merging, so both sides drop the baseline and
//! resynchronize via a full exchange on next contact (merges stay
//! in-hull throughout; the cost is one full-table fallback).

use crate::delta::{restore_baselines, save_baselines, PeerBaseline};
use crate::sparse::get_sparse_into;
use crate::sparse::put_sparse;
use crate::{
    expect_exhausted, read_header_expecting, subtag, CodecKind, CodedHeader, PeerId, TableCodec,
};
use glap_qlearn::{QTable, QTablePair, NUM_STATES};
use glap_snapshot::{Reader, SnapshotError, Writer};
use std::collections::{BTreeMap, BTreeSet};

/// Regions per table pair: 81 φ_out rows + 81 φ_in rows.
pub const NUM_REGIONS: usize = 2 * NUM_STATES;

/// Default top-k regions per exchange (~10% of the pair per push).
pub const DEFAULT_PRIORITY_REGIONS: usize = 16;

/// Divergence floor for entries the baseline has never seen: guarantees a
/// region holding only new-but-zero-valued knowledge still gets scheduled.
const MIN_NEW_ENTRY_SCORE: f64 = 1e-12;

/// The priority (top-k divergent rows) codec.
#[derive(Debug, Clone)]
pub struct PriorityCodec {
    k: usize,
    peers: BTreeMap<PeerId, PeerBaseline>,
    /// Peers with a not-yet-answered push from this side (crossed-
    /// exchange detection; see the module docs).
    in_flight: BTreeSet<PeerId>,
}

impl Default for PriorityCodec {
    fn default() -> Self {
        PriorityCodec::new(DEFAULT_PRIORITY_REGIONS)
    }
}

fn tables_of(pair: &QTablePair, region: usize) -> (&QTable, usize) {
    if region < NUM_STATES {
        (&pair.out, region)
    } else {
        (&pair.r#in, region - NUM_STATES)
    }
}

fn region_score(cur: &QTable, base: &QTable, row: usize) -> f64 {
    let (cv, cb) = (cur.raw_values(), cur.raw_visited());
    let (bv, bb) = (base.raw_values(), base.raw_visited());
    let mut score = 0.0;
    for i in row * NUM_STATES..(row + 1) * NUM_STATES {
        if cb[i] {
            if bb[i] {
                score += (cv[i] - bv[i]).abs();
            } else {
                score += cv[i].abs().max(MIN_NEW_ENTRY_SCORE);
            }
        }
    }
    score
}

/// `u16 region, u8 count, count × (u8 offset, f64 value)` — every visited
/// entry of the row, offsets ascending.
fn put_region(w: &mut Writer, t: &QTable, region: usize, row: usize) {
    let visited = t.raw_visited();
    let values = t.raw_values();
    let base_i = row * NUM_STATES;
    let count = (0..NUM_STATES).filter(|&o| visited[base_i + o]).count();
    w.put_u16(region as u16);
    w.put_u8(count as u8);
    for o in 0..NUM_STATES {
        if visited[base_i + o] {
            w.put_u8(o as u8);
            w.put_f64(values[base_i + o]);
        }
    }
}

type Regions = Vec<(usize, Vec<(usize, f64)>)>;

fn get_regions(r: &mut Reader<'_>) -> Result<Regions, SnapshotError> {
    let n = r.get_u16()? as usize;
    if n > NUM_REGIONS {
        return Err(SnapshotError::Corrupt(format!(
            "priority payload claims {n} regions (max {NUM_REGIONS})"
        )));
    }
    let mut regions = Vec::with_capacity(n);
    for _ in 0..n {
        let region = r.get_u16()? as usize;
        if region >= NUM_REGIONS {
            return Err(SnapshotError::Corrupt(format!(
                "priority region {region} out of range"
            )));
        }
        let count = r.get_u8()? as usize;
        if count > NUM_STATES {
            return Err(SnapshotError::Corrupt(format!(
                "priority region claims {count} entries (max {NUM_STATES})"
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let o = r.get_u8()? as usize;
            if o >= NUM_STATES {
                return Err(SnapshotError::Corrupt(format!(
                    "priority entry offset {o} out of range"
                )));
            }
            entries.push((o, r.get_f64()?));
        }
        regions.push((region, entries));
    }
    Ok(regions)
}

impl PriorityCodec {
    /// A codec sending at most `k` regions per exchange.
    pub fn new(k: usize) -> PriorityCodec {
        PriorityCodec {
            k: k.clamp(1, NUM_REGIONS),
            peers: BTreeMap::new(),
            in_flight: BTreeSet::new(),
        }
    }

    pub(crate) fn save_state(&self, w: &mut Writer) {
        w.put_usize(self.k);
        save_baselines(&self.peers, w);
        w.put_usize(self.in_flight.len());
        for &peer in &self.in_flight {
            w.put_u32(peer);
        }
    }

    pub(crate) fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let k = r.get_usize()?;
        if k == 0 || k > NUM_REGIONS {
            return Err(SnapshotError::Corrupt(format!(
                "priority k {k} out of range in snapshot"
            )));
        }
        self.k = k;
        self.peers = restore_baselines(r)?;
        self.in_flight.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            if !self.in_flight.insert(r.get_u32()?) {
                return Err(SnapshotError::Corrupt(
                    "duplicate in-flight peer in priority snapshot".into(),
                ));
            }
        }
        Ok(())
    }

    /// Top-k regions by divergence, deterministically ordered (score
    /// descending, region index ascending); zero-score regions are never
    /// sent.
    fn select_regions(&self, table: &QTablePair, base: &PeerBaseline) -> Vec<usize> {
        let mut scored: Vec<(f64, usize)> = (0..NUM_REGIONS)
            .filter_map(|region| {
                let (cur, row) = tables_of(table, region);
                let base_t = if region < NUM_STATES {
                    &base.out
                } else {
                    &base.r#in
                };
                let score = region_score(cur, base_t, row);
                (score > 0.0).then_some((score, region))
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        scored.truncate(self.k);
        scored.into_iter().map(|(_, region)| region).collect()
    }

    fn stale_reply(&mut self, peer: PeerId, own: &QTablePair) -> Vec<u8> {
        self.peers.remove(&peer);
        let mut w = Writer::new();
        CodedHeader::write(CodecKind::Priority, subtag::STALE_FULL, 0.0, &mut w);
        put_sparse(&mut w, &own.out);
        put_sparse(&mut w, &own.r#in);
        w.into_bytes()
    }
}

/// Sets every listed entry into the pair (adopt-exactly, no averaging).
fn adopt_regions(pair: &mut QTablePair, regions: &Regions) {
    for (region, entries) in regions {
        let (t, row) = if *region < NUM_STATES {
            (&mut pair.out, *region)
        } else {
            (&mut pair.r#in, *region - NUM_STATES)
        };
        for &(o, v) in entries {
            t.set_index(row * NUM_STATES + o, v);
        }
    }
}

/// Copies the pair's current contents of `region` into the baseline.
fn refresh_baseline_region(base: &mut PeerBaseline, pair: &QTablePair, region: usize) {
    let (src, row) = tables_of(pair, region);
    let dst = if region < NUM_STATES {
        &mut base.out
    } else {
        &mut base.r#in
    };
    let visited = src.raw_visited();
    let values = src.raw_values();
    for i in row * NUM_STATES..(row + 1) * NUM_STATES {
        if visited[i] {
            dst.set_index(i, values[i]);
        }
    }
}

impl TableCodec for PriorityCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Priority
    }

    fn encode_push(&mut self, peer: PeerId, table: &QTablePair) -> Vec<u8> {
        self.in_flight.insert(peer);
        let mut w = Writer::new();
        match self.peers.get(&peer) {
            None => {
                CodedHeader::write(CodecKind::Priority, subtag::FULL, 0.0, &mut w);
                put_sparse(&mut w, &table.out);
                put_sparse(&mut w, &table.r#in);
            }
            Some(base) => {
                let regions = self.select_regions(table, base);
                CodedHeader::write(CodecKind::Priority, subtag::REGIONS, 0.0, &mut w);
                w.put_u64(base.version);
                w.put_u16(regions.len() as u16);
                for &region in &regions {
                    let (t, row) = tables_of(table, region);
                    put_region(&mut w, t, region, row);
                }
            }
        }
        w.into_bytes()
    }

    fn apply_push(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<Vec<u8>, SnapshotError> {
        let mut r = Reader::new(body);
        let h = read_header_expecting(&mut r, CodecKind::Priority)?;
        match h.subtag {
            subtag::FULL => {
                let mut pusher = QTablePair::new(own.params);
                get_sparse_into(&mut r, &mut pusher.out)?;
                get_sparse_into(&mut r, &mut pusher.r#in)?;
                expect_exhausted(&r)?;
                if self.in_flight.contains(&peer) {
                    // Crossed exchange (module docs): decline to merge
                    // and resynchronize rather than install divergent
                    // baselines at the same version.
                    return Ok(self.stale_reply(peer, own));
                }
                QTablePair::merge_symmetric(own, &mut pusher);
                let mut w = Writer::new();
                CodedHeader::write(CodecKind::Priority, subtag::FULL, 0.0, &mut w);
                put_sparse(&mut w, &own.out);
                put_sparse(&mut w, &own.r#in);
                // The reply is our full merged table, so the baseline (=
                // exactly what crossed the wire) is our merged table.
                self.peers.insert(
                    peer,
                    PeerBaseline {
                        version: 1,
                        out: own.out.clone(),
                        r#in: own.r#in.clone(),
                    },
                );
                Ok(w.into_bytes())
            }
            subtag::REGIONS => {
                let version = r.get_u64()?;
                let regions = get_regions(&mut r)?;
                expect_exhausted(&r)?;
                if self.in_flight.contains(&peer)
                    || !matches!(self.peers.get(&peer), Some(b) if b.version == version)
                {
                    return Ok(self.stale_reply(peer, own));
                }
                // Merge the pushed entries: average shared, adopt new.
                for (region, entries) in &regions {
                    let (t, row) = if *region < NUM_STATES {
                        (&mut own.out, *region)
                    } else {
                        (&mut own.r#in, *region - NUM_STATES)
                    };
                    for &(o, v) in entries {
                        let i = row * NUM_STATES + o;
                        if t.raw_visited()[i] {
                            t.set_index(i, (t.raw_values()[i] + v) / 2.0);
                        } else {
                            t.set_index(i, v);
                        }
                    }
                }
                // Reply with the merged contents of the same regions and
                // advance the baseline for exactly those regions.
                let new_version = version + 1;
                let mut w = Writer::new();
                CodedHeader::write(CodecKind::Priority, subtag::REGIONS, 0.0, &mut w);
                w.put_u64(new_version);
                w.put_u16(regions.len() as u16);
                let base = self.peers.get_mut(&peer).expect("checked above");
                for (region, _) in &regions {
                    let (t, row) = tables_of(own, *region);
                    put_region(&mut w, t, *region, row);
                    refresh_baseline_region(base, own, *region);
                }
                base.version = new_version;
                Ok(w.into_bytes())
            }
            other => Err(SnapshotError::Corrupt(format!(
                "priority codec cannot apply subtag {other} as a push"
            ))),
        }
    }

    fn apply_reply(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<(), SnapshotError> {
        let mut r = Reader::new(body);
        let h = read_header_expecting(&mut r, CodecKind::Priority)?;
        self.in_flight.remove(&peer);
        match h.subtag {
            subtag::FULL => {
                // Reply to our first-contact full push: the responder's
                // merged table. Adopt every entry; the baseline is the
                // wire content itself (not `own`, which may hold entries
                // the responder has not seen).
                let mut merged = QTablePair::new(own.params);
                get_sparse_into(&mut r, &mut merged.out)?;
                get_sparse_into(&mut r, &mut merged.r#in)?;
                expect_exhausted(&r)?;
                let (mv, mb) = (merged.out.raw_values(), merged.out.raw_visited());
                for i in 0..NUM_STATES * NUM_STATES {
                    if mb[i] {
                        own.out.set_index(i, mv[i]);
                    }
                }
                let (mv, mb) = (merged.r#in.raw_values(), merged.r#in.raw_visited());
                for i in 0..NUM_STATES * NUM_STATES {
                    if mb[i] {
                        own.r#in.set_index(i, mv[i]);
                    }
                }
                self.peers.insert(
                    peer,
                    PeerBaseline {
                        version: 1,
                        out: merged.out,
                        r#in: merged.r#in,
                    },
                );
                Ok(())
            }
            subtag::REGIONS => {
                let version = r.get_u64()?;
                let regions = get_regions(&mut r)?;
                expect_exhausted(&r)?;
                adopt_regions(own, &regions);
                let base = self.peers.entry(peer).or_insert_with(|| PeerBaseline {
                    version,
                    out: QTable::new(),
                    r#in: QTable::new(),
                });
                base.version = version;
                for (region, entries) in &regions {
                    let (t, row) = if *region < NUM_STATES {
                        (&mut base.out, *region)
                    } else {
                        (&mut base.r#in, *region - NUM_STATES)
                    };
                    for &(o, v) in entries {
                        t.set_index(row * NUM_STATES + o, v);
                    }
                }
                Ok(())
            }
            subtag::STALE_FULL => {
                let mut theirs = QTablePair::new(own.params);
                get_sparse_into(&mut r, &mut theirs.out)?;
                get_sparse_into(&mut r, &mut theirs.r#in)?;
                expect_exhausted(&r)?;
                QTablePair::merge_symmetric(own, &mut theirs);
                self.peers.remove(&peer);
                Ok(())
            }
            other => Err(SnapshotError::Corrupt(format!(
                "priority codec cannot apply subtag {other} as a reply"
            ))),
        }
    }

    fn push_failed(&mut self, peer: PeerId) {
        self.in_flight.remove(&peer);
    }

    fn reset_peer(&mut self, peer: PeerId) {
        self.peers.remove(&peer);
        self.in_flight.remove(&peer);
    }
}
