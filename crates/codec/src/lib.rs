//! # glap-codec — bandwidth-lean gossip payload codecs
//!
//! A gossip exchange in GLAP ships a full [`QTablePair`] — 2×6561 `f64`
//! entries plus bitmaps, ~105 KB per leg — even though trained tables are
//! sparse and consecutive exchanges with the same peer differ in a handful
//! of entries. This crate factors the *payload representation* of the
//! push–pull merge (Algorithm 2) out of the protocol: a [`TableCodec`]
//! chooses what bytes cross the wire, while the merge semantics (average
//! shared entries, adopt one-sided entries) stay fixed.
//!
//! Four implementations, selected by [`CodecKind`]:
//!
//! * **Identity** — the dense checkpoint encoding, bit-exact. The default;
//!   integration layers keep the legacy verbatim-table path for it so
//!   behavior is byte-identical to a codec-less build.
//! * **Delta** — per-peer diff against the table version last exchanged
//!   with that peer, with a sparse full-table fallback on first contact or
//!   version mismatch. Lossless: a delta-coded cluster converges to
//!   bitwise the same tables as an identity one.
//! * **Quantized** — `f64`→`u16` fixed-point with a per-row (per-block)
//!   scale, stateless, with the measured worst-case dequantization error
//!   declared in every payload header for bounded-error accounting.
//! * **Priority** — top-k highest-divergence table rows first (divergence
//!   scored against the per-peer baseline), remainder deferred to later
//!   exchanges; eventually-complete under repeated contact.
//!
//! ## Protocol shape
//!
//! One exchange is push → reply, mediated entirely through the codec:
//!
//! ```text
//! A: body = codec.encode_push(B, &table)          // choose representation
//! B: reply = codec.apply_push(A, &mut own, body)  // decode, merge, encode reply
//! A: codec.apply_reply(B, &mut own, reply)        // decode, adopt merged state
//! A: codec.push_failed(B)                         // instead, when the push is dropped
//! ```
//!
//! Every coded body starts with a self-describing 11-byte [`CodedHeader`]
//! (wire version, codec kind, payload subtag, declared error bound) so
//! transports can account `codec.*` telemetry without holding codec state.
//!
//! Per-peer state (delta baselines, priority baselines, in-flight pushes)
//! lives inside the codec value and is checkpointable; maps are ordered so
//! snapshot bytes are deterministic.

mod delta;
mod identity;
mod priority;
mod quantized;
mod sparse;

pub use delta::DeltaCodec;
pub use identity::IdentityCodec;
pub use priority::{PriorityCodec, DEFAULT_PRIORITY_REGIONS, NUM_REGIONS};
pub use quantized::QuantizedCodec;

use glap_qlearn::QTablePair;
use glap_snapshot::{Reader, SnapshotError, Writer};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Peer identifier — matches `glap_node::NodeId` / the sim-path PM index.
pub type PeerId = u32;

/// Wire-format version byte leading every coded payload. Bumped on any
/// incompatible change to a codec's body layout.
pub const CODEC_WIRE_VERSION: u8 = 1;

/// Framing overhead a coded body pays on the node wire relative to its
/// body length: 1 tag byte plus the u64 length prefix of `put_bytes`.
pub const WIRE_OVERHEAD: usize = 9;

/// Payload subtags: what a coded body contains, independent of codec kind.
pub mod subtag {
    /// Complete table contents (first contact, or an identity payload).
    pub const FULL: u8 = 0;
    /// Versioned diff against the shared per-peer baseline.
    pub const DELTA: u8 = 1;
    /// Version-mismatch fallback: the responder's full table, sent in
    /// place of a merge so both sides can resynchronize baselines.
    pub const STALE_FULL: u8 = 2;
    /// Fixed-point quantized table contents.
    pub const QUANT: u8 = 3;
    /// A top-k selection of table rows at full precision.
    pub const REGIONS: u8 = 4;
}

/// Which payload codec a cluster runs. Uniform across the fleet: codecs
/// negotiate nothing, so mixing kinds is a configuration error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CodecKind {
    /// Dense, bit-exact payloads (legacy wire behavior).
    #[default]
    Identity,
    /// Per-peer versioned diffs; lossless.
    Delta,
    /// Per-row fixed-point quantization; lossy with a declared bound.
    Quantized,
    /// Top-k divergent rows per exchange; partial but eventually complete.
    Priority,
}

/// All kinds, in wire-tag order — sweep binaries iterate this.
pub const ALL_CODEC_KINDS: [CodecKind; 4] = [
    CodecKind::Identity,
    CodecKind::Delta,
    CodecKind::Quantized,
    CodecKind::Priority,
];

impl CodecKind {
    /// Stable one-byte wire tag.
    pub fn as_u8(self) -> u8 {
        match self {
            CodecKind::Identity => 0,
            CodecKind::Delta => 1,
            CodecKind::Quantized => 2,
            CodecKind::Priority => 3,
        }
    }

    /// Inverse of [`as_u8`](Self::as_u8).
    pub fn from_u8(v: u8) -> Option<CodecKind> {
        match v {
            0 => Some(CodecKind::Identity),
            1 => Some(CodecKind::Delta),
            2 => Some(CodecKind::Quantized),
            3 => Some(CodecKind::Priority),
            _ => None,
        }
    }

    /// CLI / CSV label.
    pub fn label(self) -> &'static str {
        match self {
            CodecKind::Identity => "identity",
            CodecKind::Delta => "delta",
            CodecKind::Quantized => "quantized",
            CodecKind::Priority => "priority",
        }
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for CodecKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "identity" => Ok(CodecKind::Identity),
            "delta" => Ok(CodecKind::Delta),
            "quantized" => Ok(CodecKind::Quantized),
            "priority" => Ok(CodecKind::Priority),
            other => Err(format!(
                "unknown codec {other:?} (expected identity|delta|quantized|priority)"
            )),
        }
    }
}

/// The self-describing prefix of every coded payload body.
///
/// Transports peek this to validate payloads and account `codec.*`
/// counters (bytes saved, fallbacks, max quantization error) without any
/// per-peer codec state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodedHeader {
    /// Which codec produced the body.
    pub kind: CodecKind,
    /// Body layout, one of [`subtag`].
    pub subtag: u8,
    /// Declared worst-case absolute error any single adopted entry can
    /// carry relative to the sender's exact value. 0 for lossless bodies.
    pub err_bound: f64,
}

impl CodedHeader {
    /// Serialized length: version, kind, subtag, error bound.
    pub const LEN: usize = 11;

    pub(crate) fn write(kind: CodecKind, subtag: u8, err_bound: f64, w: &mut Writer) {
        w.put_u8(CODEC_WIRE_VERSION);
        w.put_u8(kind.as_u8());
        w.put_u8(subtag);
        w.put_f64(err_bound);
    }

    /// Parses and validates the header without consuming the body.
    pub fn peek(body: &[u8]) -> Result<CodedHeader, SnapshotError> {
        let mut r = Reader::new(body);
        Self::read(&mut r)
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<CodedHeader, SnapshotError> {
        let version = r.get_u8()?;
        if version != CODEC_WIRE_VERSION {
            return Err(SnapshotError::Corrupt(format!(
                "unsupported codec wire version {version}"
            )));
        }
        let kind = CodecKind::from_u8(r.get_u8()?)
            .ok_or_else(|| SnapshotError::Corrupt("unknown codec kind".into()))?;
        let tag = r.get_u8()?;
        if tag > subtag::REGIONS {
            return Err(SnapshotError::Corrupt(format!(
                "unknown codec subtag {tag}"
            )));
        }
        let err_bound = r.get_f64()?;
        if !err_bound.is_finite() || err_bound < 0.0 {
            return Err(SnapshotError::Corrupt(format!(
                "invalid codec error bound {err_bound}"
            )));
        }
        Ok(CodedHeader {
            kind,
            subtag: tag,
            err_bound,
        })
    }
}

pub(crate) fn read_header_expecting(
    r: &mut Reader<'_>,
    kind: CodecKind,
) -> Result<CodedHeader, SnapshotError> {
    let h = CodedHeader::read(r)?;
    if h.kind != kind {
        return Err(SnapshotError::Corrupt(format!(
            "codec kind mismatch: payload is {}, local codec is {kind}",
            h.kind
        )));
    }
    Ok(h)
}

pub(crate) fn expect_exhausted(r: &Reader<'_>) -> Result<(), SnapshotError> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after coded payload",
            r.remaining()
        )))
    }
}

/// Length of the legacy (identity) wire payload for one table push: the
/// 1-byte wire tag plus the dense checkpoint body. Constant — the dense
/// encoding's size does not depend on table contents — so it doubles as
/// the byte baseline `codec.bytes_saved` is accounted against.
pub fn identity_payload_len() -> usize {
    static LEN: OnceLock<usize> = OnceLock::new();
    *LEN.get_or_init(|| {
        use glap_snapshot::Checkpointable;
        let mut w = Writer::new();
        QTablePair::default().save(&mut w);
        1 + w.len()
    })
}

/// One side of the codec-mediated push–pull exchange.
///
/// Implementations own all per-peer state; the driver only routes bytes.
/// State is mutated exclusively in `apply_push` / `apply_reply` (i.e. at
/// the moment an exchange completes on this side), so a dropped push needs
/// no rollback beyond [`push_failed`](Self::push_failed) clearing any
/// in-flight bookkeeping.
pub trait TableCodec {
    /// Which kind this codec is.
    fn kind(&self) -> CodecKind;

    /// Encodes this node's table for a push to `peer`.
    fn encode_push(&mut self, peer: PeerId, table: &QTablePair) -> Vec<u8>;

    /// Responder side: decodes a push from `peer`, merges it into `own`,
    /// and returns the coded reply body.
    fn apply_push(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<Vec<u8>, SnapshotError>;

    /// Initiator side: decodes `peer`'s reply to our push and folds the
    /// merged state into `own`.
    fn apply_reply(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<(), SnapshotError>;

    /// The push encoded for `peer` was dropped (or the peer is down);
    /// discard any in-flight bookkeeping for it.
    fn push_failed(&mut self, _peer: PeerId) {}

    /// Discards *all* per-peer state for `peer` — baselines and in-flight
    /// bookkeeping. Hosts call this after an `apply_push`/`apply_reply`
    /// error to abandon the exchange cleanly: with no baseline left, the
    /// next contact with that peer resynchronizes via `FULL`/`STALE_FULL`
    /// instead of trusting state the failed decode may have skewed.
    fn reset_peer(&mut self, _peer: PeerId) {}
}

/// Enum dispatch over the four codecs. An enum (not `dyn`) so holders such
/// as `NodeCore` keep `Clone + Debug` and checkpoint bytes stay concrete.
#[derive(Debug, Clone)]
pub enum AnyCodec {
    /// Dense bit-exact payloads.
    Identity(IdentityCodec),
    /// Per-peer versioned diffs.
    Delta(DeltaCodec),
    /// Per-row fixed-point quantization.
    Quantized(QuantizedCodec),
    /// Top-k divergent rows.
    Priority(PriorityCodec),
}

impl AnyCodec {
    /// A fresh codec of the given kind with default parameters.
    pub fn new(kind: CodecKind) -> AnyCodec {
        match kind {
            CodecKind::Identity => AnyCodec::Identity(IdentityCodec),
            CodecKind::Delta => AnyCodec::Delta(DeltaCodec::default()),
            CodecKind::Quantized => AnyCodec::Quantized(QuantizedCodec),
            CodecKind::Priority => AnyCodec::Priority(PriorityCodec::default()),
        }
    }

    /// Serializes codec state (kind tag + per-peer baselines). Ordered
    /// maps make this deterministic for byte-identity checks.
    pub fn save(&self, w: &mut Writer) {
        w.put_u8(self.kind().as_u8());
        match self {
            AnyCodec::Identity(_) | AnyCodec::Quantized(_) => {}
            AnyCodec::Delta(c) => c.save_state(w),
            AnyCodec::Priority(c) => c.save_state(w),
        }
    }

    /// Restores codec state saved by [`save`](Self::save). The stored kind
    /// must match this codec's configured kind.
    pub fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let stored = CodecKind::from_u8(r.get_u8()?)
            .ok_or_else(|| SnapshotError::Corrupt("unknown codec kind in snapshot".into()))?;
        if stored != self.kind() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot codec kind {stored} does not match configured {}",
                self.kind()
            )));
        }
        match self {
            AnyCodec::Identity(_) | AnyCodec::Quantized(_) => Ok(()),
            AnyCodec::Delta(c) => c.restore_state(r),
            AnyCodec::Priority(c) => c.restore_state(r),
        }
    }
}

impl TableCodec for AnyCodec {
    fn kind(&self) -> CodecKind {
        match self {
            AnyCodec::Identity(c) => c.kind(),
            AnyCodec::Delta(c) => c.kind(),
            AnyCodec::Quantized(c) => c.kind(),
            AnyCodec::Priority(c) => c.kind(),
        }
    }

    fn encode_push(&mut self, peer: PeerId, table: &QTablePair) -> Vec<u8> {
        match self {
            AnyCodec::Identity(c) => c.encode_push(peer, table),
            AnyCodec::Delta(c) => c.encode_push(peer, table),
            AnyCodec::Quantized(c) => c.encode_push(peer, table),
            AnyCodec::Priority(c) => c.encode_push(peer, table),
        }
    }

    fn apply_push(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<Vec<u8>, SnapshotError> {
        match self {
            AnyCodec::Identity(c) => c.apply_push(peer, own, body),
            AnyCodec::Delta(c) => c.apply_push(peer, own, body),
            AnyCodec::Quantized(c) => c.apply_push(peer, own, body),
            AnyCodec::Priority(c) => c.apply_push(peer, own, body),
        }
    }

    fn apply_reply(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<(), SnapshotError> {
        match self {
            AnyCodec::Identity(c) => c.apply_reply(peer, own, body),
            AnyCodec::Delta(c) => c.apply_reply(peer, own, body),
            AnyCodec::Quantized(c) => c.apply_reply(peer, own, body),
            AnyCodec::Priority(c) => c.apply_reply(peer, own, body),
        }
    }

    fn push_failed(&mut self, peer: PeerId) {
        match self {
            AnyCodec::Identity(c) => c.push_failed(peer),
            AnyCodec::Delta(c) => c.push_failed(peer),
            AnyCodec::Quantized(c) => c.push_failed(peer),
            AnyCodec::Priority(c) => c.push_failed(peer),
        }
    }

    fn reset_peer(&mut self, peer: PeerId) {
        match self {
            AnyCodec::Identity(c) => c.reset_peer(peer),
            AnyCodec::Delta(c) => c.reset_peer(peer),
            AnyCodec::Quantized(c) => c.reset_peer(peer),
            AnyCodec::Priority(c) => c.reset_peer(peer),
        }
    }
}

/// One codec instance per PM for the sim-path `aggregation_round`, where
/// the whole fleet's tables live in one slice and exchanges complete
/// atomically.
#[derive(Debug, Clone)]
pub struct FleetCodecs {
    kind: CodecKind,
    codecs: Vec<AnyCodec>,
}

impl FleetCodecs {
    /// One fresh codec per PM.
    pub fn new(n: usize, kind: CodecKind) -> FleetCodecs {
        FleetCodecs {
            kind,
            codecs: (0..n).map(|_| AnyCodec::new(kind)).collect(),
        }
    }

    /// The uniform codec kind.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// PM `p` encodes a push for PM `q`.
    pub fn encode_push(&mut self, p: usize, q: usize, tables: &[QTablePair]) -> Vec<u8> {
        self.codecs[p].encode_push(q as PeerId, &tables[p])
    }

    /// Completes a delivered exchange: `q` applies `p`'s push and `p`
    /// applies the reply. Returns the reply body (for byte accounting).
    pub fn complete(
        &mut self,
        p: usize,
        q: usize,
        tables: &mut [QTablePair],
        push: &[u8],
    ) -> Result<Vec<u8>, SnapshotError> {
        let (cp, cq) = pair_mut(&mut self.codecs, p, q);
        let (tp, tq) = pair_mut(tables, p, q);
        let reply = cq.apply_push(p as PeerId, tq, push)?;
        cp.apply_reply(q as PeerId, tp, &reply)?;
        Ok(reply)
    }

    /// The push from `p` to `q` was dropped.
    pub fn push_failed(&mut self, p: usize, q: usize) {
        self.codecs[p].push_failed(q as PeerId);
    }
}

fn pair_mut<T>(xs: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "push-pull exchange with self");
    if i < j {
        let (lo, hi) = xs.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = xs.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests;
