//! Unit and property tests for the codec crate.
//!
//! The reference semantics every codec is measured against is the legacy
//! dense push–pull: the responder merges symmetrically, the initiator
//! adopts the merged pair wholesale.

use crate::quantized::{decode_table_into, encode_table};
use crate::*;
use glap_qlearn::{QTable, QTablePair, NUM_STATES};
use glap_snapshot::{Checkpointable, Reader, Writer};
use proptest::prelude::*;

const ENTRIES: usize = NUM_STATES * NUM_STATES;

fn build_table(entries: &[(usize, f64)]) -> QTable {
    let mut t = QTable::new();
    for &(i, v) in entries {
        t.set_index(i % ENTRIES, v);
    }
    t
}

fn build_pair(out: &[(usize, f64)], r#in: &[(usize, f64)]) -> QTablePair {
    QTablePair {
        out: build_table(out),
        r#in: build_table(r#in),
        ..QTablePair::default()
    }
}

fn pair_bytes(p: &QTablePair) -> Vec<u8> {
    let mut w = Writer::new();
    p.save(&mut w);
    w.into_bytes()
}

/// The legacy exchange: B merges symmetrically, A adopts the merged pair.
fn legacy_exchange(a: &mut QTablePair, b: &mut QTablePair) {
    let mut incoming = a.clone();
    QTablePair::merge_symmetric(b, &mut incoming);
    *a = incoming;
}

/// One full codec-mediated exchange A→B; returns (push, reply) bodies.
fn codec_exchange(
    ca: &mut AnyCodec,
    cb: &mut AnyCodec,
    a: &mut QTablePair,
    b: &mut QTablePair,
) -> (Vec<u8>, Vec<u8>) {
    let push = ca.encode_push(1, a);
    let reply = cb.apply_push(0, b, &push).expect("apply_push");
    ca.apply_reply(1, a, &reply).expect("apply_reply");
    (push, reply)
}

fn entry_strategy() -> impl Strategy<Value = Vec<(usize, f64)>> {
    proptest::collection::vec((0usize..ENTRIES, -5.0f64..5.0), 0..150)
}

#[test]
fn header_round_trips_and_rejects_garbage() {
    let mut w = Writer::new();
    CodedHeader::write(CodecKind::Quantized, subtag::QUANT, 0.25, &mut w);
    let body = w.into_bytes();
    assert_eq!(body.len(), CodedHeader::LEN);
    let h = CodedHeader::peek(&body).unwrap();
    assert_eq!(h.kind, CodecKind::Quantized);
    assert_eq!(h.subtag, subtag::QUANT);
    assert_eq!(h.err_bound, 0.25);

    let mut bad = body.clone();
    bad[0] = 99; // version
    assert!(CodedHeader::peek(&bad).is_err());
    let mut bad = body.clone();
    bad[1] = 7; // kind
    assert!(CodedHeader::peek(&bad).is_err());
    let mut bad = body.clone();
    bad[2] = 42; // subtag
    assert!(CodedHeader::peek(&bad).is_err());
    assert!(CodedHeader::peek(&body[..4]).is_err()); // truncated
}

#[test]
fn codec_kind_labels_round_trip() {
    for kind in ALL_CODEC_KINDS {
        assert_eq!(kind.label().parse::<CodecKind>().unwrap(), kind);
        assert_eq!(CodecKind::from_u8(kind.as_u8()), Some(kind));
    }
    assert!("zstd".parse::<CodecKind>().is_err());
}

#[test]
fn identity_payload_len_is_dense_and_constant() {
    let len = identity_payload_len();
    // Dense pair: 2 tables × (6561 f64 + 6561 bool bitmap) dominate.
    assert!(len > 2 * ENTRIES * 8);
    assert_eq!(len, identity_payload_len());
}

#[test]
fn delta_first_contact_then_delta_then_fallback() {
    let mut a = build_pair(&[(0, 1.0), (100, -2.0)], &[(7, 0.5)]);
    let mut b = build_pair(&[(0, 3.0)], &[(9, 1.5)]);
    let mut ca = AnyCodec::new(CodecKind::Delta);
    let mut cb = AnyCodec::new(CodecKind::Delta);

    let (push, _) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    assert_eq!(CodedHeader::peek(&push).unwrap().subtag, subtag::FULL);
    assert_eq!(pair_bytes(&a), pair_bytes(&b));

    a.out.set_index(200, 4.0);
    let (push, _) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    assert_eq!(CodedHeader::peek(&push).unwrap().subtag, subtag::DELTA);
    assert_eq!(pair_bytes(&a), pair_bytes(&b));
    // A tiny change costs a tiny payload.
    assert!(push.len() < identity_payload_len() / 100);

    // B loses its codec state: the next delta push must fall back.
    let mut cb = AnyCodec::new(CodecKind::Delta);
    a.out.set_index(300, 5.0);
    let before_b = b.clone();
    let (push, reply) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    assert_eq!(CodedHeader::peek(&push).unwrap().subtag, subtag::DELTA);
    assert_eq!(
        CodedHeader::peek(&reply).unwrap().subtag,
        subtag::STALE_FULL
    );
    // The responder did not merge the stale push...
    assert_eq!(pair_bytes(&b), pair_bytes(&before_b));
    // ...and the next exchange resynchronizes losslessly.
    let (push, _) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    assert_eq!(CodedHeader::peek(&push).unwrap().subtag, subtag::FULL);
    assert_eq!(pair_bytes(&a), pair_bytes(&b));
}

#[test]
fn delta_reply_overwrites_interleaved_merges_like_legacy() {
    // A pushes to B; before the reply lands, C's exchange merges into A.
    // Legacy semantics: the reply overwrites A with the A–B merge,
    // discarding the C merge. The delta codec must reproduce that exactly.
    let mut a = build_pair(&[(1, 1.0), (2, 2.0)], &[]);
    let mut b = build_pair(&[(2, 4.0), (3, 3.0)], &[]);
    let mut c = build_pair(&[(4, -1.0)], &[(5, 2.5)]);

    let mut la = a.clone();
    let mut lb = b.clone();
    let mut lc = c.clone();

    let mut ca = AnyCodec::new(CodecKind::Delta);
    let mut cb = AnyCodec::new(CodecKind::Delta);
    let mut cc = AnyCodec::new(CodecKind::Delta);

    // Establish baselines so the interesting second round uses diffs.
    codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    legacy_exchange(&mut la, &mut lb);
    a.out.set_index(10, 7.0);
    la.out.set_index(10, 7.0);

    // Interleaved: A's push to B is encoded, then C pushes into A, then
    // B's reply lands at A.
    let push_ab = ca.encode_push(1, &a);
    let push_ca = cc.encode_push(0, &c);
    let reply_ac = ca.apply_push(2, &mut a, &push_ca).unwrap();
    cc.apply_reply(0, &mut c, &reply_ac).unwrap();
    let reply_ab = cb.apply_push(0, &mut b, &push_ab).unwrap();
    ca.apply_reply(1, &mut a, &reply_ab).unwrap();

    // Legacy with the same interleaving.
    let la_at_push = la.clone();
    legacy_exchange(&mut lc, &mut la);
    let mut incoming = la_at_push;
    QTablePair::merge_symmetric(&mut lb, &mut incoming);
    la = incoming;

    assert_eq!(pair_bytes(&a), pair_bytes(&la));
    assert_eq!(pair_bytes(&b), pair_bytes(&lb));
    assert_eq!(pair_bytes(&c), pair_bytes(&lc));

    // The overwrite dropped C's entries from A, but A's baseline with C
    // still has them — the next A→C diff must encode removals to stay
    // bitwise faithful to legacy.
    let push_ac = ca.encode_push(2, &a);
    let reply_ca = cc.apply_push(0, &mut c, &push_ac).unwrap();
    ca.apply_reply(2, &mut a, &reply_ca).unwrap();
    legacy_exchange(&mut la, &mut lc);
    assert_eq!(pair_bytes(&a), pair_bytes(&la));
    assert_eq!(pair_bytes(&c), pair_bytes(&lc));

    // And the next A–B delta exchange still reproduces legacy bitwise.
    codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    legacy_exchange(&mut la, &mut lb);
    assert_eq!(pair_bytes(&a), pair_bytes(&la));
    assert_eq!(pair_bytes(&b), pair_bytes(&lb));
}

#[test]
fn delta_state_checkpoint_round_trips() {
    let mut a = build_pair(&[(1, 1.0)], &[(2, -2.0)]);
    let mut b = build_pair(&[(3, 3.0)], &[]);
    let mut ca = AnyCodec::new(CodecKind::Delta);
    let mut cb = AnyCodec::new(CodecKind::Delta);
    codec_exchange(&mut ca, &mut cb, &mut a, &mut b);

    let mut w = Writer::new();
    ca.save(&mut w);
    let bytes = w.into_bytes();
    let mut restored = AnyCodec::new(CodecKind::Delta);
    let mut r = Reader::new(&bytes);
    restored.restore(&mut r).unwrap();
    assert!(r.is_exhausted());
    let mut w2 = Writer::new();
    restored.save(&mut w2);
    assert_eq!(bytes, w2.into_bytes());

    // Restoring into the wrong kind is rejected.
    let mut wrong = AnyCodec::new(CodecKind::Priority);
    assert!(wrong.restore(&mut Reader::new(&bytes)).is_err());

    // The restored codec continues losslessly where the original would.
    a.out.set_index(50, 9.0);
    let mut la = a.clone();
    let mut lb = b.clone();
    codec_exchange(&mut restored, &mut cb, &mut a, &mut b);
    legacy_exchange(&mut la, &mut lb);
    assert_eq!(pair_bytes(&a), pair_bytes(&la));
    assert_eq!(pair_bytes(&b), pair_bytes(&lb));
}

#[test]
fn priority_rotates_regions_and_converges() {
    let mut a = QTablePair::default();
    let mut b = QTablePair::default();
    for i in 0..ENTRIES {
        if i % 3 == 0 {
            a.out.set_index(i, i as f64 * 0.01);
        }
        if i % 5 == 0 {
            a.r#in.set_index(i, -(i as f64) * 0.02);
        }
    }
    let mut ca = AnyCodec::new(CodecKind::Priority);
    let mut cb = AnyCodec::new(CodecKind::Priority);

    // First contact ships the full table.
    let (push, _) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    assert_eq!(CodedHeader::peek(&push).unwrap().subtag, subtag::FULL);
    assert_eq!(b.out.visited_count(), a.out.visited_count());

    // Diverge every row, then let top-k rotation catch B up.
    for i in 0..ENTRIES {
        if i % 3 == 0 {
            a.out.set_index(i, i as f64 * 0.01 + 1.0);
        }
    }
    let rounds = NUM_REGIONS / DEFAULT_PRIORITY_REGIONS + 2;
    let mut regions_pushed = Vec::new();
    for _ in 0..rounds {
        let (push, _) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
        let h = CodedHeader::peek(&push).unwrap();
        assert_eq!(h.subtag, subtag::REGIONS);
        // Payloads stay small relative to the dense exchange.
        assert!(push.len() < identity_payload_len() / 4);
        regions_pushed.push(push.len());
    }
    // Every entry A knows is now at B…
    for i in 0..ENTRIES {
        if a.out.raw_visited()[i] {
            assert!(b.out.raw_visited()[i], "entry {i} never reached B");
        }
    }
    // …and both sides agree (each divergent region was pushed, merged,
    // and adopted back).
    assert_eq!(pair_bytes(&a), pair_bytes(&b));
    // Late rounds degrade to near-empty payloads once synced.
    assert!(regions_pushed.last().unwrap() < regions_pushed.first().unwrap());
}

#[test]
fn delta_crossed_pushes_fall_back_and_resync() {
    // A and B push to each other in the same round while a third party's
    // merge has made their would-be merged tables differ. Without the
    // in-flight guard both completions would install different baselines
    // at the same version and the next DELTA would silently reconstruct
    // a wrong table (the REVIEW desync scenario).
    let mut a = build_pair(&[(1, 1.0), (2, 2.0)], &[]);
    let mut b = build_pair(&[(2, 4.0), (3, 3.0)], &[]);
    let mut ca = AnyCodec::new(CodecKind::Delta);
    let mut cb = AnyCodec::new(CodecKind::Delta);
    codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    a.out.set_index(10, 7.0);
    b.out.set_index(11, -7.0);

    // Both pushes are encoded before either lands.
    let push_ab = ca.encode_push(1, &a);
    let push_ba = cb.encode_push(0, &b);
    // A third party merges into A while the pushes are in flight.
    let mut c = build_pair(&[(20, 5.0)], &[]);
    let mut cc = AnyCodec::new(CodecKind::Delta);
    let push_ca = cc.encode_push(0, &c);
    let reply_ac = ca.apply_push(2, &mut a, &push_ca).unwrap();
    cc.apply_reply(0, &mut c, &reply_ac).unwrap();
    // Each side receives the other's crossed push: both must decline
    // with STALE_FULL instead of merging.
    let reply_ba = cb.apply_push(0, &mut b, &push_ab).unwrap();
    let reply_ab = ca.apply_push(1, &mut a, &push_ba).unwrap();
    assert_eq!(
        CodedHeader::peek(&reply_ba).unwrap().subtag,
        subtag::STALE_FULL
    );
    assert_eq!(
        CodedHeader::peek(&reply_ab).unwrap().subtag,
        subtag::STALE_FULL
    );
    ca.apply_reply(1, &mut a, &reply_ba).unwrap();
    cb.apply_reply(0, &mut b, &reply_ab).unwrap();

    // Both sides dropped the baseline: the next push resynchronizes via
    // FULL and leaves the pair bitwise identical — no silent desync.
    let (push, _) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    assert_eq!(CodedHeader::peek(&push).unwrap().subtag, subtag::FULL);
    assert_eq!(pair_bytes(&a), pair_bytes(&b));

    // And delta exchanges from the fresh baseline are lossless again.
    a.out.set_index(30, 9.0);
    let mut la = a.clone();
    let mut lb = b.clone();
    let (push, _) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    assert_eq!(CodedHeader::peek(&push).unwrap().subtag, subtag::DELTA);
    legacy_exchange(&mut la, &mut lb);
    assert_eq!(pair_bytes(&a), pair_bytes(&la));
    assert_eq!(pair_bytes(&b), pair_bytes(&lb));
}

#[test]
fn delta_hash_mismatch_at_equal_version_falls_back() {
    // The second guard: a DELTA push whose version matches but whose
    // baseline hash does not (any desync path the in-flight check cannot
    // see) must take the STALE_FULL fallback, not merge.
    let mut a = build_pair(&[(1, 1.0)], &[(2, -2.0)]);
    let mut b = build_pair(&[(3, 3.0)], &[]);
    let mut ca = AnyCodec::new(CodecKind::Delta);
    let mut cb = AnyCodec::new(CodecKind::Delta);
    codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    // After first contact both baselines equal the merged pair == `a`.
    let good_hash = crate::delta::baseline_hash(&a.out, &a.r#in);

    let forge_push = |hash: u64, a: &QTablePair| {
        let mut w = Writer::new();
        CodedHeader::write(CodecKind::Delta, subtag::DELTA, 0.0, &mut w);
        w.put_u64(1); // version matches B's baseline
        w.put_u64(hash);
        crate::sparse::put_diff(&mut w, &a.out, &a.out); // empty diffs
        crate::sparse::put_diff(&mut w, &a.r#in, &a.r#in);
        w.into_bytes()
    };

    let before_b = b.clone();
    let reply = cb
        .apply_push(0, &mut b, &forge_push(good_hash ^ 1, &a))
        .unwrap();
    assert_eq!(
        CodedHeader::peek(&reply).unwrap().subtag,
        subtag::STALE_FULL
    );
    assert_eq!(pair_bytes(&b), pair_bytes(&before_b));

    // The same body with the matching hash merges normally (B re-learns
    // the baseline on its next FULL contact; rebuild it first).
    let mut cb = AnyCodec::new(CodecKind::Delta);
    let mut ca = AnyCodec::new(CodecKind::Delta);
    codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    let good_hash = crate::delta::baseline_hash(&a.out, &a.r#in);
    let reply = cb
        .apply_push(0, &mut b, &forge_push(good_hash, &a))
        .unwrap();
    assert_eq!(CodedHeader::peek(&reply).unwrap().subtag, subtag::DELTA);
}

#[test]
fn quantized_rejects_overflowing_row_range() {
    // Header-valid payload whose finite min/scale still reconstruct to
    // ±inf at the top of the u16 range must be rejected wholesale, so no
    // non-finite value can enter a Q-table.
    let mut w = Writer::new();
    w.put_u16(1); // n_rows
    w.put_u8(0); // row
    w.put_u8(1); // count
    w.put_f64(1e308); // min (finite)
    w.put_f64(1e304); // scale (finite); min + 65535·scale → inf
    w.put_u8(0); // offset
    w.put_u16(u16::MAX);
    let block = w.into_bytes();
    let mut t = QTable::new();
    assert!(decode_table_into(&block, &mut t).is_err());
    assert_eq!(t.visited_count(), 0);

    // A full coded reply with such a row must leave `own` untouched.
    let mut body = Writer::new();
    CodedHeader::write(CodecKind::Quantized, subtag::QUANT, 0.0, &mut body);
    body.put_bytes(&block);
    body.put_bytes(&block);
    let body = body.into_bytes();
    let mut own = build_pair(&[(5, 2.0)], &[(6, -1.0)]);
    let before = pair_bytes(&own);
    let mut cq = AnyCodec::new(CodecKind::Quantized);
    assert!(cq.apply_push(0, &mut own, &body).is_err());
    assert!(cq.apply_reply(0, &mut own, &body).is_err());
    assert_eq!(pair_bytes(&own), before);
}

#[test]
fn priority_crossed_pushes_fall_back_and_resync() {
    // The priority codec shares the delta codec's lockstep-baseline
    // assumption; crossed REGIONS pushes must decline and resynchronize
    // rather than install divergent baselines at equal versions.
    let mut a = build_pair(&[(1, 1.0), (100, 4.0)], &[(7, 0.5)]);
    let mut b = build_pair(&[(2, 2.0)], &[(9, 1.5)]);
    let mut ca = AnyCodec::new(CodecKind::Priority);
    let mut cb = AnyCodec::new(CodecKind::Priority);
    codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    a.out.set_index(10, 7.0);
    b.out.set_index(11, -7.0);

    let push_ab = ca.encode_push(1, &a);
    let push_ba = cb.encode_push(0, &b);
    let reply_ba = cb.apply_push(0, &mut b, &push_ab).unwrap();
    let reply_ab = ca.apply_push(1, &mut a, &push_ba).unwrap();
    assert_eq!(
        CodedHeader::peek(&reply_ba).unwrap().subtag,
        subtag::STALE_FULL
    );
    assert_eq!(
        CodedHeader::peek(&reply_ab).unwrap().subtag,
        subtag::STALE_FULL
    );
    ca.apply_reply(1, &mut a, &reply_ba).unwrap();
    cb.apply_reply(0, &mut b, &reply_ab).unwrap();

    // Baselines dropped on both sides: next contact is a full exchange
    // and both sides converge bitwise.
    let (push, _) = codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
    assert_eq!(CodedHeader::peek(&push).unwrap().subtag, subtag::FULL);
    assert_eq!(pair_bytes(&a), pair_bytes(&b));
}

#[test]
fn quantized_table_block_respects_declared_error() {
    let t = build_table(&[(0, 1.0), (1, 1.0 + 1e-7), (80, -3.0), (6560, 1000.0)]);
    let (block, err) = encode_table(&t);
    let mut d = QTable::new();
    decode_table_into(&block, &mut d).unwrap();
    assert_eq!(d.visited_count(), t.visited_count());
    for i in 0..ENTRIES {
        if t.raw_visited()[i] {
            let diff = (t.raw_values()[i] - d.raw_values()[i]).abs();
            assert!(diff <= err, "entry {i}: {diff} > declared {err}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identity codec exchanges are bitwise the legacy exchange.
    #[test]
    fn identity_exchange_is_lossless(
        ao in entry_strategy(), ai in entry_strategy(),
        bo in entry_strategy(), bi in entry_strategy(),
    ) {
        let mut a = build_pair(&ao, &ai);
        let mut b = build_pair(&bo, &bi);
        let mut la = a.clone();
        let mut lb = b.clone();
        let mut ca = AnyCodec::new(CodecKind::Identity);
        let mut cb = AnyCodec::new(CodecKind::Identity);
        codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
        legacy_exchange(&mut la, &mut lb);
        prop_assert_eq!(pair_bytes(&a), pair_bytes(&la));
        prop_assert_eq!(pair_bytes(&b), pair_bytes(&lb));
    }

    /// Delta exchanges — full, then diffs across mutations — reproduce the
    /// legacy exchange down to snapshot bytes.
    #[test]
    fn delta_exchanges_are_lossless(
        ao in entry_strategy(), ai in entry_strategy(),
        bo in entry_strategy(), bi in entry_strategy(),
        m1 in entry_strategy(), m2 in entry_strategy(),
    ) {
        let mut a = build_pair(&ao, &ai);
        let mut b = build_pair(&bo, &bi);
        let mut la = a.clone();
        let mut lb = b.clone();
        let mut ca = AnyCodec::new(CodecKind::Delta);
        let mut cb = AnyCodec::new(CodecKind::Delta);
        for muts in [&m1, &m2] {
            codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
            legacy_exchange(&mut la, &mut lb);
            prop_assert_eq!(pair_bytes(&a), pair_bytes(&la));
            prop_assert_eq!(pair_bytes(&b), pair_bytes(&lb));
            for &(i, v) in muts.iter() {
                a.out.set_index(i % ENTRIES, v);
                la.out.set_index(i % ENTRIES, v);
            }
        }
        codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
        legacy_exchange(&mut la, &mut lb);
        prop_assert_eq!(pair_bytes(&a), pair_bytes(&la));
        prop_assert_eq!(pair_bytes(&b), pair_bytes(&lb));
    }

    /// Quantized blocks decode within the declared max-error bound.
    #[test]
    fn quantized_within_declared_bound(entries in entry_strategy()) {
        let t = build_table(&entries);
        let (block, err) = encode_table(&t);
        let mut d = QTable::new();
        decode_table_into(&block, &mut d).unwrap();
        prop_assert_eq!(d.visited_count(), t.visited_count());
        for i in 0..ENTRIES {
            if t.raw_visited()[i] {
                prop_assert!(d.raw_visited()[i]);
                let diff = (t.raw_values()[i] - d.raw_values()[i]).abs();
                prop_assert!(diff <= err, "entry {}: {} > declared {}", i, diff, err);
            }
        }
        // And the full exchange declares the same bound in its header.
        let pair = build_pair(&entries, &entries);
        let mut ca = AnyCodec::new(CodecKind::Quantized);
        let body = ca.encode_push(1, &pair);
        let h = CodedHeader::peek(&body).unwrap();
        prop_assert!(h.err_bound >= err);
    }

    /// Priority gossip is eventually complete: the union of enough
    /// exchanges covers every entry the sender knows.
    #[test]
    fn priority_eventually_complete(
        ao in entry_strategy(), ai in entry_strategy(),
        bo in entry_strategy(), bi in entry_strategy(),
        muts in entry_strategy(),
    ) {
        let mut a = build_pair(&ao, &ai);
        let mut b = build_pair(&bo, &bi);
        let mut ca = AnyCodec::new(CodecKind::Priority);
        let mut cb = AnyCodec::new(CodecKind::Priority);
        codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
        for &(i, v) in &muts {
            a.out.set_index(i % ENTRIES, v);
            a.r#in.set_index((i * 7) % ENTRIES, -v);
        }
        let rounds = NUM_REGIONS / DEFAULT_PRIORITY_REGIONS + 2;
        for _ in 0..rounds {
            codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
        }
        for i in 0..ENTRIES {
            if a.out.raw_visited()[i] {
                prop_assert!(b.out.raw_visited()[i], "out entry {} never reached B", i);
            }
            if a.r#in.raw_visited()[i] {
                prop_assert!(b.r#in.raw_visited()[i], "in entry {} never reached B", i);
            }
        }
        prop_assert_eq!(pair_bytes(&a), pair_bytes(&b));
    }

    /// The sim-path fleet helper mirrors the pairwise exchange exactly.
    #[test]
    fn fleet_complete_matches_pairwise(
        ao in entry_strategy(), bo in entry_strategy(),
    ) {
        let tables = vec![build_pair(&ao, &[]), build_pair(&bo, &[])];
        let mut fleet = FleetCodecs::new(2, CodecKind::Delta);
        let mut fleet_tables = tables.clone();
        let push = fleet.encode_push(0, 1, &fleet_tables);
        fleet.complete(0, 1, &mut fleet_tables, &push).unwrap();

        let mut a = tables[0].clone();
        let mut b = tables[1].clone();
        let mut ca = AnyCodec::new(CodecKind::Delta);
        let mut cb = AnyCodec::new(CodecKind::Delta);
        codec_exchange(&mut ca, &mut cb, &mut a, &mut b);
        prop_assert_eq!(pair_bytes(&fleet_tables[0]), pair_bytes(&a));
        prop_assert_eq!(pair_bytes(&fleet_tables[1]), pair_bytes(&b));
    }
}
