//! Sparse and diff encodings of a [`QTable`], shared by the delta and
//! priority codecs.
//!
//! Entries are addressed by flat index `s.index() * NUM_STATES +
//! a.index()` (a `u16`: tables have 81×81 = 6561 entries) and always
//! written in ascending index order, so identical tables encode to
//! identical bytes.

use glap_qlearn::{QTable, NUM_STATES};
use glap_snapshot::{Reader, SnapshotError, Writer};

/// Flat entries per table.
pub(crate) const TABLE_ENTRIES: usize = NUM_STATES * NUM_STATES;

/// `u32 count, count × (u16 index, f64 value)` over all visited entries.
pub(crate) fn put_sparse(w: &mut Writer, t: &QTable) {
    let visited = t.raw_visited();
    let values = t.raw_values();
    w.put_u32(t.visited_count() as u32);
    for i in 0..TABLE_ENTRIES {
        if visited[i] {
            w.put_u16(i as u16);
            w.put_f64(values[i]);
        }
    }
}

/// Applies a sparse block onto `t`: every listed entry is set (and marked
/// visited). Entries absent from the block are left untouched.
pub(crate) fn get_sparse_into(r: &mut Reader<'_>, t: &mut QTable) -> Result<(), SnapshotError> {
    let count = r.get_u32()? as usize;
    if count > TABLE_ENTRIES {
        return Err(SnapshotError::Corrupt(format!(
            "sparse table claims {count} entries (max {TABLE_ENTRIES})"
        )));
    }
    for _ in 0..count {
        let i = r.get_u16()? as usize;
        if i >= TABLE_ENTRIES {
            return Err(SnapshotError::Corrupt(format!(
                "sparse table entry index {i} out of range"
            )));
        }
        t.set_index(i, r.get_f64()?);
    }
    Ok(())
}

/// Diff of `new` against `old`:
/// `u32 n_removed, n_removed × u16 index, u32 n_upserts, n_upserts ×
/// (u16 index, f64 value)`.
///
/// Removals (visited in `old`, not in `new`) are rare — a node's visited
/// set only shrinks when a push–pull reply overwrites interleaved merges —
/// but encoding them keeps baseline reconstruction exact in every
/// interleaving, which the delta codec's losslessness depends on.
pub(crate) fn put_diff(w: &mut Writer, new: &QTable, old: &QTable) {
    let (nv, nb) = (new.raw_values(), new.raw_visited());
    let (ov, ob) = (old.raw_values(), old.raw_visited());
    let n_removed = (0..TABLE_ENTRIES).filter(|&i| ob[i] && !nb[i]).count();
    w.put_u32(n_removed as u32);
    for i in 0..TABLE_ENTRIES {
        if ob[i] && !nb[i] {
            w.put_u16(i as u16);
        }
    }
    let n_upserts = (0..TABLE_ENTRIES)
        .filter(|&i| nb[i] && (!ob[i] || nv[i].to_bits() != ov[i].to_bits()))
        .count();
    w.put_u32(n_upserts as u32);
    for i in 0..TABLE_ENTRIES {
        if nb[i] && (!ob[i] || nv[i].to_bits() != ov[i].to_bits()) {
            w.put_u16(i as u16);
            w.put_f64(nv[i]);
        }
    }
}

/// Reconstructs `base` + diff into a fresh table: base entries not listed
/// as removed, then upserts applied on top. Bitwise-exact inverse of
/// [`put_diff`] (`get_diff(base, diff(new, base)) == new`).
pub(crate) fn get_diff(r: &mut Reader<'_>, base: &QTable) -> Result<QTable, SnapshotError> {
    let n_removed = r.get_u32()? as usize;
    if n_removed > TABLE_ENTRIES {
        return Err(SnapshotError::Corrupt(format!(
            "diff claims {n_removed} removals (max {TABLE_ENTRIES})"
        )));
    }
    let mut removed = Vec::with_capacity(n_removed);
    for _ in 0..n_removed {
        let i = r.get_u16()? as usize;
        if i >= TABLE_ENTRIES {
            return Err(SnapshotError::Corrupt(format!(
                "diff removal index {i} out of range"
            )));
        }
        removed.push(i);
    }
    let mut out = QTable::new();
    let (bv, bb) = (base.raw_values(), base.raw_visited());
    for i in 0..TABLE_ENTRIES {
        if bb[i] && removed.binary_search(&i).is_err() {
            out.set_index(i, bv[i]);
        }
    }
    // The upsert half of a diff shares the sparse-block wire shape.
    get_sparse_into(r, &mut out)?;
    Ok(out)
}
