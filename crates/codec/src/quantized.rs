//! Fixed-point table payloads: each value is sent as a `u16` offset into a
//! per-row `[min, max]` range (the "per-block scale"), cutting an entry
//! from 10 bytes (sparse index + `f64`) to 3.
//!
//! The codec is stateless and lossy. Every payload header declares the
//! *measured* worst-case dequantization error of its own contents (max
//! |exact − dequantized| over all encoded entries), so transports can
//! account a sound `codec.q_err_max` bound without trusting an a-priori
//! formula. A merge that adopts a dequantized value perturbs it by at most
//! that bound relative to the exact exchange; the bandwidth sweep feeds
//! the bound into the `ConvergenceMonitor`'s diameter-monotonicity check
//! as a tolerance.

use crate::{
    expect_exhausted, read_header_expecting, subtag, CodecKind, CodedHeader, PeerId, TableCodec,
};
use glap_qlearn::{QTable, QTablePair, NUM_STATES};
use glap_snapshot::{Reader, SnapshotError, Writer};

const Q_MAX: f64 = u16::MAX as f64;

/// The quantized (per-row fixed-point) codec. Stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuantizedCodec;

/// `u16 n_rows; n_rows × (u8 row, u8 count, f64 min, f64 scale,
/// count × (u8 offset, u16 q))`, rows and offsets ascending.
/// Returns the encoded block and its measured max dequantization error.
pub(crate) fn encode_table(t: &QTable) -> (Vec<u8>, f64) {
    let visited = t.raw_visited();
    let values = t.raw_values();
    let mut w = Writer::new();
    let n_rows = (0..NUM_STATES)
        .filter(|row| (0..NUM_STATES).any(|o| visited[row * NUM_STATES + o]))
        .count();
    w.put_u16(n_rows as u16);
    let mut err_max = 0.0f64;
    for row in 0..NUM_STATES {
        let base_i = row * NUM_STATES;
        let mut count = 0usize;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for o in 0..NUM_STATES {
            if visited[base_i + o] {
                count += 1;
                min = min.min(values[base_i + o]);
                max = max.max(values[base_i + o]);
            }
        }
        if count == 0 {
            continue;
        }
        let scale = if max > min { (max - min) / Q_MAX } else { 0.0 };
        w.put_u8(row as u8);
        w.put_u8(count as u8);
        w.put_f64(min);
        w.put_f64(scale);
        for o in 0..NUM_STATES {
            if visited[base_i + o] {
                let v = values[base_i + o];
                let q = if scale > 0.0 {
                    ((v - min) / scale).round().clamp(0.0, Q_MAX) as u16
                } else {
                    0
                };
                err_max = err_max.max((v - dequantize(min, scale, q)).abs());
                w.put_u8(o as u8);
                w.put_u16(q);
            }
        }
    }
    (w.into_bytes(), err_max)
}

#[inline]
fn dequantize(min: f64, scale: f64, q: u16) -> f64 {
    min + q as f64 * scale
}

/// Applies a quantized block onto `t`, setting every encoded entry.
pub(crate) fn decode_table_into(block: &[u8], t: &mut QTable) -> Result<(), SnapshotError> {
    let mut r = Reader::new(block);
    let n_rows = r.get_u16()? as usize;
    if n_rows > NUM_STATES {
        return Err(SnapshotError::Corrupt(format!(
            "quantized table claims {n_rows} rows (max {NUM_STATES})"
        )));
    }
    for _ in 0..n_rows {
        let row = r.get_u8()? as usize;
        let count = r.get_u8()? as usize;
        if row >= NUM_STATES || count == 0 || count > NUM_STATES {
            return Err(SnapshotError::Corrupt(format!(
                "invalid quantized row {row} with {count} entries"
            )));
        }
        let min = r.get_f64()?;
        let scale = r.get_f64()?;
        if !min.is_finite() || !scale.is_finite() || scale < 0.0 {
            return Err(SnapshotError::Corrupt(
                "non-finite quantization parameters".into(),
            ));
        }
        // Finite min/scale can still reconstruct to ±inf (e.g. scale
        // ~1e304): reject the row unless its largest reconstructible
        // value is finite, so no decoded entry can inject a non-finite
        // value into a Q-table. Dequantization is monotone in q, so the
        // q = u16::MAX endpoint bounds every entry of the row.
        if !dequantize(min, scale, u16::MAX).is_finite() {
            return Err(SnapshotError::Corrupt(format!(
                "quantized row range overflows: min {min}, scale {scale}"
            )));
        }
        for _ in 0..count {
            let o = r.get_u8()? as usize;
            if o >= NUM_STATES {
                return Err(SnapshotError::Corrupt(format!(
                    "quantized entry offset {o} out of range"
                )));
            }
            let q = r.get_u16()?;
            t.set_index(row * NUM_STATES + o, dequantize(min, scale, q));
        }
    }
    expect_exhausted(&r)
}

fn encode_pair(own: &QTablePair) -> Vec<u8> {
    let (out_block, out_err) = encode_table(&own.out);
    let (in_block, in_err) = encode_table(&own.r#in);
    let mut w = Writer::new();
    CodedHeader::write(
        CodecKind::Quantized,
        subtag::QUANT,
        out_err.max(in_err),
        &mut w,
    );
    w.put_bytes(&out_block);
    w.put_bytes(&in_block);
    w.into_bytes()
}

fn decode_pair_into(body: &[u8], out: &mut QTable, r#in: &mut QTable) -> Result<(), SnapshotError> {
    let mut r = Reader::new(body);
    let h = read_header_expecting(&mut r, CodecKind::Quantized)?;
    if h.subtag != subtag::QUANT {
        return Err(SnapshotError::Corrupt(format!(
            "quantized codec cannot apply subtag {}",
            h.subtag
        )));
    }
    let out_block = r.get_bytes()?;
    let in_block = r.get_bytes()?;
    expect_exhausted(&r)?;
    decode_table_into(&out_block, out)?;
    decode_table_into(&in_block, r#in)
}

impl TableCodec for QuantizedCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Quantized
    }

    fn encode_push(&mut self, _peer: PeerId, table: &QTablePair) -> Vec<u8> {
        encode_pair(table)
    }

    fn apply_push(
        &mut self,
        _peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<Vec<u8>, SnapshotError> {
        let mut pusher = QTablePair::new(own.params);
        decode_pair_into(body, &mut pusher.out, &mut pusher.r#in)?;
        QTablePair::merge_symmetric(own, &mut pusher);
        Ok(encode_pair(own))
    }

    fn apply_reply(
        &mut self,
        _peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<(), SnapshotError> {
        // The responder's merged table is a superset of what we pushed;
        // adopting every encoded entry mirrors the legacy overwrite up to
        // the declared quantization error. Decode into a scratch pair
        // first so a corrupt body leaves `own` untouched rather than
        // half-applied.
        let mut merged = QTablePair::new(own.params);
        decode_pair_into(body, &mut merged.out, &mut merged.r#in)?;
        for (dst, src) in [(&mut own.out, &merged.out), (&mut own.r#in, &merged.r#in)] {
            let (values, visited) = (src.raw_values(), src.raw_visited());
            for (i, &v) in values.iter().enumerate() {
                if visited[i] {
                    dst.set_index(i, v);
                }
            }
        }
        Ok(())
    }
}
