//! Bit-exact dense payloads: the table's checkpoint encoding behind a
//! coded header.
//!
//! Integration layers special-case [`CodecKind::Identity`] onto the legacy
//! verbatim-table wire path, so this implementation is exercised by
//! benchmarks and the sweep harness rather than production exchanges — it
//! exists so every [`CodecKind`] has a uniform [`TableCodec`] behind it
//! and the dense encoding has a measured encode/decode cost.

use crate::{
    expect_exhausted, read_header_expecting, subtag, CodecKind, CodedHeader, PeerId, TableCodec,
};
use glap_qlearn::QTablePair;
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};

/// The identity (dense, lossless) codec. Stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityCodec;

impl TableCodec for IdentityCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Identity
    }

    fn encode_push(&mut self, _peer: PeerId, table: &QTablePair) -> Vec<u8> {
        let mut w = Writer::new();
        CodedHeader::write(CodecKind::Identity, subtag::FULL, 0.0, &mut w);
        table.save(&mut w);
        w.into_bytes()
    }

    fn apply_push(
        &mut self,
        _peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<Vec<u8>, SnapshotError> {
        let mut r = Reader::new(body);
        read_header_expecting(&mut r, CodecKind::Identity)?;
        let mut incoming = QTablePair::default();
        incoming.restore(&mut r)?;
        expect_exhausted(&r)?;
        QTablePair::merge_symmetric(own, &mut incoming);
        let mut w = Writer::new();
        CodedHeader::write(CodecKind::Identity, subtag::FULL, 0.0, &mut w);
        own.save(&mut w);
        Ok(w.into_bytes())
    }

    fn apply_reply(
        &mut self,
        _peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<(), SnapshotError> {
        let mut r = Reader::new(body);
        read_header_expecting(&mut r, CodecKind::Identity)?;
        own.restore(&mut r)?;
        expect_exhausted(&r)
    }
}
