//! Per-peer versioned diffs with full-table fallback. Lossless: every
//! completed exchange leaves both sides bitwise where the legacy dense
//! exchange would have.
//!
//! ## State and versions
//!
//! For each peer the codec keeps the *baseline*: the merged table both
//! sides held when their last exchange completed, plus a version counter.
//! Both sides update the baseline at completion, so versions advance in
//! lockstep; a `DELTA` push carries the sender's version and the receiver
//! reconstructs the sender's exact current table as `baseline + diff`.
//! First contact (no baseline) sends a sparse `FULL` table instead.
//!
//! On version mismatch — possible only if one side lost state, e.g. a
//! restored snapshot from a different point — the receiver does *not*
//! merge; it clears the baseline and replies `STALE_FULL` with its own
//! table so both sides resynchronize (counted as `codec.fallbacks`).
//!
//! ## Exactness across interleavings
//!
//! The initiator also records the table it pushed (`in_flight`). The reply
//! diff is computed against exactly that table, so `apply_reply`
//! reconstructs the responder's merged result bitwise and *overwrites* the
//! initiator's pair with it — matching the legacy `table = *merged`
//! semantics even when other exchanges merged into the initiator while the
//! reply was in flight. Diffs additionally encode removals (entries the
//! sender's visited set dropped relative to the baseline, which that same
//! overwrite can cause), keeping reconstruction exact in every
//! interleaving a serialized push→reply transport can produce.
//!
//! ## Crossed exchanges
//!
//! The lockstep-version scheme assumes exchanges with one peer complete
//! one at a time. If both sides push to each other concurrently (A→B and
//! B→A in the same round), each completion installs *its own* merged
//! table as the baseline — two different tables at the same version when
//! a third party's merge interleaves — and the next `DELTA` would
//! reconstruct a wrong table while the version check still passes. Two
//! guards close that hole:
//!
//! * A push arriving while this side has its own push to the same peer in
//!   flight is answered `STALE_FULL` without merging: both sides drop the
//!   baseline and resynchronize via `FULL` on next contact (exact
//!   arithmetic throughout — the fallback merges full `f64` tables, it
//!   just spends full-table bytes).
//! * Every `DELTA` push carries a content hash of the sender's baseline
//!   next to the version. Mismatched baselines at equal versions — any
//!   desync path the in-flight check does not see — are detected on
//!   receipt and take the same `STALE_FULL` fallback instead of silently
//!   breaking the lossless guarantee.

use crate::sparse::{get_diff, get_sparse_into, put_diff, put_sparse};
use crate::{
    expect_exhausted, read_header_expecting, subtag, CodecKind, CodedHeader, PeerId, TableCodec,
};
use glap_qlearn::{QTable, QTablePair};
use glap_snapshot::{Reader, SnapshotError, Writer};
use std::collections::BTreeMap;

/// The per-peer shared table state delta and priority codecs diff against.
#[derive(Debug, Clone)]
pub(crate) struct PeerBaseline {
    /// Exchange counter, advanced in lockstep on both sides.
    pub version: u64,
    /// φ_out as of the last completed exchange.
    pub out: QTable,
    /// φ_in as of the last completed exchange.
    pub r#in: QTable,
}

#[inline]
fn fnv_mix(h: &mut u64, x: u64) {
    for b in x.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// Content hash of a baseline table pair (visited entries: index + value
/// bits, FNV-1a). Carried alongside the version in every `DELTA` push so
/// mismatched baselines at equal versions are detected instead of
/// reconstructing a wrong table.
pub(crate) fn baseline_hash(out: &QTable, r#in: &QTable) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in [out, r#in] {
        let (values, visited) = (t.raw_values(), t.raw_visited());
        for (i, &v) in values.iter().enumerate() {
            if visited[i] {
                fnv_mix(&mut h, i as u64);
                fnv_mix(&mut h, v.to_bits());
            }
        }
    }
    h
}

pub(crate) fn save_baselines(peers: &BTreeMap<PeerId, PeerBaseline>, w: &mut Writer) {
    w.put_usize(peers.len());
    for (&peer, base) in peers {
        w.put_u32(peer);
        w.put_u64(base.version);
        put_sparse(w, &base.out);
        put_sparse(w, &base.r#in);
    }
}

pub(crate) fn restore_baselines(
    r: &mut Reader<'_>,
) -> Result<BTreeMap<PeerId, PeerBaseline>, SnapshotError> {
    let n = r.get_usize()?;
    let mut peers = BTreeMap::new();
    for _ in 0..n {
        let peer = r.get_u32()?;
        let version = r.get_u64()?;
        let mut out = QTable::new();
        get_sparse_into(r, &mut out)?;
        let mut r#in = QTable::new();
        get_sparse_into(r, &mut r#in)?;
        if peers
            .insert(peer, PeerBaseline { version, out, r#in })
            .is_some()
        {
            return Err(SnapshotError::Corrupt(format!(
                "duplicate peer {peer} in codec snapshot"
            )));
        }
    }
    Ok(peers)
}

/// The delta (lossless diff) codec.
#[derive(Debug, Clone, Default)]
pub struct DeltaCodec {
    peers: BTreeMap<PeerId, PeerBaseline>,
    /// Table contents as of each not-yet-answered push, keyed by peer.
    in_flight: BTreeMap<PeerId, (QTable, QTable)>,
}

impl DeltaCodec {
    pub(crate) fn save_state(&self, w: &mut Writer) {
        save_baselines(&self.peers, w);
        w.put_usize(self.in_flight.len());
        for (&peer, (out, r#in)) in &self.in_flight {
            w.put_u32(peer);
            put_sparse(w, out);
            put_sparse(w, r#in);
        }
    }

    pub(crate) fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.peers = restore_baselines(r)?;
        self.in_flight.clear();
        let n = r.get_usize()?;
        for _ in 0..n {
            let peer = r.get_u32()?;
            let mut out = QTable::new();
            get_sparse_into(r, &mut out)?;
            let mut r#in = QTable::new();
            get_sparse_into(r, &mut r#in)?;
            if self.in_flight.insert(peer, (out, r#in)).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate in-flight peer {peer} in codec snapshot"
                )));
            }
        }
        Ok(())
    }

    /// Merges the reconstructed pusher table into `own`, records the new
    /// baseline, and encodes the reply diff (merged vs. what the pusher
    /// already has).
    fn merge_and_reply(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        mut pusher: QTablePair,
        new_version: u64,
    ) -> Vec<u8> {
        let pushed = (pusher.out.clone(), pusher.r#in.clone());
        QTablePair::merge_symmetric(own, &mut pusher);
        let mut w = Writer::new();
        CodedHeader::write(CodecKind::Delta, subtag::DELTA, 0.0, &mut w);
        w.put_u64(new_version);
        put_diff(&mut w, &own.out, &pushed.0);
        put_diff(&mut w, &own.r#in, &pushed.1);
        self.peers.insert(
            peer,
            PeerBaseline {
                version: new_version,
                out: own.out.clone(),
                r#in: own.r#in.clone(),
            },
        );
        w.into_bytes()
    }

    /// Declines to merge a push: drops the baseline and replies with our
    /// full table so both sides resynchronize (counted as
    /// `codec.fallbacks` by the transports).
    fn stale_reply(&mut self, peer: PeerId, own: &QTablePair) -> Vec<u8> {
        self.peers.remove(&peer);
        let mut w = Writer::new();
        CodedHeader::write(CodecKind::Delta, subtag::STALE_FULL, 0.0, &mut w);
        put_sparse(&mut w, &own.out);
        put_sparse(&mut w, &own.r#in);
        w.into_bytes()
    }
}

impl TableCodec for DeltaCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Delta
    }

    fn encode_push(&mut self, peer: PeerId, table: &QTablePair) -> Vec<u8> {
        self.in_flight
            .insert(peer, (table.out.clone(), table.r#in.clone()));
        let mut w = Writer::new();
        match self.peers.get(&peer) {
            None => {
                CodedHeader::write(CodecKind::Delta, subtag::FULL, 0.0, &mut w);
                put_sparse(&mut w, &table.out);
                put_sparse(&mut w, &table.r#in);
            }
            Some(base) => {
                CodedHeader::write(CodecKind::Delta, subtag::DELTA, 0.0, &mut w);
                w.put_u64(base.version);
                w.put_u64(baseline_hash(&base.out, &base.r#in));
                put_diff(&mut w, &table.out, &base.out);
                put_diff(&mut w, &table.r#in, &base.r#in);
            }
        }
        w.into_bytes()
    }

    fn apply_push(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<Vec<u8>, SnapshotError> {
        let mut r = Reader::new(body);
        let h = read_header_expecting(&mut r, CodecKind::Delta)?;
        match h.subtag {
            subtag::FULL => {
                let mut pusher = QTablePair::new(own.params);
                get_sparse_into(&mut r, &mut pusher.out)?;
                get_sparse_into(&mut r, &mut pusher.r#in)?;
                expect_exhausted(&r)?;
                if self.in_flight.contains_key(&peer) {
                    // Crossed exchange (module docs): completing both
                    // legs would install divergent baselines at the same
                    // version, so decline and resynchronize.
                    return Ok(self.stale_reply(peer, own));
                }
                Ok(self.merge_and_reply(peer, own, pusher, 1))
            }
            subtag::DELTA => {
                let version = r.get_u64()?;
                let hash = r.get_u64()?;
                let crossed = self.in_flight.contains_key(&peer);
                let fresh = !crossed
                    && matches!(
                        self.peers.get(&peer),
                        Some(b) if b.version == version
                            && baseline_hash(&b.out, &b.r#in) == hash
                    );
                if fresh {
                    let base = self.peers.get(&peer).expect("checked above");
                    let out = get_diff(&mut r, &base.out)?;
                    let r#in = get_diff(&mut r, &base.r#in)?;
                    expect_exhausted(&r)?;
                    let mut pusher = QTablePair::new(own.params);
                    pusher.out = out;
                    pusher.r#in = r#in;
                    Ok(self.merge_and_reply(peer, own, pusher, version + 1))
                } else {
                    // Stale or mismatched baseline, or a crossed
                    // exchange: validate the body shape but do not merge
                    // — reply with our full table so both sides
                    // resynchronize on the next exchange.
                    get_diff(&mut r, &QTable::new())?;
                    get_diff(&mut r, &QTable::new())?;
                    expect_exhausted(&r)?;
                    Ok(self.stale_reply(peer, own))
                }
            }
            other => Err(SnapshotError::Corrupt(format!(
                "delta codec cannot apply subtag {other} as a push"
            ))),
        }
    }

    fn apply_reply(
        &mut self,
        peer: PeerId,
        own: &mut QTablePair,
        body: &[u8],
    ) -> Result<(), SnapshotError> {
        let mut r = Reader::new(body);
        let h = read_header_expecting(&mut r, CodecKind::Delta)?;
        match h.subtag {
            subtag::DELTA => {
                let (pushed_out, pushed_in) = self.in_flight.remove(&peer).ok_or_else(|| {
                    SnapshotError::Corrupt(format!(
                        "delta reply from {peer} without a push in flight"
                    ))
                })?;
                let version = r.get_u64()?;
                let out = get_diff(&mut r, &pushed_out)?;
                let r#in = get_diff(&mut r, &pushed_in)?;
                expect_exhausted(&r)?;
                // Adopt the responder's merged result wholesale — the
                // legacy `table = *merged` semantics.
                own.out = out;
                own.r#in = r#in;
                self.peers.insert(
                    peer,
                    PeerBaseline {
                        version,
                        out: own.out.clone(),
                        r#in: own.r#in.clone(),
                    },
                );
                Ok(())
            }
            subtag::STALE_FULL => {
                self.in_flight.remove(&peer);
                let mut theirs = QTablePair::new(own.params);
                get_sparse_into(&mut r, &mut theirs.out)?;
                get_sparse_into(&mut r, &mut theirs.r#in)?;
                expect_exhausted(&r)?;
                // One-sided merge: the responder did not merge our push,
                // but averaging their table in is still diameter-safe.
                QTablePair::merge_symmetric(own, &mut theirs);
                self.peers.remove(&peer);
                Ok(())
            }
            other => Err(SnapshotError::Corrupt(format!(
                "delta codec cannot apply subtag {other} as a reply"
            ))),
        }
    }

    fn push_failed(&mut self, peer: PeerId) {
        self.in_flight.remove(&peer);
    }

    fn reset_peer(&mut self, peer: PeerId) {
        self.peers.remove(&peer);
        self.in_flight.remove(&peer);
    }
}
