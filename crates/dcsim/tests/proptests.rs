//! Property-based tests for the simulation engines: event ordering,
//! determinism and RNG stream independence.

use glap_dcsim::{
    node_rng, splitmix64, stream_rng, EdContext, EdEvent, EdNode, EdNodeId, EventEngine,
    LatencyModel, Stream,
};
use proptest::prelude::*;
use rand::RngCore;

/// A node that logs every delivery timestamp and forwards each message
/// once to a fixed next hop.
struct RelayNode {
    next: EdNodeId,
    deliveries: Vec<u64>,
    forwards_left: u32,
}

impl EdNode<u32> for RelayNode {
    fn on_event(&mut self, ev: EdEvent<u32>, ctx: &mut EdContext<u32>) {
        self.deliveries.push(ctx.now);
        if let EdEvent::Message { payload, .. } = ev {
            if self.forwards_left > 0 {
                self.forwards_left -= 1;
                ctx.send(self.next, payload + 1);
            }
        }
    }
}

fn build_ring(
    n: usize,
    forwards: u32,
    seed: u64,
    latency: LatencyModel,
) -> EventEngine<u32, RelayNode> {
    let nodes: Vec<RelayNode> = (0..n)
        .map(|i| RelayNode {
            next: ((i + 1) % n) as EdNodeId,
            deliveries: Vec::new(),
            forwards_left: forwards,
        })
        .collect();
    EventEngine::new(nodes, latency, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-node delivery timestamps are non-decreasing and global time
    /// never runs backwards.
    #[test]
    fn time_is_monotone(
        n in 2usize..10,
        seed in 0u64..1000,
        injections in proptest::collection::vec((0u64..100, 0u32..100), 1..20),
    ) {
        let mut eng = build_ring(n, 3, seed, LatencyModel { min_ticks: 1, max_ticks: 20 });
        for (i, &(at, payload)) in injections.iter().enumerate() {
            eng.inject_message(0, (i % n) as EdNodeId, at, payload);
        }
        let mut last = 0u64;
        while eng.step() {
            prop_assert!(eng.now() >= last);
            last = eng.now();
        }
        for node in eng.nodes() {
            prop_assert!(node.deliveries.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    /// The engine is fully deterministic: identical setups produce
    /// identical delivery logs.
    #[test]
    fn engine_is_deterministic(n in 2usize..8, seed in 0u64..500) {
        let run = || {
            let mut eng = build_ring(n, 5, seed, LatencyModel { min_ticks: 1, max_ticks: 30 });
            eng.inject_message(0, 1, 0, 7);
            eng.run_until(10_000);
            eng.nodes().iter().map(|nd| nd.deliveries.clone()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Bounded forwarding terminates: total deliveries ≤ injections +
    /// total forward budget.
    #[test]
    fn bounded_forwarding_terminates(
        n in 2usize..8,
        forwards in 0u32..10,
        injections in 1usize..10,
    ) {
        let mut eng = build_ring(n, forwards, 3, LatencyModel { min_ticks: 1, max_ticks: 5 });
        for i in 0..injections {
            eng.inject_message(0, (i % n) as EdNodeId, 0, 0);
        }
        eng.run_until(u64::MAX / 2);
        let delivered: usize = eng.nodes().iter().map(|nd| nd.deliveries.len()).sum();
        prop_assert!(delivered <= injections + n * forwards as usize);
        prop_assert!(delivered >= injections);
    }

    /// Named RNG streams never collide for differing (seed, stream) pairs
    /// (first draws differ with overwhelming probability).
    #[test]
    fn rng_streams_are_distinct(seed_a in 0u64..10_000, seed_b in 0u64..10_000) {
        let mut a = stream_rng(seed_a, Stream::Trace);
        let mut b = stream_rng(seed_a, Stream::Policy);
        prop_assert_ne!(a.next_u64(), b.next_u64());
        if seed_a != seed_b {
            let mut c = stream_rng(seed_a, Stream::Trace);
            let mut d = stream_rng(seed_b, Stream::Trace);
            prop_assert_ne!(c.next_u64(), d.next_u64());
        }
    }

    /// splitmix64 is injective on small ranges (no collisions among
    /// sequential inputs) and node streams differ across nodes.
    #[test]
    fn seed_expansion_has_no_easy_collisions(base in 0u64..1_000_000) {
        let outs: Vec<u64> = (0..64).map(|i| splitmix64(base + i)).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), outs.len());
        let mut n0 = node_rng(base, Stream::Learning, 0);
        let mut n1 = node_rng(base, Stream::Learning, 1);
        prop_assert_ne!(n0.next_u64(), n1.next_u64());
    }
}
