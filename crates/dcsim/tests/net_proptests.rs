//! Property-based tests for the network model's fault-injection
//! contracts: the zero-loss path is indistinguishable from direct
//! delivery, crashed nodes are black holes until they recover, and
//! every outcome is a pure function of the seed.

use glap_dcsim::{Delivery, FaultProfile, LinkLatency, NetworkModel};
use proptest::prelude::*;

/// An arbitrary message trace: (from, to) pairs plus a request/send flag.
fn messages(n: u32) -> impl Strategy<Value = Vec<(u32, u32, bool)>> {
    proptest::collection::vec((0..n, 0..n, any::<bool>()), 1..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zero-loss profiles deliver every message to an up node — the
    /// network is equivalent to calling the recipient directly, for any
    /// interleaving of sends and requests over any latency range that
    /// fits the timeout.
    #[test]
    fn zero_loss_is_direct_delivery(
        n in 1u32..32,
        seed in any::<u64>(),
        min_ms in 0u64..50,
        spread in 0u64..50,
        msgs in messages(32),
    ) {
        let profile = FaultProfile {
            latency: LinkLatency { min_ms, max_ms: min_ms + spread },
            timeout_ms: 2 * (min_ms + spread),
            ..FaultProfile::none()
        };
        let mut net = NetworkModel::new(n as usize, profile, seed);
        for &(from, to, req) in &msgs {
            let (from, to) = (from % n, to % n);
            let outcome = if req { net.request(from, to) } else { net.send(from, to) };
            prop_assert_eq!(outcome, Delivery::Delivered);
        }
        prop_assert_eq!(net.stats.delivered, net.stats.attempts);
        prop_assert_eq!(net.stats.dropped + net.stats.timed_out + net.stats.to_down, 0);
    }

    /// Messages to a crashed node are never delivered — under any
    /// profile, however lossy — and delivery resumes after recovery.
    #[test]
    fn crashed_nodes_are_black_holes(
        n in 2u32..32,
        seed in any::<u64>(),
        drop_prob in 0.0f64..1.0,
        victim in 0u32..32,
        msgs in messages(32),
    ) {
        let victim = victim % n;
        let mut net = NetworkModel::new(n as usize, FaultProfile::lossy(drop_prob), seed);
        net.force_crash(victim);
        for &(from, to, req) in &msgs {
            let (from, to) = (from % n, to % n);
            let outcome = if req { net.request(from, to) } else { net.send(from, to) };
            if to == victim {
                prop_assert_eq!(outcome, Delivery::TargetDown);
            } else {
                prop_assert_ne!(outcome, Delivery::TargetDown);
            }
        }
        net.force_recover(victim);
        // A zero-loss twin shows recovery restores delivery; here we only
        // know TargetDown is gone (drops may still occur).
        prop_assert_ne!(net.request(0, victim), Delivery::TargetDown);
    }

    /// The whole outcome sequence, liveness evolution included, is a
    /// pure function of (profile, seed): replaying the same trace gives
    /// identical deliveries and identical stats.
    #[test]
    fn outcomes_are_a_pure_function_of_the_seed(
        n in 2u32..24,
        seed in any::<u64>(),
        drop_prob in 0.0f64..0.5,
        crash_rate in 0.0f64..0.1,
        msgs in messages(24),
        rounds in 1u64..20,
    ) {
        let profile = FaultProfile::faulty(drop_prob, crash_rate, 0.3);
        let run = |profile: FaultProfile| {
            let mut net = NetworkModel::new(n as usize, profile, seed);
            let mut outcomes = Vec::new();
            for round in 0..rounds {
                net.begin_round(round);
                for &(from, to, req) in &msgs {
                    let (from, to) = (from % n, to % n);
                    outcomes.push(if req { net.request(from, to) } else { net.send(from, to) });
                }
            }
            (outcomes, net.stats)
        };
        prop_assert_eq!(run(profile.clone()), run(profile));
    }

    /// Liveness accounting balances: up_count equals the initial
    /// population minus net crashes, after any schedule and hazard mix.
    #[test]
    fn crash_recovery_accounting_balances(
        n in 1usize..40,
        seed in any::<u64>(),
        crash_rate in 0.0f64..0.3,
        recovery_rate in 0.0f64..0.5,
        rounds in 0u64..50,
    ) {
        let profile = FaultProfile::faulty(0.0, crash_rate, recovery_rate);
        let mut net = NetworkModel::new(n, profile, seed);
        for round in 0..rounds {
            net.begin_round(round);
        }
        let expected = n as u64 - (net.stats.crashes - net.stats.recoveries);
        prop_assert_eq!(net.up_count() as u64, expected);
    }
}
