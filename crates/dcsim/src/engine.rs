//! Cycle-driven simulation engine.
//!
//! Mirrors PeerSim's `CDSimulator`: time advances in discrete rounds; each
//! round the engine (1) steps the workload (every VM gets a fresh demand
//! observation), (2) applies the network model's crash/recovery events,
//! (3) hands control to the consolidation policy, and (4) notifies
//! observers, which sample metrics. All the paper's experiments run on
//! this engine with 720 rounds of 2 simulated minutes.

use crate::net::NetworkModel;
use crate::rng::{stream_rng, SimRng, Stream};
use glap_cluster::{DataCenter, DemandSource};
use glap_profile::Profiler;
use glap_snapshot::{Reader, SnapshotError, Writer};
use glap_telemetry::{Phase, Tracer};

/// Everything a policy sees during one round, in one place.
///
/// This replaces the older `round(round, dc, rng)` signature plus the
/// `note_churn` side-channel: churn arrives as data with the round it
/// belongs to, and the network model is available so protocols can route
/// their gossip through the message bus instead of calling each other
/// directly.
pub struct RoundCtx<'a> {
    /// The round being simulated (demands already stepped).
    pub round: u64,
    /// The world.
    pub dc: &'a mut DataCenter,
    /// The policy-stream RNG.
    pub rng: &'a mut SimRng,
    /// VM arrival/departure events that happened this round (0 outside
    /// churn scenarios).
    pub churn_events: usize,
    /// The message bus the policy's protocols gossip over.
    pub net: &'a mut NetworkModel,
    /// Event tracer for protocol-level telemetry ([`Tracer::off`] unless
    /// the run was started via [`run_simulation_traced`]).
    pub tracer: &'a Tracer,
}

/// A consolidation algorithm under test (GLAP or a baseline).
///
/// The policy owns all its protocol state (overlays, Q-tables, thresholds,
/// history windows, …); the engine owns the world state, the clock and
/// the network.
pub trait ConsolidationPolicy {
    /// Short machine-readable name, used in result files.
    fn name(&self) -> &'static str;

    /// Called once before the first round, after initial placement.
    fn init(&mut self, dc: &mut DataCenter, rng: &mut SimRng) {
        let _ = (dc, rng);
    }

    /// One simulated round.
    fn round(&mut self, ctx: &mut RoundCtx<'_>);

    /// Serializes the policy's internal state (Q-tables, overlay views,
    /// history windows, …) into a checkpoint record. Stateless policies
    /// keep the default, which writes nothing.
    fn save_state(&self, w: &mut Writer) {
        let _ = w;
    }

    /// Restores state previously written by
    /// [`ConsolidationPolicy::save_state`] into a freshly constructed
    /// policy. Must consume exactly the bytes `save_state` wrote and fail
    /// with a typed error — never a partial load — on malformed input.
    fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Ok(())
    }
}

/// A metrics consumer notified at the end of every round.
pub trait Observer {
    /// Called after the policy's round completed. `dc` is mutable so the
    /// observer can drain per-round migration records.
    fn on_round_end(&mut self, round: u64, dc: &mut DataCenter);
}

/// Runs `rounds` simulated rounds of `policy` over `dc` driven by `trace`,
/// on an ideal (fault-free) network.
///
/// Randomness for the policy comes from the master seed's `Policy` stream,
/// so two policies run from the same seed see identical traces and initial
/// placements but independent protocol randomness.
pub fn run_simulation<D, P>(
    dc: &mut DataCenter,
    trace: &mut D,
    policy: &mut P,
    observers: &mut [&mut dyn Observer],
    rounds: u64,
    master_seed: u64,
) where
    D: DemandSource + ?Sized,
    P: ConsolidationPolicy + ?Sized,
{
    let mut net = NetworkModel::ideal(dc.n_pms());
    run_simulation_with_net(dc, trace, policy, observers, rounds, master_seed, &mut net);
}

/// Like [`run_simulation`], but over a caller-provided [`NetworkModel`] so
/// fault profiles can be injected. With an ideal network the run is
/// byte-identical to [`run_simulation`]: the ideal message path consumes
/// no randomness and refuses nothing.
pub fn run_simulation_with_net<D, P>(
    dc: &mut DataCenter,
    trace: &mut D,
    policy: &mut P,
    observers: &mut [&mut dyn Observer],
    rounds: u64,
    master_seed: u64,
    net: &mut NetworkModel,
) where
    D: DemandSource + ?Sized,
    P: ConsolidationPolicy + ?Sized,
{
    let tracer = Tracer::off();
    run_simulation_traced(
        dc,
        trace,
        policy,
        observers,
        rounds,
        master_seed,
        net,
        &tracer,
    );
}

/// Like [`run_simulation_with_net`], but with an event tracer attached:
/// the engine stamps rounds, wires the tracer into the network model and
/// the data center (so message fates, crash/recover and the migration /
/// sleep / wake lifecycle are traced for *every* policy), and snapshots
/// counters at each round boundary. With [`Tracer::off`] this is exactly
/// [`run_simulation_with_net`] — tracing never touches any RNG stream.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_traced<D, P>(
    dc: &mut DataCenter,
    trace: &mut D,
    policy: &mut P,
    observers: &mut [&mut dyn Observer],
    rounds: u64,
    master_seed: u64,
    net: &mut NetworkModel,
    tracer: &Tracer,
) where
    D: DemandSource + ?Sized,
    P: ConsolidationPolicy + ?Sized,
{
    run_simulation_profiled(
        dc,
        trace,
        policy,
        observers,
        rounds,
        master_seed,
        net,
        tracer,
        &Profiler::off(),
    );
}

/// Like [`run_simulation_traced`], but with a wall-clock [`Profiler`]
/// attached: each round is a `sim_round` span with `workload_step`,
/// `net_begin`, `policy_round` and `observers` children (plus
/// per-request `net_request` samples recorded by the network model).
/// Profiling is observational only — it reads no RNG and emits no
/// telemetry — so results are byte-identical with it on or off.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_profiled<D, P>(
    dc: &mut DataCenter,
    trace: &mut D,
    policy: &mut P,
    observers: &mut [&mut dyn Observer],
    rounds: u64,
    master_seed: u64,
    net: &mut NetworkModel,
    tracer: &Tracer,
    profiler: &Profiler,
) where
    D: DemandSource + ?Sized,
    P: ConsolidationPolicy + ?Sized,
{
    let mut rng = stream_rng(master_seed, Stream::Policy);
    run_simulation_resumable(
        dc,
        trace,
        policy,
        observers,
        rounds,
        net,
        tracer,
        profiler,
        &mut rng,
        true,
        0,
        &mut |_| Ok(()),
    )
    .expect("no checkpoint hook attached, the run cannot fail");
}

/// Borrowed view of the complete mid-run simulation state, handed to the
/// checkpoint callback of [`run_simulation_resumable`] after a round
/// fully completed (observers notified, counters snapshotted). Everything
/// a resumed run needs is reachable from here; the callback decides the
/// container format and storage.
pub struct CheckpointArgs<'a> {
    /// Rounds completed so far (equals `dc.round()`): a resumed run has
    /// `total_rounds - round` rounds left to simulate.
    pub round: u64,
    /// The world, mid-run.
    pub dc: &'a DataCenter,
    /// The network model, including its fault-stream RNG cursor.
    pub net: &'a NetworkModel,
    /// The policy-stream RNG cursor.
    pub rng: &'a SimRng,
    /// The tracer whose counters/round/seq belong in the checkpoint.
    pub tracer: &'a Tracer,
    /// The policy's serialized internal state
    /// ([`ConsolidationPolicy::save_state`]).
    pub policy_state: &'a [u8],
}

/// The resumable core every `run_simulation*` entry point delegates to.
///
/// Compared to [`run_simulation_traced`] it takes the policy-stream RNG
/// explicitly (a resumed run restores its exact cursor instead of
/// re-deriving it from the master seed), lets the caller skip
/// [`ConsolidationPolicy::init`] (`call_init = false` when the policy's
/// state came from a checkpoint), and invokes `checkpoint` after every
/// round where `dc.round().is_multiple_of(checkpoint_every)`. The cadence is keyed
/// on the *absolute* round counter, so an interrupted run and its resumed
/// continuation checkpoint at identical rounds — a prerequisite for the
/// byte-identity contract (the checkpoint event/counters are part of the
/// traced stream).
///
/// With `checkpoint_every = 0` the callback never runs and this is
/// exactly the historical engine loop.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_resumable<D, P>(
    dc: &mut DataCenter,
    trace: &mut D,
    policy: &mut P,
    observers: &mut [&mut dyn Observer],
    rounds: u64,
    net: &mut NetworkModel,
    tracer: &Tracer,
    profiler: &Profiler,
    rng: &mut SimRng,
    call_init: bool,
    checkpoint_every: u64,
    checkpoint: &mut dyn FnMut(&CheckpointArgs<'_>) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError>
where
    D: DemandSource + ?Sized,
    P: ConsolidationPolicy + ?Sized,
{
    net.set_tracer(tracer.clone());
    net.set_profiler(profiler.clone());
    dc.set_tracer(tracer.clone());
    tracer.set_phase(Phase::Run);
    if call_init {
        policy.init(dc, rng);
    }
    for _ in 0..rounds {
        let _round_span = profiler.span("sim_round");
        let round = dc.round();
        tracer.begin_round(round);
        {
            let _s = profiler.span("workload_step");
            dc.step(trace);
        }
        {
            let _s = profiler.span("net_begin");
            net.begin_round(round);
        }
        {
            let _s = profiler.span("policy_round");
            let mut ctx = RoundCtx {
                round,
                dc: &mut *dc,
                rng: &mut *rng,
                churn_events: 0,
                net: &mut *net,
                tracer,
            };
            policy.round(&mut ctx);
        }
        // Debug builds audit the flat cluster store after every policy
        // round: placement/back-pointer consistency plus a from-scratch
        // recompute of the incrementally maintained demand aggregates.
        // Release builds skip it (it is a full O(VMs) sweep per round).
        #[cfg(debug_assertions)]
        if let Err(e) = dc.check_invariants() {
            panic!("cluster invariants broken after round {round}: {e}");
        }
        {
            let _s = profiler.span("observers");
            for obs in observers.iter_mut() {
                obs.on_round_end(round, dc);
            }
        }
        tracer.end_round();
        if checkpoint_every > 0 && dc.round().is_multiple_of(checkpoint_every) {
            let _s = profiler.span("checkpoint");
            let mut policy_state = Writer::new();
            policy.save_state(&mut policy_state);
            checkpoint(&CheckpointArgs {
                round: dc.round(),
                dc,
                net,
                rng,
                tracer,
                policy_state: policy_state.bytes(),
            })?;
        }
    }
    tracer.flush();
    Ok(())
}

/// A policy that does nothing — the "no consolidation" control.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopPolicy;

impl ConsolidationPolicy for NoopPolicy {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn round(&mut self, _ctx: &mut RoundCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::FaultProfile;
    use glap_cluster::{DataCenterConfig, Resources, VmId, VmSpec};

    struct CountingObserver {
        rounds_seen: Vec<u64>,
        migrations: usize,
    }

    impl Observer for CountingObserver {
        fn on_round_end(&mut self, round: u64, dc: &mut DataCenter) {
            self.rounds_seen.push(round);
            self.migrations += dc.take_migrations().len();
        }
    }

    struct MigrateOncePolicy {
        done: bool,
    }

    impl ConsolidationPolicy for MigrateOncePolicy {
        fn name(&self) -> &'static str {
            "migrate-once"
        }

        fn round(&mut self, ctx: &mut RoundCtx<'_>) {
            let dc = &mut *ctx.dc;
            if !self.done {
                let vm = VmId(0);
                let to = dc
                    .active_pm_ids()
                    .find(|&p| Some(p) != dc.vm(vm).host)
                    .expect("a second PM");
                dc.migrate(vm, to).unwrap();
                self.done = true;
            }
        }
    }

    fn dc_with_vms(n_pms: usize, n_vms: usize) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_vms {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        let mut rng = stream_rng(1, Stream::Placement);
        dc.random_placement(&mut rng);
        dc
    }

    #[test]
    fn run_advances_rounds_and_notifies_observers() {
        let mut dc = dc_with_vms(3, 6);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.4);
        let mut policy = NoopPolicy;
        let mut obs = CountingObserver {
            rounds_seen: Vec::new(),
            migrations: 0,
        };
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [&mut obs], 5, 99);
        assert_eq!(dc.round(), 5);
        assert_eq!(obs.rounds_seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(obs.migrations, 0);
    }

    #[test]
    fn policy_migrations_are_visible_to_observers() {
        let mut dc = dc_with_vms(3, 6);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.4);
        let mut policy = MigrateOncePolicy { done: false };
        let mut obs = CountingObserver {
            rounds_seen: Vec::new(),
            migrations: 0,
        };
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [&mut obs], 3, 99);
        assert_eq!(obs.migrations, 1);
    }

    #[test]
    fn identical_seed_identical_world() {
        let run = |seed: u64| {
            let mut dc = dc_with_vms(4, 8);
            let mut trace =
                |vm: VmId, r: u64| Resources::splat(((vm.0 as f64 + r as f64) % 10.0) / 10.0);
            let mut policy = NoopPolicy;
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, seed);
            dc.pms().map(|p| p.demand().cpu()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn explicit_ideal_net_matches_default_path() {
        let run = |explicit: bool| {
            let mut dc = dc_with_vms(4, 8);
            let mut trace =
                |vm: VmId, r: u64| Resources::splat(((vm.0 as f64 + r as f64) % 7.0) / 7.0);
            let mut policy = MigrateOncePolicy { done: false };
            if explicit {
                let mut net = NetworkModel::new(4, FaultProfile::none(), 123);
                run_simulation_with_net(&mut dc, &mut trace, &mut policy, &mut [], 10, 5, &mut net);
            } else {
                run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, 5);
            }
            dc.vms().map(|v| v.host).collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    /// A policy that consumes policy-stream randomness every round and
    /// carries internal state, so resume bugs in any of the four state
    /// carriers (world, network, RNG cursor, policy) surface as diffs.
    struct JigglePolicy {
        moves: u64,
    }

    impl ConsolidationPolicy for JigglePolicy {
        fn name(&self) -> &'static str {
            "jiggle"
        }

        fn round(&mut self, ctx: &mut RoundCtx<'_>) {
            use rand::Rng;
            let vm = VmId(ctx.rng.gen_range(0..ctx.dc.n_vms() as u32));
            if ctx.net.request(0, 1).is_ok() {
                let from = ctx.dc.vm(vm).host;
                let to = ctx.dc.active_pm_ids().find(|&p| Some(p) != from);
                if let Some(to) = to {
                    if ctx.dc.migrate(vm, to).is_ok() {
                        self.moves += 1;
                    }
                }
            }
        }

        fn save_state(&self, w: &mut Writer) {
            w.put_u64(self.moves);
        }

        fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
            self.moves = r.get_u64()?;
            Ok(())
        }
    }

    fn world_fingerprint(dc: &DataCenter) -> (u64, Vec<Option<glap_cluster::PmId>>, Vec<f64>) {
        (
            dc.round(),
            dc.vms().map(|v| v.host).collect(),
            dc.pms().map(|p| p.demand().cpu()).collect(),
        )
    }

    #[test]
    fn interrupted_resume_matches_uninterrupted_run() {
        use glap_snapshot::{Checkpointable, Snapshot, SnapshotBuilder};

        let trace = |vm: VmId, r: u64| Resources::splat(((vm.0 as f64 + r as f64) % 9.0) / 10.0);
        let profile = FaultProfile::faulty(0.1, 0.01, 0.3);

        // Reference: 12 uninterrupted rounds, checkpointing (to memory)
        // every 5 so the checkpoint cadence itself is identical.
        let mut snapshots: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut dc = dc_with_vms(4, 8);
        let mut net = NetworkModel::new(4, profile.clone(), 7);
        let mut policy = JigglePolicy { moves: 0 };
        let mut rng = stream_rng(7, Stream::Policy);
        let mut trace_fn = trace;
        run_simulation_resumable(
            &mut dc,
            &mut trace_fn,
            &mut policy,
            &mut [],
            12,
            &mut net,
            &Tracer::off(),
            &Profiler::off(),
            &mut rng,
            true,
            5,
            &mut |args| {
                let mut b = SnapshotBuilder::new();
                let mut w = Writer::new();
                args.dc.save(&mut w);
                b.section("dc", w);
                let mut w = Writer::new();
                args.net.save(&mut w);
                b.section("net", w);
                let mut w = Writer::new();
                crate::rng::save_rng(args.rng, &mut w);
                b.section("rng", w);
                let mut w = Writer::new();
                w.put_bytes(args.policy_state);
                b.section("policy", w);
                snapshots.push((args.round, b.encode()));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(
            snapshots.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![5, 10],
            "cadence is keyed on the absolute round counter"
        );
        let reference = world_fingerprint(&dc);
        let reference_moves = policy.moves;
        let reference_stats = net.stats;

        // Resume from the round-5 checkpoint into freshly built state and
        // run the remaining 7 rounds.
        let snap = Snapshot::decode(&snapshots[0].1).unwrap();
        let mut dc2 = dc_with_vms(4, 8);
        dc2.restore(&mut snap.section("dc").unwrap()).unwrap();
        let mut net2 = NetworkModel::new(4, profile, 999);
        net2.restore(&mut snap.section("net").unwrap()).unwrap();
        let mut rng2 = crate::rng::restore_rng(&mut snap.section("rng").unwrap()).unwrap();
        let mut policy2 = JigglePolicy { moves: 0 };
        let policy_bytes = snap.section("policy").unwrap().get_bytes().unwrap();
        policy2
            .restore_state(&mut Reader::new(&policy_bytes))
            .unwrap();
        assert_eq!(dc2.round(), 5);

        let mut trace_fn = trace;
        run_simulation_resumable(
            &mut dc2,
            &mut trace_fn,
            &mut policy2,
            &mut [],
            7,
            &mut net2,
            &Tracer::off(),
            &Profiler::off(),
            &mut rng2,
            false,
            5,
            &mut |args| {
                // The resumed run's round-10 checkpoint must be byte-equal
                // to the uninterrupted run's.
                assert_eq!(args.round, 10);
                let mut b = SnapshotBuilder::new();
                let mut w = Writer::new();
                args.dc.save(&mut w);
                b.section("dc", w);
                let mut w = Writer::new();
                args.net.save(&mut w);
                b.section("net", w);
                let mut w = Writer::new();
                crate::rng::save_rng(args.rng, &mut w);
                b.section("rng", w);
                let mut w = Writer::new();
                w.put_bytes(args.policy_state);
                b.section("policy", w);
                assert_eq!(b.encode(), snapshots[1].1);
                Ok(())
            },
        )
        .unwrap();

        assert_eq!(world_fingerprint(&dc2), reference);
        assert_eq!(policy2.moves, reference_moves);
        assert_eq!(net2.stats, reference_stats);
    }

    #[test]
    fn checkpoint_errors_abort_the_run() {
        let mut dc = dc_with_vms(3, 3);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.2);
        let mut policy = NoopPolicy;
        let mut net = NetworkModel::ideal(3);
        let mut rng = stream_rng(1, Stream::Policy);
        let err = run_simulation_resumable(
            &mut dc,
            &mut trace,
            &mut policy,
            &mut [],
            10,
            &mut net,
            &Tracer::off(),
            &Profiler::off(),
            &mut rng,
            true,
            4,
            &mut |_| Err(SnapshotError::Corrupt("disk full".into())),
        );
        assert!(err.is_err());
        assert_eq!(dc.round(), 4, "the run stopped at the failing checkpoint");
    }

    #[test]
    fn ctx_exposes_net_and_round() {
        struct Probe {
            rounds: Vec<u64>,
            net_ok: bool,
        }
        impl ConsolidationPolicy for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn round(&mut self, ctx: &mut RoundCtx<'_>) {
                self.rounds.push(ctx.round);
                self.net_ok &= ctx.net.request(0, 1).is_ok();
                assert_eq!(ctx.churn_events, 0);
            }
        }
        let mut dc = dc_with_vms(3, 3);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.2);
        let mut probe = Probe {
            rounds: Vec::new(),
            net_ok: true,
        };
        run_simulation(&mut dc, &mut trace, &mut probe, &mut [], 4, 1);
        assert_eq!(probe.rounds, vec![0, 1, 2, 3]);
        assert!(probe.net_ok);
    }
}
