//! Cycle-driven simulation engine.
//!
//! Mirrors PeerSim's `CDSimulator`: time advances in discrete rounds; each
//! round the engine (1) steps the workload (every VM gets a fresh demand
//! observation), (2) applies the network model's crash/recovery events,
//! (3) hands control to the consolidation policy, and (4) notifies
//! observers, which sample metrics. All the paper's experiments run on
//! this engine with 720 rounds of 2 simulated minutes.

use crate::net::NetworkModel;
use crate::rng::{stream_rng, SimRng, Stream};
use glap_cluster::{DataCenter, DemandSource};
use glap_telemetry::{Phase, Tracer};

/// Everything a policy sees during one round, in one place.
///
/// This replaces the older `round(round, dc, rng)` signature plus the
/// `note_churn` side-channel: churn arrives as data with the round it
/// belongs to, and the network model is available so protocols can route
/// their gossip through the message bus instead of calling each other
/// directly.
pub struct RoundCtx<'a> {
    /// The round being simulated (demands already stepped).
    pub round: u64,
    /// The world.
    pub dc: &'a mut DataCenter,
    /// The policy-stream RNG.
    pub rng: &'a mut SimRng,
    /// VM arrival/departure events that happened this round (0 outside
    /// churn scenarios).
    pub churn_events: usize,
    /// The message bus the policy's protocols gossip over.
    pub net: &'a mut NetworkModel,
    /// Event tracer for protocol-level telemetry ([`Tracer::off`] unless
    /// the run was started via [`run_simulation_traced`]).
    pub tracer: &'a Tracer,
}

/// A consolidation algorithm under test (GLAP or a baseline).
///
/// The policy owns all its protocol state (overlays, Q-tables, thresholds,
/// history windows, …); the engine owns the world state, the clock and
/// the network.
pub trait ConsolidationPolicy {
    /// Short machine-readable name, used in result files.
    fn name(&self) -> &'static str;

    /// Called once before the first round, after initial placement.
    fn init(&mut self, dc: &mut DataCenter, rng: &mut SimRng) {
        let _ = (dc, rng);
    }

    /// One simulated round.
    fn round(&mut self, ctx: &mut RoundCtx<'_>);
}

/// A metrics consumer notified at the end of every round.
pub trait Observer {
    /// Called after the policy's round completed. `dc` is mutable so the
    /// observer can drain per-round migration records.
    fn on_round_end(&mut self, round: u64, dc: &mut DataCenter);
}

/// Runs `rounds` simulated rounds of `policy` over `dc` driven by `trace`,
/// on an ideal (fault-free) network.
///
/// Randomness for the policy comes from the master seed's `Policy` stream,
/// so two policies run from the same seed see identical traces and initial
/// placements but independent protocol randomness.
pub fn run_simulation<D, P>(
    dc: &mut DataCenter,
    trace: &mut D,
    policy: &mut P,
    observers: &mut [&mut dyn Observer],
    rounds: u64,
    master_seed: u64,
) where
    D: DemandSource + ?Sized,
    P: ConsolidationPolicy + ?Sized,
{
    let mut net = NetworkModel::ideal(dc.n_pms());
    run_simulation_with_net(dc, trace, policy, observers, rounds, master_seed, &mut net);
}

/// Like [`run_simulation`], but over a caller-provided [`NetworkModel`] so
/// fault profiles can be injected. With an ideal network the run is
/// byte-identical to [`run_simulation`]: the ideal message path consumes
/// no randomness and refuses nothing.
pub fn run_simulation_with_net<D, P>(
    dc: &mut DataCenter,
    trace: &mut D,
    policy: &mut P,
    observers: &mut [&mut dyn Observer],
    rounds: u64,
    master_seed: u64,
    net: &mut NetworkModel,
) where
    D: DemandSource + ?Sized,
    P: ConsolidationPolicy + ?Sized,
{
    let tracer = Tracer::off();
    run_simulation_traced(
        dc,
        trace,
        policy,
        observers,
        rounds,
        master_seed,
        net,
        &tracer,
    );
}

/// Like [`run_simulation_with_net`], but with an event tracer attached:
/// the engine stamps rounds, wires the tracer into the network model and
/// the data center (so message fates, crash/recover and the migration /
/// sleep / wake lifecycle are traced for *every* policy), and snapshots
/// counters at each round boundary. With [`Tracer::off`] this is exactly
/// [`run_simulation_with_net`] — tracing never touches any RNG stream.
#[allow(clippy::too_many_arguments)]
pub fn run_simulation_traced<D, P>(
    dc: &mut DataCenter,
    trace: &mut D,
    policy: &mut P,
    observers: &mut [&mut dyn Observer],
    rounds: u64,
    master_seed: u64,
    net: &mut NetworkModel,
    tracer: &Tracer,
) where
    D: DemandSource + ?Sized,
    P: ConsolidationPolicy + ?Sized,
{
    let mut rng = stream_rng(master_seed, Stream::Policy);
    net.set_tracer(tracer.clone());
    dc.set_tracer(tracer.clone());
    tracer.set_phase(Phase::Run);
    policy.init(dc, &mut rng);
    for _ in 0..rounds {
        let round = dc.round();
        tracer.begin_round(round);
        dc.step(trace);
        net.begin_round(round);
        let mut ctx = RoundCtx {
            round,
            dc,
            rng: &mut rng,
            churn_events: 0,
            net,
            tracer,
        };
        policy.round(&mut ctx);
        debug_assert!(dc.check_invariants().is_ok());
        for obs in observers.iter_mut() {
            obs.on_round_end(round, dc);
        }
        tracer.end_round();
    }
    tracer.flush();
}

/// A policy that does nothing — the "no consolidation" control.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopPolicy;

impl ConsolidationPolicy for NoopPolicy {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn round(&mut self, _ctx: &mut RoundCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::FaultProfile;
    use glap_cluster::{DataCenterConfig, Resources, VmId, VmSpec};

    struct CountingObserver {
        rounds_seen: Vec<u64>,
        migrations: usize,
    }

    impl Observer for CountingObserver {
        fn on_round_end(&mut self, round: u64, dc: &mut DataCenter) {
            self.rounds_seen.push(round);
            self.migrations += dc.take_migrations().len();
        }
    }

    struct MigrateOncePolicy {
        done: bool,
    }

    impl ConsolidationPolicy for MigrateOncePolicy {
        fn name(&self) -> &'static str {
            "migrate-once"
        }

        fn round(&mut self, ctx: &mut RoundCtx<'_>) {
            let dc = &mut *ctx.dc;
            if !self.done {
                let vm = VmId(0);
                let to = dc
                    .active_pm_ids()
                    .find(|&p| Some(p) != dc.vm(vm).host)
                    .expect("a second PM");
                dc.migrate(vm, to).unwrap();
                self.done = true;
            }
        }
    }

    fn dc_with_vms(n_pms: usize, n_vms: usize) -> DataCenter {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_vms {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        let mut rng = stream_rng(1, Stream::Placement);
        dc.random_placement(&mut rng);
        dc
    }

    #[test]
    fn run_advances_rounds_and_notifies_observers() {
        let mut dc = dc_with_vms(3, 6);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.4);
        let mut policy = NoopPolicy;
        let mut obs = CountingObserver {
            rounds_seen: Vec::new(),
            migrations: 0,
        };
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [&mut obs], 5, 99);
        assert_eq!(dc.round(), 5);
        assert_eq!(obs.rounds_seen, vec![0, 1, 2, 3, 4]);
        assert_eq!(obs.migrations, 0);
    }

    #[test]
    fn policy_migrations_are_visible_to_observers() {
        let mut dc = dc_with_vms(3, 6);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.4);
        let mut policy = MigrateOncePolicy { done: false };
        let mut obs = CountingObserver {
            rounds_seen: Vec::new(),
            migrations: 0,
        };
        run_simulation(&mut dc, &mut trace, &mut policy, &mut [&mut obs], 3, 99);
        assert_eq!(obs.migrations, 1);
    }

    #[test]
    fn identical_seed_identical_world() {
        let run = |seed: u64| {
            let mut dc = dc_with_vms(4, 8);
            let mut trace =
                |vm: VmId, r: u64| Resources::splat(((vm.0 as f64 + r as f64) % 10.0) / 10.0);
            let mut policy = NoopPolicy;
            run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, seed);
            dc.pms().map(|p| p.demand().cpu()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn explicit_ideal_net_matches_default_path() {
        let run = |explicit: bool| {
            let mut dc = dc_with_vms(4, 8);
            let mut trace =
                |vm: VmId, r: u64| Resources::splat(((vm.0 as f64 + r as f64) % 7.0) / 7.0);
            let mut policy = MigrateOncePolicy { done: false };
            if explicit {
                let mut net = NetworkModel::new(4, FaultProfile::none(), 123);
                run_simulation_with_net(&mut dc, &mut trace, &mut policy, &mut [], 10, 5, &mut net);
            } else {
                run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, 5);
            }
            dc.vms().map(|v| v.host).collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn ctx_exposes_net_and_round() {
        struct Probe {
            rounds: Vec<u64>,
            net_ok: bool,
        }
        impl ConsolidationPolicy for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn round(&mut self, ctx: &mut RoundCtx<'_>) {
                self.rounds.push(ctx.round);
                self.net_ok &= ctx.net.request(0, 1).is_ok();
                assert_eq!(ctx.churn_events, 0);
            }
        }
        let mut dc = dc_with_vms(3, 3);
        let mut trace = |_: VmId, _: u64| Resources::splat(0.2);
        let mut probe = Probe {
            rounds: Vec::new(),
            net_ok: true,
        };
        run_simulation(&mut dc, &mut trace, &mut probe, &mut [], 4, 1);
        assert_eq!(probe.rounds, vec![0, 1, 2, 3]);
        assert!(probe.net_ok);
    }
}
