//! Event-driven simulation engine.
//!
//! The counterpart of PeerSim's `EDSimulator`: a future-event list
//! (binary heap keyed on delivery time, FIFO tie-break), per-message random
//! link latency, and node timers. The paper's experiments are round-based,
//! but gossip protocols are specified asynchronously; this engine lets the
//! test suite validate that GLAP's aggregation behaves the same when
//! message delivery is asynchronous and jittered.

use crate::rng::SimRng;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Node identifier within the event-driven engine.
pub type EdNodeId = u32;

/// Something delivered to a node.
#[derive(Debug, Clone, PartialEq)]
pub enum EdEvent<M> {
    /// A message from another node.
    Message {
        /// The sender.
        from: EdNodeId,
        /// The payload.
        payload: M,
    },
    /// A timer the node armed earlier.
    Timer {
        /// The tag passed to [`EdContext::set_timer`].
        tag: u64,
    },
}

/// Per-delivery side-effect collector handed to node callbacks.
pub struct EdContext<M> {
    /// Current simulated time (engine ticks).
    pub now: u64,
    /// The node the event is being delivered to.
    pub self_id: EdNodeId,
    sends: Vec<(EdNodeId, M)>,
    timers: Vec<(u64, u64)>,
}

impl<M> EdContext<M> {
    /// Sends `payload` to `to`; the engine assigns a random link latency.
    pub fn send(&mut self, to: EdNodeId, payload: M) {
        self.sends.push((to, payload));
    }

    /// Arms a timer firing `delay` ticks from now, delivered as
    /// [`EdEvent::Timer`] with the given tag.
    pub fn set_timer(&mut self, delay: u64, tag: u64) {
        self.timers.push((delay, tag));
    }
}

/// Behaviour of one node under the event-driven engine.
pub trait EdNode<M> {
    /// Handles a delivered event; outgoing messages and timers go through
    /// the context.
    fn on_event(&mut self, ev: EdEvent<M>, ctx: &mut EdContext<M>);
}

/// Uniform random link-latency model in `[min_ticks, max_ticks]`.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Minimum one-way latency in ticks.
    pub min_ticks: u64,
    /// Maximum one-way latency in ticks (inclusive).
    pub max_ticks: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            min_ticks: 1,
            max_ticks: 10,
        }
    }
}

impl LatencyModel {
    fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.min_ticks >= self.max_ticks {
            self.min_ticks
        } else {
            rng.gen_range(self.min_ticks..=self.max_ticks)
        }
    }
}

struct Scheduled<M> {
    time: u64,
    seq: u64,
    target: EdNodeId,
    event: EdEvent<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// The event-driven engine: owns the nodes and the future-event list.
pub struct EventEngine<M, N: EdNode<M>> {
    nodes: Vec<N>,
    queue: BinaryHeap<Scheduled<M>>,
    now: u64,
    seq: u64,
    latency: LatencyModel,
    rng: SimRng,
    delivered: u64,
}

impl<M, N: EdNode<M>> EventEngine<M, N> {
    /// Creates an engine over the given nodes.
    pub fn new(nodes: Vec<N>, latency: LatencyModel, seed: u64) -> Self {
        EventEngine {
            nodes,
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            latency,
            rng: SimRng::seed_from_u64(seed),
            delivered: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of events delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Immutable access to a node.
    pub fn node(&self, id: EdNodeId) -> &N {
        &self.nodes[id as usize]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Arms an initial timer on `node` at absolute time `at`.
    pub fn schedule_timer(&mut self, node: EdNodeId, at: u64, tag: u64) {
        let seq = self.bump_seq();
        self.queue.push(Scheduled {
            time: at,
            seq,
            target: node,
            event: EdEvent::Timer { tag },
        });
    }

    /// Injects a message from the outside world.
    pub fn inject_message(&mut self, from: EdNodeId, to: EdNodeId, at: u64, payload: M) {
        let seq = self.bump_seq();
        self.queue.push(Scheduled {
            time: at,
            seq,
            target: to,
            event: EdEvent::Message { from, payload },
        });
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Delivers the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.now = ev.time;
        self.delivered += 1;
        let target = ev.target;
        let mut ctx = EdContext {
            now: self.now,
            self_id: target,
            sends: Vec::new(),
            timers: Vec::new(),
        };
        self.nodes[target as usize].on_event(ev.event, &mut ctx);
        for (to, payload) in ctx.sends {
            let lat = self.latency.sample(&mut self.rng);
            let seq = self.bump_seq();
            self.queue.push(Scheduled {
                time: self.now + lat,
                seq,
                target: to,
                event: EdEvent::Message {
                    from: target,
                    payload,
                },
            });
        }
        for (delay, tag) in ctx.timers {
            let seq = self.bump_seq();
            self.queue.push(Scheduled {
                time: self.now + delay,
                seq,
                target,
                event: EdEvent::Timer { tag },
            });
        }
        true
    }

    /// Runs until the clock passes `t_end` or the queue drains. Returns the
    /// number of events delivered.
    pub fn run_until(&mut self, t_end: u64) -> u64 {
        let mut count = 0;
        while let Some(head) = self.queue.peek() {
            if head.time > t_end {
                break;
            }
            self.step();
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Push-pull averaging: the classic gossip aggregation kernel. Each
    /// node holds a value; on its timer it pushes the value to a random
    /// neighbour; the receiver replies; both set value = mean. Values must
    /// converge to the global mean — same math as GLAP's Q-value
    /// aggregation phase (Theorem 1).
    #[derive(Debug)]
    struct AvgNode {
        value: f64,
        peers: Vec<EdNodeId>,
        rng: SimRng,
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Push(f64),
        Reply(f64),
    }

    impl EdNode<Msg> for AvgNode {
        fn on_event(&mut self, ev: EdEvent<Msg>, ctx: &mut EdContext<Msg>) {
            match ev {
                EdEvent::Timer { .. } => {
                    let peer = self.peers[self.rng.gen_range(0..self.peers.len())];
                    ctx.send(peer, Msg::Push(self.value));
                    ctx.set_timer(20, 0);
                }
                EdEvent::Message {
                    from,
                    payload: Msg::Push(v),
                } => {
                    ctx.send(from, Msg::Reply(self.value));
                    self.value = (self.value + v) / 2.0;
                }
                EdEvent::Message {
                    payload: Msg::Reply(v),
                    ..
                } => {
                    self.value = (self.value + v) / 2.0;
                }
            }
        }
    }

    fn build(n: usize) -> EventEngine<Msg, AvgNode> {
        let nodes: Vec<AvgNode> = (0..n)
            .map(|i| AvgNode {
                value: i as f64,
                peers: (0..n as EdNodeId).filter(|&p| p != i as EdNodeId).collect(),
                rng: SimRng::seed_from_u64(1000 + i as u64),
            })
            .collect();
        let mut eng = EventEngine::new(nodes, LatencyModel::default(), 7);
        for i in 0..n as EdNodeId {
            eng.schedule_timer(i, u64::from(i) % 5, 0);
        }
        eng
    }

    #[test]
    fn events_deliver_in_time_order() {
        let mut eng = build(4);
        let mut last = 0;
        for _ in 0..200 {
            assert!(eng.step());
            assert!(eng.now() >= last);
            last = eng.now();
        }
    }

    #[test]
    fn push_pull_averaging_converges_to_mean() {
        let n = 32;
        let mut eng = build(n);
        eng.run_until(8000);
        let mean = (n as f64 - 1.0) / 2.0;
        // Non-atomic push-pull drifts total mass slightly (see the
        // conservation test below), so nodes agree tightly with each
        // other but only approximately with the initial mean.
        let lo = eng
            .nodes()
            .iter()
            .map(|nd| nd.value)
            .fold(f64::INFINITY, f64::min);
        let hi = eng
            .nodes()
            .iter()
            .map(|nd| nd.value)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo < 0.5, "no consensus: spread [{lo}, {hi}]");
        for node in eng.nodes() {
            assert!(
                (node.value - mean).abs() < 1.5,
                "value {} far from mean {mean}",
                node.value
            );
        }
    }

    #[test]
    fn averaging_conserves_mass_approximately() {
        // Push-pull with latency can be momentarily inconsistent, but the
        // protocol above applies symmetric updates, so total mass drifts
        // only through in-flight replies; at quiescence of a bounded run
        // it stays near the initial total.
        let n = 16;
        let mut eng = build(n);
        eng.run_until(2000);
        let total: f64 = eng.nodes().iter().map(|nd| nd.value).sum();
        let expect = (0..n).map(|i| i as f64).sum::<f64>();
        assert!(
            (total - expect).abs() / expect < 0.2,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn run_until_respects_bound() {
        let mut eng = build(8);
        eng.run_until(100);
        assert!(eng.now() <= 100);
    }

    #[test]
    fn empty_queue_stops() {
        let nodes: Vec<AvgNode> = vec![];
        let mut eng: EventEngine<Msg, AvgNode> =
            EventEngine::new(nodes, LatencyModel::default(), 1);
        assert!(!eng.step());
        assert_eq!(eng.run_until(1000), 0);
    }

    #[test]
    fn injected_message_is_delivered() {
        let mut eng = build(2);
        // Drain pre-armed timers first few steps, then inject.
        eng.inject_message(0, 1, 0, Msg::Push(5.0));
        assert!(eng.step());
        assert!(eng.delivered() >= 1);
    }

    #[test]
    fn fifo_tie_break_is_stable() {
        let mut eng = build(3);
        eng.inject_message(0, 1, 50, Msg::Push(1.0));
        eng.inject_message(0, 1, 50, Msg::Push(2.0));
        // Both at t=50: earlier-enqueued must deliver first. We can't see
        // payload order directly from outside, but determinism is covered:
        // two identical engines deliver identical sequences.
        let mut eng2 = build(3);
        eng2.inject_message(0, 1, 50, Msg::Push(1.0));
        eng2.inject_message(0, 1, 50, Msg::Push(2.0));
        eng.run_until(500);
        eng2.run_until(500);
        let v1: Vec<f64> = eng.nodes().iter().map(|n| n.value).collect();
        let v2: Vec<f64> = eng2.nodes().iter().map(|n| n.value).collect();
        assert_eq!(v1, v2);
    }
}
