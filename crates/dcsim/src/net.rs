//! Message-level network model with fault injection.
//!
//! The paper's evaluation assumes a perfectly reliable cluster network;
//! real gossip deployments do not get one. This module provides the
//! deterministic in-simulation message bus the protocols run over:
//! per-message drop probability, uniform per-link latency checked against
//! a request/reply timeout, and PM crash/recovery — both scheduled
//! (deterministic fail-at-round scripts) and stochastic (per-round
//! hazard rates).
//!
//! Two design rules keep the rest of the simulator honest:
//!
//! 1. **The zero-fault path consumes no randomness.** With
//!    [`FaultProfile::none`] (or any profile where [`FaultProfile::is_ideal`]
//!    holds) every message is delivered without touching the network RNG,
//!    so a run over the ideal network is *byte-identical* to the direct
//!    function-call path the experiments used before this layer existed.
//!    `tests/integration_determinism.rs` pins that contract.
//! 2. **Faults draw from their own named stream** ([`Stream::Network`]),
//!    never from the policy stream, so enabling faults perturbs protocol
//!    randomness only through the protocols' *reactions* to failures —
//!    exactly the effect under study.
//!
//! Crash semantics: a crashed PM is unreachable at the gossip layer (it
//! answers no shuffles, aggregation pushes or consolidation exchanges)
//! but its VMs keep running — the model is a management-network partition
//! or agent failure, not a power loss, so `DataCenter` invariants are
//! untouched. Crashes and recoveries are applied at round boundaries in
//! [`NetworkModel::begin_round`], in node-index order, from the network
//! stream.

use crate::rng::{stream_rng, SimRng, Stream};
use glap_profile::Profiler;
use glap_telemetry::{EventKind, MsgOp, Tracer};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use std::time::Instant;

/// Uniform one-way link latency in milliseconds, sampled per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkLatency {
    /// Minimum one-way latency (ms).
    pub min_ms: u64,
    /// Maximum one-way latency (ms, inclusive).
    pub max_ms: u64,
}

impl Default for LinkLatency {
    fn default() -> Self {
        // Intra-datacenter scale: sub-millisecond switching does not
        // matter at 2-minute rounds; what matters is the tail vs. the
        // protocol timeout.
        LinkLatency {
            min_ms: 1,
            max_ms: 20,
        }
    }
}

/// Everything that can go wrong on the wire, in one value.
///
/// A profile is attached to a scenario; [`FaultProfile::none`] reproduces
/// the pre-network direct-call behaviour bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Per-message drop probability (applied independently to requests
    /// and replies).
    pub drop_prob: f64,
    /// One-way link latency distribution.
    pub latency: LinkLatency,
    /// Round-trip budget in milliseconds: a request whose two sampled
    /// one-way latencies sum past this is a non-response (the initiator
    /// gives up; gossip treats it like a dead neighbour).
    pub timeout_ms: u64,
    /// Per-round probability that each up PM crashes.
    pub crash_rate: f64,
    /// Per-round probability that each crashed PM recovers.
    pub recovery_rate: f64,
    /// Scripted crashes: `(round, node)` pairs applied at that round's
    /// start, before stochastic hazards.
    pub crash_schedule: Vec<(u64, u32)>,
    /// Scripted recoveries: `(round, node)` pairs.
    pub recovery_schedule: Vec<(u64, u32)>,
}

impl FaultProfile {
    /// The zero-fault profile: everything delivered, nobody crashes, and
    /// the latency tail cannot reach the timeout. Runs over this profile
    /// are byte-identical to runs without a network model at all.
    pub fn none() -> Self {
        FaultProfile {
            drop_prob: 0.0,
            latency: LinkLatency::default(),
            timeout_ms: 500,
            crash_rate: 0.0,
            recovery_rate: 0.0,
            crash_schedule: Vec::new(),
            recovery_schedule: Vec::new(),
        }
    }

    /// A message-loss-only profile (no crashes).
    pub fn lossy(drop_prob: f64) -> Self {
        FaultProfile {
            drop_prob,
            ..FaultProfile::none()
        }
    }

    /// A profile with both message loss and stochastic crash/recovery.
    pub fn faulty(drop_prob: f64, crash_rate: f64, recovery_rate: f64) -> Self {
        FaultProfile {
            drop_prob,
            crash_rate,
            recovery_rate,
            ..FaultProfile::none()
        }
    }

    /// `true` when no fault of any kind can occur — the profile neither
    /// drops, crashes, nor times out, so the model's fast path applies.
    pub fn is_ideal(&self) -> bool {
        self.drop_prob <= 0.0
            && self.crash_rate <= 0.0
            && self.recovery_rate <= 0.0
            && self.crash_schedule.is_empty()
            && self.recovery_schedule.is_empty()
            && 2 * self.latency.max_ms <= self.timeout_ms
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// Outcome of one message (or request/reply round trip).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered (for a request: the reply arrived within the timeout).
    Delivered,
    /// The message (or its reply) was lost on the wire.
    Dropped,
    /// Both legs were delivered but their combined latency exceeded the
    /// timeout — indistinguishable from a drop to the initiator.
    TimedOut,
    /// The target is crashed; nothing was sent.
    TargetDown,
}

impl Delivery {
    /// `true` when the exchange completed in time.
    #[inline]
    pub fn is_ok(self) -> bool {
        self == Delivery::Delivered
    }
}

/// Running message counters (diagnostics; not part of determinism
/// contracts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages and round trips attempted.
    pub attempts: u64,
    /// Successfully completed.
    pub delivered: u64,
    /// Lost to the drop probability.
    pub dropped: u64,
    /// Completed but past the timeout.
    pub timed_out: u64,
    /// Refused because the target was crashed.
    pub to_down: u64,
    /// Crash events applied (scheduled + stochastic).
    pub crashes: u64,
    /// Recovery events applied.
    pub recoveries: u64,
}

/// The simulated management network of one cluster.
///
/// One instance lives per simulation run; the engine calls
/// [`NetworkModel::begin_round`] before handing control to the policy,
/// and the protocols route their gossip through [`NetworkModel::request`]
/// / [`NetworkModel::send`].
#[derive(Debug, Clone)]
pub struct NetworkModel {
    profile: FaultProfile,
    up: Vec<bool>,
    ideal: bool,
    rng: SimRng,
    /// Message counters, updated on every call.
    pub stats: NetStats,
    /// Event tracer (off by default; never touches the RNG).
    tracer: Tracer,
    /// Wall-clock profiler (off by default; observational only).
    profiler: Profiler,
}

impl NetworkModel {
    /// A fault-free network over `n` nodes — the default the engine
    /// constructs when the caller provides none.
    pub fn ideal(n: usize) -> Self {
        // The RNG is never drawn from on the ideal path; a fixed seed
        // keeps construction itself deterministic and draw-free.
        NetworkModel {
            profile: FaultProfile::none(),
            up: vec![true; n],
            ideal: true,
            rng: SimRng::seed_from_u64(0),
            stats: NetStats::default(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
        }
    }

    /// A network over `n` nodes with the given fault profile, drawing
    /// its randomness from `master_seed`'s [`Stream::Network`].
    pub fn new(n: usize, profile: FaultProfile, master_seed: u64) -> Self {
        let ideal = profile.is_ideal();
        NetworkModel {
            profile,
            up: vec![true; n],
            ideal,
            rng: stream_rng(master_seed, Stream::Network),
            stats: NetStats::default(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
        }
    }

    /// Attaches an event tracer. Tracing reads no randomness, so an
    /// attached tracer never changes delivery outcomes.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a wall-clock profiler: every [`send`](NetworkModel::send)
    /// / [`request`](NetworkModel::request) records its in-model time as
    /// a `net_send` / `net_request` sample under the caller's open span.
    /// Profiling reads no randomness and never changes outcomes.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Number of modelled nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.up.len()
    }

    /// `true` when no fault can ever occur on this network.
    #[inline]
    pub fn is_ideal(&self) -> bool {
        self.ideal
    }

    /// The profile this network runs.
    #[inline]
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Whether `node` is currently reachable (not crashed).
    #[inline]
    pub fn is_up(&self, node: u32) -> bool {
        self.up[node as usize]
    }

    /// Number of currently reachable nodes.
    pub fn up_count(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Crashes `node` immediately (tests and scripted faults).
    pub fn force_crash(&mut self, node: u32) {
        if self.up[node as usize] {
            self.up[node as usize] = false;
            self.stats.crashes += 1;
            self.tracer.emit(EventKind::PmCrashed { pm: node });
        }
    }

    /// Recovers `node` immediately.
    pub fn force_recover(&mut self, node: u32) {
        if !self.up[node as usize] {
            self.up[node as usize] = true;
            self.stats.recoveries += 1;
            self.tracer.emit(EventKind::PmRecovered { pm: node });
        }
    }

    /// Applies this round's crash/recovery events: first the scripted
    /// schedules, then the stochastic hazards in node-index order. On the
    /// ideal network this is a no-op and consumes no randomness.
    pub fn begin_round(&mut self, round: u64) {
        if self.ideal {
            return;
        }
        // Clones keep the borrow checker out of the profile while we
        // mutate liveness; schedules are tiny.
        for &(r, node) in &self.profile.crash_schedule.clone() {
            if r == round {
                self.force_crash(node);
            }
        }
        for &(r, node) in &self.profile.recovery_schedule.clone() {
            if r == round {
                self.force_recover(node);
            }
        }
        if self.profile.crash_rate > 0.0 || self.profile.recovery_rate > 0.0 {
            for i in 0..self.up.len() {
                // One draw per node per round regardless of outcome, so
                // the network stream's draw count is a pure function of
                // (n, rounds) — crashes never shift later samples.
                let roll: f64 = self.rng.gen();
                if self.up[i] {
                    if roll < self.profile.crash_rate {
                        self.force_crash(i as u32);
                    }
                } else if roll < self.profile.recovery_rate {
                    self.force_recover(i as u32);
                }
            }
        }
    }

    fn sample_latency(&mut self) -> u64 {
        let LinkLatency { min_ms, max_ms } = self.profile.latency;
        if min_ms >= max_ms {
            min_ms
        } else {
            self.rng.gen_range(min_ms..=max_ms)
        }
    }

    /// One-way, fire-and-forget message. No timeout applies: a delivered
    /// send arrives eventually within the round.
    pub fn send(&mut self, from: u32, to: u32) -> Delivery {
        if self.profiler.is_on() {
            let t0 = Instant::now();
            let d = self.send_inner(from, to);
            self.profiler
                .record_ns("net_send", t0.elapsed().as_nanos() as u64);
            d
        } else {
            self.send_inner(from, to)
        }
    }

    fn send_inner(&mut self, from: u32, to: u32) -> Delivery {
        self.stats.attempts += 1;
        // The liveness check precedes the ideal fast path so that
        // `force_crash` works even on an ideal-profile network; it reads
        // no randomness, and `up` stays all-true in engine-driven ideal
        // runs, so byte-identity is unaffected.
        if !self.up[to as usize] {
            self.stats.to_down += 1;
            self.tracer.emit(EventKind::MsgTargetDown {
                from,
                to,
                op: MsgOp::Send,
            });
            return Delivery::TargetDown;
        }
        if self.ideal {
            self.stats.delivered += 1;
            self.tracer.emit(EventKind::MsgSent {
                from,
                to,
                op: MsgOp::Send,
            });
            return Delivery::Delivered;
        }
        if self.profile.drop_prob > 0.0 && self.rng.gen::<f64>() < self.profile.drop_prob {
            self.stats.dropped += 1;
            self.tracer.emit(EventKind::MsgDropped {
                from,
                to,
                op: MsgOp::Send,
            });
            return Delivery::Dropped;
        }
        self.stats.delivered += 1;
        self.tracer.emit(EventKind::MsgSent {
            from,
            to,
            op: MsgOp::Send,
        });
        Delivery::Delivered
    }

    /// Request/reply round trip: the initiator blocks (within the round)
    /// for the reply and gives up past the profile timeout. Either leg
    /// can be dropped; a crashed target never answers.
    pub fn request(&mut self, from: u32, to: u32) -> Delivery {
        if self.profiler.is_on() {
            let t0 = Instant::now();
            let d = self.request_inner(from, to);
            self.profiler
                .record_ns("net_request", t0.elapsed().as_nanos() as u64);
            d
        } else {
            self.request_inner(from, to)
        }
    }

    /// [`request`](NetworkModel::request) with payload accounting: the
    /// request/reply byte sizes are routed into the unified
    /// `net.msgs` / `net.bytes_tx` / `net.bytes_rx` telemetry counters —
    /// the same namespace the node runtime reports real wire bytes
    /// under — so sim-side and transport-backed runs are comparable.
    /// Request bytes count as transmitted at attempt time; the reply
    /// (and received bytes) only on a completed round trip.
    pub fn request_payload(
        &mut self,
        from: u32,
        to: u32,
        req_bytes: u64,
        reply_bytes: u64,
    ) -> Delivery {
        self.tracer.add("net.msgs", 1);
        self.tracer.add("net.bytes_tx", req_bytes);
        let d = self.request(from, to);
        if d.is_ok() {
            self.tracer.add("net.msgs", 1);
            self.tracer.add("net.bytes_tx", reply_bytes);
            self.tracer.add("net.bytes_rx", req_bytes + reply_bytes);
        }
        d
    }

    fn request_inner(&mut self, from: u32, to: u32) -> Delivery {
        self.stats.attempts += 1;
        if !self.up[to as usize] {
            self.stats.to_down += 1;
            self.tracer.emit(EventKind::MsgTargetDown {
                from,
                to,
                op: MsgOp::Request,
            });
            return Delivery::TargetDown;
        }
        if self.ideal {
            self.stats.delivered += 1;
            self.tracer.emit(EventKind::MsgSent {
                from,
                to,
                op: MsgOp::Request,
            });
            return Delivery::Delivered;
        }
        if self.profile.drop_prob > 0.0 {
            if self.rng.gen::<f64>() < self.profile.drop_prob {
                self.stats.dropped += 1;
                self.tracer.emit(EventKind::MsgDropped {
                    from,
                    to,
                    op: MsgOp::Request,
                });
                return Delivery::Dropped; // request lost
            }
            if self.rng.gen::<f64>() < self.profile.drop_prob {
                self.stats.dropped += 1;
                self.tracer.emit(EventKind::MsgDropped {
                    from,
                    to,
                    op: MsgOp::Request,
                });
                return Delivery::Dropped; // reply lost
            }
        }
        let round_trip = self.sample_latency() + self.sample_latency();
        self.tracer.observe_ms("net.rtt_ms", round_trip as f64);
        if round_trip > self.profile.timeout_ms {
            self.stats.timed_out += 1;
            self.tracer.emit(EventKind::MsgTimedOut { from, to });
            return Delivery::TimedOut;
        }
        self.stats.delivered += 1;
        self.tracer.emit(EventKind::MsgSent {
            from,
            to,
            op: MsgOp::Request,
        });
        Delivery::Delivered
    }
}

impl glap_snapshot::Checkpointable for NetworkModel {
    /// Serializes the full dynamic network state: fault profile, node
    /// liveness, message counters and the exact fault-stream RNG cursor.
    /// The tracer is *not* part of the record — the caller re-attaches it.
    fn save(&self, w: &mut glap_snapshot::Writer) {
        w.put_f64(self.profile.drop_prob);
        w.put_u64(self.profile.latency.min_ms);
        w.put_u64(self.profile.latency.max_ms);
        w.put_u64(self.profile.timeout_ms);
        w.put_f64(self.profile.crash_rate);
        w.put_f64(self.profile.recovery_rate);
        for schedule in [
            &self.profile.crash_schedule,
            &self.profile.recovery_schedule,
        ] {
            w.put_usize(schedule.len());
            for &(round, node) in schedule {
                w.put_u64(round);
                w.put_u32(node);
            }
        }
        w.put_bool_slice(&self.up);
        w.put_u64(self.stats.attempts);
        w.put_u64(self.stats.delivered);
        w.put_u64(self.stats.dropped);
        w.put_u64(self.stats.timed_out);
        w.put_u64(self.stats.to_down);
        w.put_u64(self.stats.crashes);
        w.put_u64(self.stats.recoveries);
        crate::rng::save_rng(&self.rng, w);
    }

    /// Restores into a network built for the same cluster: the node count
    /// must match the snapshot or restore fails with
    /// [`glap_snapshot::SnapshotError::Corrupt`]. The profile is taken
    /// from the snapshot and `is_ideal` recomputed from it, so delivery
    /// behaviour resumes exactly as saved.
    fn restore(
        &mut self,
        r: &mut glap_snapshot::Reader<'_>,
    ) -> Result<(), glap_snapshot::SnapshotError> {
        let drop_prob = r.get_f64()?;
        let min_ms = r.get_u64()?;
        let max_ms = r.get_u64()?;
        let timeout_ms = r.get_u64()?;
        let crash_rate = r.get_f64()?;
        let recovery_rate = r.get_f64()?;
        let mut schedules = [Vec::new(), Vec::new()];
        for schedule in &mut schedules {
            let n = r.get_usize()?;
            schedule.reserve(n);
            for _ in 0..n {
                let round = r.get_u64()?;
                let node = r.get_u32()?;
                schedule.push((round, node));
            }
        }
        let [crash_schedule, recovery_schedule] = schedules;
        let up = r.get_bool_slice()?;
        if up.len() != self.up.len() {
            return Err(glap_snapshot::SnapshotError::Corrupt(format!(
                "network snapshot has {} nodes, world has {}",
                up.len(),
                self.up.len()
            )));
        }
        let stats = NetStats {
            attempts: r.get_u64()?,
            delivered: r.get_u64()?,
            dropped: r.get_u64()?,
            timed_out: r.get_u64()?,
            to_down: r.get_u64()?,
            crashes: r.get_u64()?,
            recoveries: r.get_u64()?,
        };
        let rng = crate::rng::restore_rng(r)?;
        self.profile = FaultProfile {
            drop_prob,
            latency: LinkLatency { min_ms, max_ms },
            timeout_ms,
            crash_rate,
            recovery_rate,
            crash_schedule,
            recovery_schedule,
        };
        self.ideal = self.profile.is_ideal();
        self.up = up;
        self.stats = stats;
        self.rng = rng;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn ideal_network_delivers_everything_without_randomness() {
        let mut net = NetworkModel::ideal(8);
        let mut twin = NetworkModel::ideal(8);
        for r in 0..5 {
            net.begin_round(r);
            for i in 0..8u32 {
                for j in 0..8u32 {
                    assert!(net.request(i, j).is_ok());
                    assert!(net.send(i, j).is_ok());
                }
            }
        }
        assert_eq!(net.stats.delivered, net.stats.attempts);
        // The RNG was never advanced: both instances still produce the
        // same next value as a fresh one.
        assert_eq!(net.rng.next_u64(), twin.rng.next_u64());
    }

    #[test]
    fn none_profile_is_ideal_and_lossy_is_not() {
        assert!(FaultProfile::none().is_ideal());
        assert!(!FaultProfile::lossy(0.1).is_ideal());
        assert!(!FaultProfile::faulty(0.0, 0.01, 0.1).is_ideal());
        let slow = FaultProfile {
            latency: LinkLatency {
                min_ms: 300,
                max_ms: 400,
            },
            ..FaultProfile::none()
        };
        assert!(!slow.is_ideal(), "latency tail can exceed the timeout");
    }

    #[test]
    fn crashed_targets_refuse_messages() {
        let mut net = NetworkModel::new(4, FaultProfile::none(), 1);
        net.force_crash(2);
        assert_eq!(net.request(0, 2), Delivery::TargetDown);
        assert_eq!(net.send(0, 2), Delivery::TargetDown);
        assert!(net.request(0, 1).is_ok());
        net.force_recover(2);
        assert!(net.request(0, 2).is_ok());
    }

    #[test]
    fn drop_probability_loses_roughly_that_share() {
        let mut net = NetworkModel::new(2, FaultProfile::lossy(0.3), 7);
        let mut lost = 0;
        for _ in 0..2000 {
            if !net.send(0, 1).is_ok() {
                lost += 1;
            }
        }
        let rate = lost as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed loss rate {rate}");
    }

    #[test]
    fn scheduled_crashes_and_recoveries_fire_at_their_round() {
        let profile = FaultProfile {
            crash_schedule: vec![(3, 1)],
            recovery_schedule: vec![(5, 1)],
            ..FaultProfile::none()
        };
        let mut net = NetworkModel::new(3, profile, 11);
        for round in 0..8 {
            net.begin_round(round);
            let expect_up = !(3..5).contains(&round);
            assert_eq!(net.is_up(1), expect_up, "round {round}");
        }
        assert_eq!(net.stats.crashes, 1);
        assert_eq!(net.stats.recoveries, 1);
    }

    #[test]
    fn stochastic_crashes_eventually_recover() {
        let mut net = NetworkModel::new(50, FaultProfile::faulty(0.0, 0.05, 0.5), 13);
        let mut saw_down = false;
        for round in 0..200 {
            net.begin_round(round);
            saw_down |= net.up_count() < 50;
        }
        assert!(saw_down, "no crash in 200 rounds at rate 0.05");
        assert!(net.stats.recoveries > 0, "no recovery despite rate 0.5");
        assert!(
            net.up_count() > 25,
            "population collapsed: {}",
            net.up_count()
        );
    }

    #[test]
    fn timeout_fires_when_latency_tail_exceeds_budget() {
        let profile = FaultProfile {
            latency: LinkLatency {
                min_ms: 100,
                max_ms: 400,
            },
            timeout_ms: 450,
            ..FaultProfile::none()
        };
        let mut net = NetworkModel::new(2, profile, 17);
        let mut timed_out = 0;
        for _ in 0..500 {
            if net.request(0, 1) == Delivery::TimedOut {
                timed_out += 1;
            }
        }
        assert!(
            timed_out > 0,
            "no timeouts despite 200..800ms round trips vs 450ms budget"
        );
        assert_eq!(net.stats.timed_out, timed_out);
    }

    #[test]
    fn checkpoint_restore_resumes_byte_identically() {
        use glap_snapshot::{Checkpointable, Reader, Writer};
        let profile = FaultProfile {
            crash_schedule: vec![(30, 2)],
            ..FaultProfile::faulty(0.2, 0.02, 0.2)
        };
        let mut net = NetworkModel::new(10, profile.clone(), 5);
        for round in 0..25 {
            net.begin_round(round);
            for i in 0..10u32 {
                net.request(i, (i + 1) % 10);
            }
        }

        let mut w = Writer::new();
        net.save(&mut w);
        let bytes = w.into_bytes();

        // Restore into a freshly built world (different seed: every field
        // must come from the snapshot, not the constructor).
        let mut twin = NetworkModel::new(10, FaultProfile::none(), 999);
        twin.restore(&mut Reader::new(&bytes)).unwrap();

        // Immediate re-save is byte-identical.
        let mut w2 = Writer::new();
        twin.save(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // Continuing both produces identical outcomes and stats —
        // including the scripted crash still pending at round 30.
        for round in 25..60 {
            net.begin_round(round);
            twin.begin_round(round);
            for i in 0..10u32 {
                assert_eq!(net.request(i, (i + 1) % 10), twin.request(i, (i + 1) % 10));
            }
        }
        assert_eq!(net.stats, twin.stats);
        assert!(net.stats.crashes > 0);
    }

    #[test]
    fn restore_rejects_node_count_mismatch() {
        use glap_snapshot::{Checkpointable, Reader, Writer};
        let net = NetworkModel::new(10, FaultProfile::lossy(0.1), 5);
        let mut w = Writer::new();
        net.save(&mut w);
        let bytes = w.into_bytes();
        let mut other = NetworkModel::new(11, FaultProfile::lossy(0.1), 5);
        assert!(matches!(
            other.restore(&mut Reader::new(&bytes)),
            Err(glap_snapshot::SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn faulty_runs_are_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let mut net = NetworkModel::new(10, FaultProfile::faulty(0.2, 0.02, 0.2), seed);
            let mut outcomes = Vec::new();
            for round in 0..50 {
                net.begin_round(round);
                for i in 0..10u32 {
                    outcomes.push(net.request(i, (i + 1) % 10));
                }
            }
            (outcomes, net.stats)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0);
    }
}
