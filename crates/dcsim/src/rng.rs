//! Deterministic random-number plumbing.
//!
//! Every simulation run is a pure function of a single `u64` seed: the
//! master seed is expanded with SplitMix64 into independent named streams
//! (placement, trace, per-protocol, per-node), so adding a consumer of
//! randomness in one component never perturbs the draws seen by another —
//! a property the paper's methodology needs ("such VM-PM mapping is used
//! identically for all different algorithms in each experiment").

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The PRNG used throughout the simulator: ChaCha8 — portable, seedable,
/// fast, with an explicitly specified algorithm (unlike `StdRng`).
pub type SimRng = ChaCha8Rng;

/// SplitMix64 — the standard seed-expansion mixer (Steele et al.).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Well-known stream labels, so call sites don't sprinkle magic numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Initial VM→PM mapping.
    Placement,
    /// Workload trace generation.
    Trace,
    /// Overlay bootstrap and shuffling.
    Overlay,
    /// The consolidation policy's own decisions.
    Policy,
    /// The learning component (phase-level draws: aggregation pairing,
    /// similarity sampling).
    Learning,
    /// One PM's local training during the learning phase. Per-PM
    /// streams make the round's training order-independent, so the
    /// trainer can fan the PMs out over a worker pool and stay
    /// byte-identical at any thread count.
    LearningPm(u32),
    /// The network fault model (message drops, latency, crashes).
    Network,
    /// The transport driver's per-round delivery schedule: the seeded
    /// activation order that makes channel-backed runs byte-identical
    /// to the sim oracle regardless of thread interleaving.
    Delivery,
    /// One node's protocol randomness in the transport-backed runtime
    /// (shuffle draws, peer picks, local training). Per-node streams
    /// make every node's draws independent of when its messages are
    /// scheduled, which is what lets real concurrent nodes reproduce
    /// the oracle bit-for-bit.
    Node(u32),
    /// One PM's partner pick in a sharded aggregation round. Seeded
    /// from a per-round value drawn off the shared learning RNG, so
    /// partner selection is embarrassingly parallel yet byte-identical
    /// at any thread count.
    AggregationPm(u32),
    /// One PM's partner pick in a sharded consolidation sweep (same
    /// per-round-seed scheme as [`Stream::AggregationPm`], on the
    /// policy's RNG).
    PolicyPm(u32),
    /// Free-form extra stream.
    Custom(u64),
}

impl Stream {
    fn tag(self) -> u64 {
        match self {
            Stream::Placement => 1,
            Stream::Trace => 2,
            Stream::Overlay => 3,
            Stream::Policy => 4,
            Stream::Learning => 5,
            Stream::Network => 6,
            Stream::Delivery => 7,
            // Per-PM learning streams live in their own tag plane, far
            // above Custom's 0x1000 offset, so no PM index can collide
            // with any other stream label.
            Stream::LearningPm(pm) => 0x1_0000_0000 + pm as u64,
            // Per-node protocol streams get a second private tag plane.
            Stream::Node(node) => 0x2_0000_0000 + node as u64,
            // Per-PM partner-pick streams for the sharded aggregation
            // round and consolidation sweep, each in its own plane.
            Stream::AggregationPm(pm) => 0x3_0000_0000 + pm as u64,
            Stream::PolicyPm(pm) => 0x4_0000_0000 + pm as u64,
            Stream::Custom(x) => 0x1000 + x,
        }
    }
}

/// Derives the RNG for a named stream of a master seed.
pub fn stream_rng(master_seed: u64, stream: Stream) -> SimRng {
    let mut rng = SimRng::seed_from_u64(splitmix64(master_seed));
    rng.set_stream(splitmix64(stream.tag()));
    rng
}

/// Derives an RNG for a (stream, node) pair — independent per-node
/// randomness for protocols that need it.
pub fn node_rng(master_seed: u64, stream: Stream, node: u64) -> SimRng {
    let mut rng = SimRng::seed_from_u64(splitmix64(master_seed ^ splitmix64(node)));
    rng.set_stream(splitmix64(stream.tag()));
    rng
}

/// Serializes the exact cursor of a [`SimRng`] (key, block counter,
/// stream id and mid-block position), so a restored generator continues
/// the byte stream precisely where the original left off.
pub fn save_rng(rng: &SimRng, w: &mut glap_snapshot::Writer) {
    let s = rng.export_state();
    for k in s.key {
        w.put_u32(k);
    }
    w.put_u64(s.counter);
    w.put_u64(s.stream);
    for b in s.buf {
        w.put_u32(b);
    }
    w.put_u32(s.idx);
}

/// Inverse of [`save_rng`].
pub fn restore_rng(
    r: &mut glap_snapshot::Reader<'_>,
) -> Result<SimRng, glap_snapshot::SnapshotError> {
    let mut key = [0u32; 8];
    for k in &mut key {
        *k = r.get_u32()?;
    }
    let counter = r.get_u64()?;
    let stream = r.get_u64()?;
    let mut buf = [0u32; 16];
    for b in &mut buf {
        *b = r.get_u32()?;
    }
    let idx = r.get_u32()?;
    if idx > 16 {
        return Err(glap_snapshot::SnapshotError::Corrupt(format!(
            "rng buffer index {idx} out of range"
        )));
    }
    Ok(SimRng::from_state(rand_chacha::ChaCha8State {
        key,
        counter,
        stream,
        buf,
        idx,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        assert_ne!(splitmix64(0), 0);
    }

    #[test]
    fn same_seed_same_stream_reproduces() {
        let mut a = stream_rng(42, Stream::Trace);
        let mut b = stream_rng(42, Stream::Trace);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_are_independent() {
        let mut a = stream_rng(42, Stream::Trace);
        let mut b = stream_rng(42, Stream::Policy);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = stream_rng(1, Stream::Placement);
        let mut b = stream_rng(2, Stream::Placement);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn node_streams_differ_per_node() {
        let mut a = node_rng(42, Stream::Learning, 0);
        let mut b = node_rng(42, Stream::Learning, 1);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = node_rng(42, Stream::Learning, 0);
        assert_eq!(node_rng(42, Stream::Learning, 0).next_u64(), a2.next_u64());
    }

    #[test]
    fn per_pm_learning_streams_are_distinct_and_reproducible() {
        let mut a = stream_rng(42, Stream::LearningPm(0));
        let mut b = stream_rng(42, Stream::LearningPm(1));
        let mut shared = stream_rng(42, Stream::Learning);
        let a0 = a.next_u64();
        assert_ne!(a0, b.next_u64());
        assert_ne!(a0, shared.next_u64());
        assert_eq!(stream_rng(42, Stream::LearningPm(0)).next_u64(), a0);
        // The per-PM tag plane cannot collide with Custom streams.
        for pm in [0u32, 1, 1000] {
            let mut p = stream_rng(7, Stream::LearningPm(pm));
            let mut c = stream_rng(7, Stream::Custom(pm as u64));
            assert_ne!(p.next_u64(), c.next_u64());
        }
    }

    #[test]
    fn node_protocol_streams_have_their_own_tag_plane() {
        let mut a = stream_rng(42, Stream::Node(0));
        let mut b = stream_rng(42, Stream::Node(1));
        assert_ne!(a.next_u64(), b.next_u64());
        for node in [0u32, 3, 1000] {
            let mut n = stream_rng(7, Stream::Node(node));
            let mut p = stream_rng(7, Stream::LearningPm(node));
            let mut c = stream_rng(7, Stream::Custom(node as u64));
            let v = n.next_u64();
            assert_ne!(v, p.next_u64());
            assert_ne!(v, c.next_u64());
        }
        let mut d = stream_rng(7, Stream::Delivery);
        let mut net = stream_rng(7, Stream::Network);
        assert_ne!(d.next_u64(), net.next_u64());
    }

    #[test]
    fn custom_streams_are_distinct() {
        let mut a = stream_rng(7, Stream::Custom(0));
        let mut b = stream_rng(7, Stream::Custom(1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn saved_rng_resumes_mid_block() {
        let mut rng = stream_rng(42, Stream::Policy);
        // Advance to an odd position inside a ChaCha block so the
        // mid-block cursor matters.
        let mut junk = [0u8; 13];
        rng.fill_bytes(&mut junk);

        let mut w = glap_snapshot::Writer::new();
        save_rng(&rng, &mut w);
        let bytes = w.into_bytes();

        let mut r = glap_snapshot::Reader::new(&bytes);
        let mut restored = restore_rng(&mut r).unwrap();
        assert!(r.is_exhausted());
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn restore_rng_rejects_bad_cursor() {
        let mut rng = stream_rng(42, Stream::Policy);
        rng.next_u64();
        let mut w = glap_snapshot::Writer::new();
        save_rng(&rng, &mut w);
        let mut bytes = w.into_bytes();
        // The trailing u32 is the buffer index; force it out of range.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&99u32.to_le_bytes());
        let mut r = glap_snapshot::Reader::new(&bytes);
        assert!(matches!(
            restore_rng(&mut r),
            Err(glap_snapshot::SnapshotError::Corrupt(_))
        ));
    }
}
