//! # glap-dcsim — simulation engine (PeerSim equivalent)
//!
//! The GLAP paper evaluates on PeerSim, "a simulator for modeling large
//! scale P2P networks", augmented with a cloud model. This crate is that
//! substrate in Rust:
//!
//! * [`engine`] — the **cycle-driven** scheduler used by all paper
//!   experiments: per round, step workload demands → run the consolidation
//!   policy → notify metric observers.
//! * [`event`] — an **event-driven** engine (future-event list, random link
//!   latency, timers) used to validate that the gossip protocols behave the
//!   same under asynchrony.
//! * [`net`] — the **message-level network model**: per-message drops,
//!   latency vs. timeout, and PM crash/recovery schedules, with a
//!   zero-randomness ideal path so fault-free runs stay byte-identical.
//! * [`rng`] — deterministic named RNG streams so every run is a pure
//!   function of one `u64` seed.
//!
//! ```
//! use glap_dcsim::prelude::*;
//! use glap_cluster::prelude::*;
//!
//! let mut dc = DataCenter::new(DataCenterConfig::paper(4));
//! for _ in 0..8 { dc.add_vm(VmSpec::EC2_MICRO); }
//! let mut rng = stream_rng(1, Stream::Placement);
//! dc.random_placement(&mut rng);
//!
//! let mut trace = |_: VmId, _: u64| Resources::splat(0.3);
//! let mut policy = NoopPolicy;
//! run_simulation(&mut dc, &mut trace, &mut policy, &mut [], 10, 1);
//! assert_eq!(dc.round(), 10);
//! ```

pub mod engine;
pub mod event;
pub mod net;
pub mod rng;

pub use engine::{
    run_simulation, run_simulation_profiled, run_simulation_resumable, run_simulation_traced,
    run_simulation_with_net, CheckpointArgs, ConsolidationPolicy, NoopPolicy, Observer, RoundCtx,
};
pub use event::{EdContext, EdEvent, EdNode, EdNodeId, EventEngine, LatencyModel};
pub use net::{Delivery, FaultProfile, LinkLatency, NetStats, NetworkModel};
pub use rng::{node_rng, restore_rng, save_rng, splitmix64, stream_rng, SimRng, Stream};

/// Convenient glob import.
pub mod prelude {
    pub use crate::engine::{
        run_simulation, run_simulation_profiled, run_simulation_resumable, run_simulation_traced,
        run_simulation_with_net, CheckpointArgs, ConsolidationPolicy, NoopPolicy, Observer,
        RoundCtx,
    };
    pub use crate::event::{EdContext, EdEvent, EdNode, EdNodeId, EventEngine, LatencyModel};
    pub use crate::net::{Delivery, FaultProfile, LinkLatency, NetStats, NetworkModel};
    pub use crate::rng::{node_rng, restore_rng, save_rng, stream_rng, SimRng, Stream};
}
