//! CI scale smoke: one 16k-PM cell of the scale trajectory under a
//! wall-clock budget, with the 1k cell measured in the same process as
//! the linearity reference.
//!
//! The full `BENCH_scale.json` refresh (through 100k PMs) takes minutes
//! and runs on demand; this smoke fails fast on every push if per-round
//! cost goes super-linear at a size debug CI can still afford. Ignored
//! by default because the measured loops only make sense in release —
//! CI runs `cargo test --release -- --ignored` for this file.

use glap_experiments::scale_records_at;
use std::time::Instant;

use glap::prelude::*;
use glap_cluster::{DataCenter, DataCenterConfig, Resources, VmId, VmSpec};

#[test]
#[ignore = "release-mode CI smoke (minutes in debug builds); run with --ignored"]
fn sixteen_k_cell_stays_near_linear_within_budget() {
    let t0 = Instant::now();
    let records = scale_records_at(&[1_000, 16_000], 60);
    // Five records per size, every one actually measured.
    assert_eq!(records.len(), 10);
    for r in &records {
        assert!(r.median_ns > 0, "{} measured nothing", r.name);
        assert!(r.iterations >= 3, "{} under-sampled", r.name);
    }
    let ns = |name: &str| {
        records
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("missing record {name}"))
            .median_ns as f64
    };
    // The committed criterion scaled down: 16x the PMs may cost at most
    // ~30x per round (the 100k/4k advisory allows 30x for 25x). A
    // super-linear blow-up — quadratic scans, per-PM allocation churn —
    // trips this long before the 100k row would.
    let ratio = ns("learn_plus_agg_round_16000pms") / ns("learn_plus_agg_round_1000pms");
    let policy_ratio = ns("policy_round_16000pms") / ns("policy_round_1000pms");
    eprintln!("scale smoke: learn+agg 16k/1k = {ratio:.1}x, policy 16k/1k = {policy_ratio:.1}x");
    assert!(
        ratio <= 30.0,
        "learn+agg at 16k PMs costs {ratio:.1}x the 1k figure (16x the PMs)"
    );
    // Slightly looser than the headline: the 1k policy cell is ~1ms, so
    // its round-to-round variance moves this ratio more. A quadratic
    // sweep would land at ~256x, far past either bound.
    assert!(
        policy_ratio <= 35.0,
        "policy round at 16k PMs costs {policy_ratio:.1}x the 1k figure"
    );
    // Wall-clock budget for the whole smoke (both cells, all loops).
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs() < 300,
        "scale smoke blew its wall-clock budget: {elapsed:?}"
    );
}

/// Release memory smoke: one fused learn+aggregate round over a
/// quarter-million PMs, end to end through [`train_arena`], must fit
/// the CI memory budget.
///
/// The fleet's Q-tables are the memory story at this size: 250k PMs x
/// ~105 KB of dense table values is ~26 GB of *virtual* arena slab
/// (plus ~3 GB of visited flags) — but only pages a PM actually trains
/// into get faulted in, so measured peak RSS is ~15 GB. The budget
/// asserts the run stays within touched-slab + world + bounded per-PM
/// scratch — an export copy (reads every page, then writes a boxed
/// duplicate) or eager zero-fill of the slab faults the full ~30 GB+
/// and trips this long before the OOM killer would.
#[test]
#[ignore = "release-mode CI smoke (~15 GB RSS, minutes); run with --ignored"]
fn quarter_million_pm_fused_round_fits_memory_budget() {
    const N: usize = 250_000;
    /// Process peak-RSS ceiling: the touched part of the arena slabs
    /// (~15 GB measured; ~30 GB virtual) + the world and per-PM
    /// scratch, with margin for allocator slack — but under the
    /// ~45-60 GB a full-fault, boxed-table, or export-copy regression
    /// would reach.
    const PEAK_RSS_BUDGET_BYTES: u64 = 40_000_000_000;

    let t0 = Instant::now();
    let mut wave = |vm: VmId, round: u64| {
        let x = 0.3 + 0.25 * ((round as f64 / 7.0) + vm.0 as f64).sin();
        Resources::splat(x)
    };
    let mut dc = DataCenter::new(DataCenterConfig::paper(N));
    for _ in 0..N * 2 {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    dc.random_placement(&mut stream_rng(7, Stream::Placement));
    dc.step(&mut wave);

    // Exactly one fused round: the last learning round and the first
    // aggregation round in a single arena sweep.
    let cfg = GlapConfig {
        learning_rounds: 1,
        aggregation_rounds: 1,
        ..Default::default()
    };
    let profiler = Profiler::enabled();
    let (arena, report) = train_arena(&mut dc, &mut wave, &cfg, 42, None, &profiler);
    assert_eq!(arena.len(), N);
    assert!(report.pms_trained > 0, "nobody trained at 250k PMs");
    let snapshot = profiler.snapshot();
    let fused = snapshot
        .span("train/fused_round")
        .expect("the uncoded 1+1 schedule runs exactly one fused round");
    assert!(fused.count >= 1);

    let peak = glap_profile::peak_rss_bytes().expect("peak RSS readable on this platform");
    eprintln!(
        "250k-PM fused round: {:.1}s total, peak RSS {:.1} GB (budget {:.0} GB)",
        t0.elapsed().as_secs_f64(),
        peak as f64 / 1e9,
        PEAK_RSS_BUDGET_BYTES as f64 / 1e9,
    );
    assert!(
        peak <= PEAK_RSS_BUDGET_BYTES,
        "peak RSS {peak} bytes blew the {PEAK_RSS_BUDGET_BYTES}-byte budget \
         — per-PM table storage stopped collapsing into the arena"
    );
    // Generous wall budget: this is a memory smoke, not a speed gate —
    // on one core the run is dominated by first-touch faulting the
    // ~30 GB arena. A hang or a quadratic sweep should still fail
    // rather than wedge CI.
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs() < 1800,
        "250k-PM fused-round smoke blew its wall-clock budget: {elapsed:?}"
    );
}
