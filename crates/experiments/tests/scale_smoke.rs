//! CI scale smoke: one 16k-PM cell of the scale trajectory under a
//! wall-clock budget, with the 1k cell measured in the same process as
//! the linearity reference.
//!
//! The full `BENCH_scale.json` refresh (through 100k PMs) takes minutes
//! and runs on demand; this smoke fails fast on every push if per-round
//! cost goes super-linear at a size debug CI can still afford. Ignored
//! by default because the measured loops only make sense in release —
//! CI runs `cargo test --release -- --ignored` for this file.

use glap_experiments::scale_records_at;
use std::time::Instant;

#[test]
#[ignore = "release-mode CI smoke (minutes in debug builds); run with --ignored"]
fn sixteen_k_cell_stays_near_linear_within_budget() {
    let t0 = Instant::now();
    let records = scale_records_at(&[1_000, 16_000], 60);
    // Five records per size, every one actually measured.
    assert_eq!(records.len(), 10);
    for r in &records {
        assert!(r.median_ns > 0, "{} measured nothing", r.name);
        assert!(r.iterations >= 3, "{} under-sampled", r.name);
    }
    let ns = |name: &str| {
        records
            .iter()
            .find(|b| b.name == name)
            .unwrap_or_else(|| panic!("missing record {name}"))
            .median_ns as f64
    };
    // The committed criterion scaled down: 16x the PMs may cost at most
    // ~30x per round (the 100k/4k advisory allows 30x for 25x). A
    // super-linear blow-up — quadratic scans, per-PM allocation churn —
    // trips this long before the 100k row would.
    let ratio = ns("learn_plus_agg_round_16000pms") / ns("learn_plus_agg_round_1000pms");
    let policy_ratio = ns("policy_round_16000pms") / ns("policy_round_1000pms");
    eprintln!("scale smoke: learn+agg 16k/1k = {ratio:.1}x, policy 16k/1k = {policy_ratio:.1}x");
    assert!(
        ratio <= 30.0,
        "learn+agg at 16k PMs costs {ratio:.1}x the 1k figure (16x the PMs)"
    );
    // Slightly looser than the headline: the 1k policy cell is ~1ms, so
    // its round-to-round variance moves this ratio more. A quadratic
    // sweep would land at ~256x, far past either bound.
    assert!(
        policy_ratio <= 35.0,
        "policy round at 16k PMs costs {policy_ratio:.1}x the 1k figure"
    );
    // Wall-clock budget for the whole smoke (both cells, all loops).
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs() < 300,
        "scale smoke blew its wall-clock budget: {elapsed:?}"
    );
}
