//! Full-run byte-identity across worker-pool widths.
//!
//! The trainer's local-learning fan-out, the sharded aggregation round
//! and the sharded consolidation sweep all promise the same contract:
//! thread count is an execution detail, never an input. These proptests
//! pin it end to end — whole scenario runs (training + measured day),
//! across the paper's four algorithms, with and without fault injection,
//! must produce identical results at 1 and 4 workers.
//!
//! The worker count is installed through `glap_par::set_default_threads`
//! (the same knob the `--threads` CLI flag uses), so every pool the run
//! touches is covered. The proptest functions share one process-global
//! default, hence the single test function per concern.

use glap::GlapConfig;
use glap_dcsim::FaultProfile;
use glap_experiments::{run_scenario, Algorithm, Scenario};
use proptest::prelude::*;

/// Short-but-complete GLAP configuration: full two-phase training, just
/// compressed enough for a proptest budget.
fn quick_glap() -> GlapConfig {
    GlapConfig {
        learning_rounds: 6,
        aggregation_rounds: 6,
        learning_iterations: 8,
        ..GlapConfig::default()
    }
}

/// Runs the scenario under an installed process-wide worker count and
/// fingerprints everything the run reports: the per-round series, final
/// SLA metrics, wake-ups and the BFD reference. `Debug` formatting of
/// `f64` is exact (shortest round-trip representation), so any
/// accumulation-order difference shows up.
fn fingerprint(sc: &Scenario, threads: usize) -> String {
    glap_par::set_default_threads(threads);
    let result = run_scenario(sc);
    glap_par::set_default_threads(0);
    format!("{result:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn whole_runs_are_thread_count_invariant(
        algo_idx in 0usize..4,
        faulty in any::<bool>(),
        rep in 0usize..3,
        n_pms in 16usize..40,
    ) {
        let mut sc = Scenario::paper(n_pms, 3, rep, Algorithm::PAPER_SET[algo_idx]);
        sc.rounds = 10;
        sc.glap = quick_glap();
        if faulty {
            // Drops, timeouts and crash/recovery exercise the serial
            // fallback paths; identity must hold there too.
            sc.fault = FaultProfile::faulty(0.1, 0.02, 0.3);
        }
        let one = fingerprint(&sc, 1);
        let four = fingerprint(&sc, 4);
        prop_assert_eq!(
            one,
            four,
            "algorithm {:?}, faulty={}, rep={}, n_pms={}",
            sc.algorithm,
            faulty,
            rep,
            n_pms
        );
    }
}
