//! Regeneration of every figure and table in the paper's evaluation
//! (§V-C). Each function either runs the sweep it needs or consumes the
//! shared grid results, and produces a [`TextTable`] that mirrors the
//! figure's series.

use crate::checkpoint::{checkpoint_path, decode_result, done_path, encode_result};
use crate::cli::Cli;
use crate::pool::parallel_map;
use crate::report::{fnum, TextTable};
use crate::runner::{build_world, run_scenario, run_scenario_checkpointed, CheckpointOpts};

use crate::scenario::{Algorithm, Grid, Scenario};
use glap::{train_instrumented, GlapConfig, TrainPhase};
use glap_metrics::{p10_median_p90, RunResult};
use glap_profile::{Profiler, SweepProgress};
use glap_snapshot::{read_snapshot_file, write_atomic};
use glap_telemetry::{Phase, Tracer};
use std::path::Path;

/// A regenerated figure/table: a title, the data table, and free-form
/// notes (e.g. the paper's headline claims to compare against).
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Human-readable title.
    pub title: String,
    /// The regenerated series.
    pub table: TextTable,
    /// Observations / caveats.
    pub notes: Vec<String>,
}

impl FigureOutput {
    /// Renders title + table + notes for stdout.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n\n{}", self.title, self.table.render());
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

/// Runs all scenarios of a grid for the given algorithms, in parallel.
pub fn run_grid(
    grid: &Grid,
    algorithms: &[Algorithm],
    threads: Option<usize>,
    verbose: bool,
) -> Vec<(Scenario, RunResult)> {
    run_grid_progress(grid, algorithms, threads, verbose, false)
}

/// [`run_grid`] with an optional live stderr sweep ticker (`--progress`):
/// each finished cell logs completion count, rate and ETA. Observational
/// only — results are identical with it on or off.
pub fn run_grid_progress(
    grid: &Grid,
    algorithms: &[Algorithm],
    threads: Option<usize>,
    verbose: bool,
    progress: bool,
) -> Vec<(Scenario, RunResult)> {
    let scenarios = grid.scenarios(algorithms);
    if verbose {
        eprintln!("running {} scenarios…", scenarios.len());
    }
    let ticker = SweepProgress::new(scenarios.len(), progress);
    let results = parallel_map(scenarios.clone(), threads, |sc| {
        let r = run_scenario(sc);
        ticker.cell_done(&sc.id());
        if verbose {
            eprintln!(
                "  {}: active={} overloaded(med)={} migrations={} slav={:.3e}",
                sc.id(),
                r.collector.samples.last().map_or(0, |s| s.active_pms),
                r.collector.overloaded_summary().1,
                r.collector.total_migrations(),
                r.sla.slav,
            );
        }
        r
    });
    scenarios.into_iter().zip(results).collect()
}

/// [`run_grid`] with crash-safe per-scenario checkpoints under `dir`.
///
/// Each cell writes `<id>.ckpt` every `every` rounds while running and a
/// CRC-protected `<id>.done` result file on completion. Re-invoking an
/// interrupted sweep over the same directory loads finished cells from
/// their `.done` files, resumes interrupted cells from their latest
/// checkpoint (byte-identical to an uninterrupted run), and only starts
/// untouched cells from scratch. An unusable checkpoint (corrupt file,
/// or the grid changed under the directory) is reported and the cell
/// restarts fresh — a stale file never poisons the sweep.
pub fn run_grid_checkpointed(
    grid: &Grid,
    algorithms: &[Algorithm],
    threads: Option<usize>,
    verbose: bool,
    every: u64,
    dir: &Path,
) -> Vec<(Scenario, RunResult)> {
    std::fs::create_dir_all(dir).expect("create checkpoint directory");
    let scenarios = grid.scenarios(algorithms);
    if verbose {
        eprintln!(
            "running {} scenarios (checkpoints in {})…",
            scenarios.len(),
            dir.display()
        );
    }
    let results = parallel_map(scenarios.clone(), threads, |sc| {
        let done = done_path(dir, sc);
        if done.exists() {
            match read_snapshot_file(&done).and_then(|snap| decode_result(&snap)) {
                Ok(r) => {
                    if verbose {
                        eprintln!(
                            "  {}: finished earlier, loaded from {}",
                            sc.id(),
                            done.display()
                        );
                    }
                    return r;
                }
                Err(e) => eprintln!("  {}: unreadable result file ({e}), re-running", sc.id()),
            }
        }
        let ckpt = checkpoint_path(dir, sc);
        let mut opts = CheckpointOpts {
            every,
            dir: Some(dir.to_path_buf()),
            resume: ckpt.exists().then(|| ckpt.clone()),
            stop_at_round: None,
        };
        let resumed = opts.resume.is_some();
        let outcome = run_scenario_checkpointed(sc, &Tracer::off(), &opts).or_else(|e| {
            // A corrupt or stale checkpoint is loud but not fatal to the
            // sweep: redo the cell from scratch.
            eprintln!("  {}: checkpoint unusable ({e}), restarting cell", sc.id());
            opts.resume = None;
            run_scenario_checkpointed(sc, &Tracer::off(), &opts)
        });
        let (result, _) =
            outcome.unwrap_or_else(|e| panic!("{}: checkpoint write failed: {e}", sc.id()));
        let r = result.expect("no stop_at_round: the sweep runs every cell to completion");
        write_atomic(&done, &encode_result(&r))
            .unwrap_or_else(|e| panic!("{}: cannot write result file: {e}", sc.id()));
        std::fs::remove_file(&ckpt).ok();
        if verbose {
            eprintln!(
                "  {}{}: active={} migrations={} slav={:.3e}",
                sc.id(),
                if resumed { " (resumed)" } else { "" },
                r.collector.samples.last().map_or(0, |s| s.active_pms),
                r.collector.total_migrations(),
                r.sla.slav,
            );
        }
        r
    });
    scenarios.into_iter().zip(results).collect()
}

/// Dispatches a grid run according to the CLI's snapshot flags: with
/// `--checkpoint-dir` the sweep is crash-safe and resumable
/// ([`run_grid_checkpointed`], default cadence every 60 rounds unless
/// `--checkpoint-every` says otherwise); without it, a plain in-memory
/// sweep ([`run_grid`]).
pub fn run_grid_with(
    grid: &Grid,
    algorithms: &[Algorithm],
    cli: &Cli,
) -> Vec<(Scenario, RunResult)> {
    match &cli.checkpoint_dir {
        Some(dir) => {
            let every = if cli.checkpoint_every == 0 {
                60
            } else {
                cli.checkpoint_every
            };
            run_grid_checkpointed(grid, algorithms, cli.threads, cli.verbose, every, dir)
        }
        None => run_grid_progress(grid, algorithms, cli.threads, cli.verbose, cli.progress),
    }
}

/// Iterates the distinct (size, ratio) cells of a result set.
fn cells(results: &[(Scenario, RunResult)]) -> Vec<(usize, usize)> {
    let mut cells: Vec<(usize, usize)> =
        results.iter().map(|(sc, _)| (sc.n_pms, sc.ratio)).collect();
    cells.sort_unstable();
    cells.dedup();
    cells
}

/// Results for one (size, ratio, algorithm) cell.
fn cell_results(
    results: &[(Scenario, RunResult)],
    size: usize,
    ratio: usize,
    algo: Algorithm,
) -> Vec<&RunResult> {
    results
        .iter()
        .filter(|(sc, _)| sc.n_pms == size && sc.ratio == ratio && sc.algorithm == algo)
        .map(|(_, r)| r)
        .collect()
}

fn algorithms_of(results: &[(Scenario, RunResult)]) -> Vec<Algorithm> {
    let mut algos: Vec<Algorithm> = results.iter().map(|(sc, _)| sc.algorithm).collect();
    algos.sort_by_key(|a| a.tag());
    algos.dedup();
    algos
}

// ---------------------------------------------------------------------
// Figure 5 — Q-value convergence (learning phase WOG vs aggregation WG)
// ---------------------------------------------------------------------

/// Regenerates Figure 5: mean pairwise cosine similarity of PM Q-tables
/// per cycle, for each VM:PM ratio, across the learning phase (WOG) and
/// the aggregation phase (WG).
pub fn fig5_convergence(
    n_pms: usize,
    ratios: &[usize],
    glap: GlapConfig,
    seed_base: u64,
) -> FigureOutput {
    fig5_convergence_profiled(n_pms, ratios, glap, seed_base, &Profiler::off())
}

/// [`fig5_convergence`] with a wall-clock [`Profiler`]: each ratio's
/// training runs under a `fig5_ratio` span with the full `train` span
/// tree below it. Observational only — the figure data is byte-identical
/// with profiling on or off.
pub fn fig5_convergence_profiled(
    n_pms: usize,
    ratios: &[usize],
    glap: GlapConfig,
    seed_base: u64,
    profiler: &Profiler,
) -> FigureOutput {
    let mut table = TextTable::new(["ratio", "phase", "cycle", "cosine_similarity"]);
    let mut finals = Vec::new();
    for &ratio in ratios {
        let sc = Scenario {
            n_pms,
            ratio,
            rep: 0,
            algorithm: Algorithm::Glap,
            rounds: 0,
            glap,
            trace_cfg: Default::default(),
            vm_mix: Default::default(),
            fault: Default::default(),
        };
        let ratio_span = profiler.span("fig5_ratio");
        let (mut dc, mut trace) = {
            let _s = profiler.span("build_world");
            build_world(&sc)
        };
        // A counting tracer turns on the convergence monitor without any
        // sink I/O; its divergence series cross-checks the Figure 5 data.
        let (_tables, report, monitor) = train_instrumented(
            &mut dc,
            &mut trace,
            &glap,
            sc.policy_seed() ^ seed_base,
            true,
            &Tracer::counting(),
            None,
            profiler,
        );
        drop(ratio_span);
        for (phase, cycle, sim) in &report.similarity {
            let phase_name = match phase {
                TrainPhase::Learning => "WOG",
                TrainPhase::Aggregation => "WG",
            };
            table.row([
                ratio.to_string(),
                phase_name.to_string(),
                cycle.to_string(),
                fnum(*sim),
            ]);
        }
        let wog_last = report
            .similarity
            .iter()
            .rfind(|(p, _, _)| *p == TrainPhase::Learning)
            .map_or(0.0, |&(_, _, s)| s);
        let wg_last = report
            .similarity
            .iter()
            .rfind(|(p, _, _)| *p == TrainPhase::Aggregation)
            .map_or(0.0, |&(_, _, s)| s);
        finals.push(format!(
            "ratio {ratio}: WOG plateau {:.3}, WG final {:.3}",
            wog_last, wg_last
        ));
        if let Some(last) = monitor.last() {
            finals.push(format!(
                "ratio {ratio} monitor cross-check: final diameter {:.4}, mean cosine to \
                 unified {:.3}, aggregation diameter non-increasing: {}",
                last.diameter,
                last.mean_cosine_to_ref,
                monitor.diameter_is_nonincreasing(Phase::Aggregation)
            ));
        }
    }
    FigureOutput {
        title: format!("Figure 5 — Q-value convergence ({n_pms} PMs)"),
        table,
        notes: {
            let mut n = finals;
            n.push(
                "paper: learning alone converges to ≈0.45 similarity; gossip aggregation \
                 drives it to 1.0 for all ratios"
                    .into(),
            );
            n
        },
    }
}

// ---------------------------------------------------------------------
// Figure 6 — fraction of overloaded / active PMs, + BFD baseline
// ---------------------------------------------------------------------

/// Regenerates Figure 6 from grid results: per (size, ratio, algorithm)
/// the mean active-PM count, the BFD baseline bins, and the fraction of
/// overloaded over active PMs.
pub fn fig6_packing(results: &[(Scenario, RunResult)]) -> FigureOutput {
    let mut table = TextTable::new([
        "size",
        "ratio",
        "algorithm",
        "mean_active_pms",
        "bfd_baseline",
        "overloaded_fraction",
    ]);
    for (size, ratio) in cells(results) {
        for algo in algorithms_of(results) {
            let rs = cell_results(results, size, ratio, algo);
            if rs.is_empty() {
                continue;
            }
            let mean_active: f64 = rs
                .iter()
                .map(|r| r.collector.mean_active_pms())
                .sum::<f64>()
                / rs.len() as f64;
            let bfd: f64 = rs.iter().map(|r| r.bfd_bins as f64).sum::<f64>() / rs.len() as f64;
            let frac: f64 = rs
                .iter()
                .map(|r| r.collector.mean_overloaded_fraction())
                .sum::<f64>()
                / rs.len() as f64;
            table.row([
                size.to_string(),
                ratio.to_string(),
                algo.label().to_string(),
                fnum(mean_active),
                fnum(bfd),
                fnum(frac),
            ]);
        }
    }
    FigureOutput {
        title: "Figure 6 — overloaded/active PM fraction and packing vs BFD baseline".into(),
        table,
        notes: vec![
            "paper: 75% of GRMP PMs, 58% of PABFD PMs, 22% of EcoCloud PMs but only 12% of \
             GLAP PMs are overloaded; GRMP/PABFD pack below the BFD line at high SLA cost"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Figure 7 — number of overloaded PMs (median, p10, p90)
// ---------------------------------------------------------------------

/// Regenerates Figure 7: order statistics of the per-round overloaded-PM
/// counts, pooled across repetitions.
pub fn fig7_overloaded(results: &[(Scenario, RunResult)]) -> FigureOutput {
    let mut table = TextTable::new(["size", "ratio", "algorithm", "p10", "median", "p90"]);
    for (size, ratio) in cells(results) {
        for algo in algorithms_of(results) {
            let rs = cell_results(results, size, ratio, algo);
            if rs.is_empty() {
                continue;
            }
            let pooled: Vec<f64> = rs
                .iter()
                .flat_map(|r| r.collector.overloaded_series())
                .collect();
            let (p10, med, p90) = p10_median_p90(&pooled);
            table.row([
                size.to_string(),
                ratio.to_string(),
                algo.label().to_string(),
                fnum(p10),
                fnum(med),
                fnum(p90),
            ]);
        }
    }
    FigureOutput {
        title: "Figure 7 — overloaded PMs per round (p10 / median / p90)".into(),
        table,
        notes: vec![
            "paper: GLAP has the fewest overloaded PMs — 43% less than EcoCloud, 78% less \
             than GRMP, 73% less than PABFD"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Figure 8 — number of migrations (median, p10, p90)
// ---------------------------------------------------------------------

/// Regenerates Figure 8: order statistics of per-round migration counts.
pub fn fig8_migrations(results: &[(Scenario, RunResult)]) -> FigureOutput {
    let mut table = TextTable::new([
        "size",
        "ratio",
        "algorithm",
        "p10",
        "median",
        "p90",
        "total_mean",
    ]);
    for (size, ratio) in cells(results) {
        for algo in algorithms_of(results) {
            let rs = cell_results(results, size, ratio, algo);
            if rs.is_empty() {
                continue;
            }
            let pooled: Vec<f64> = rs
                .iter()
                .flat_map(|r| r.collector.migration_series())
                .collect();
            let (p10, med, p90) = p10_median_p90(&pooled);
            let total: f64 = rs
                .iter()
                .map(|r| r.collector.total_migrations() as f64)
                .sum::<f64>()
                / rs.len() as f64;
            table.row([
                size.to_string(),
                ratio.to_string(),
                algo.label().to_string(),
                fnum(p10),
                fnum(med),
                fnum(p90),
                fnum(total),
            ]);
        }
    }
    FigureOutput {
        title: "Figure 8 — migrations per round (p10 / median / p90) and mean total".into(),
        table,
        notes: vec![
            "paper: GLAP needs the fewest migrations (−23% vs EcoCloud, −37% vs GRMP, −70% \
             vs PABFD); totals grow with the workload ratio"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Figure 9 — cumulative migrations over the day
// ---------------------------------------------------------------------

/// Regenerates Figure 9: mean cumulative migration count over time for one
/// cluster size, per ratio and algorithm, sampled every `stride` rounds.
pub fn fig9_cumulative(
    results: &[(Scenario, RunResult)],
    size: usize,
    stride: usize,
) -> FigureOutput {
    let mut table = TextTable::new(["ratio", "algorithm", "round", "cumulative_migrations"]);
    let ratios: Vec<usize> = {
        let mut r: Vec<usize> = results
            .iter()
            .filter(|(sc, _)| sc.n_pms == size)
            .map(|(sc, _)| sc.ratio)
            .collect();
        r.sort_unstable();
        r.dedup();
        r
    };
    for &ratio in &ratios {
        for algo in algorithms_of(results) {
            let rs = cell_results(results, size, ratio, algo);
            if rs.is_empty() {
                continue;
            }
            let series: Vec<Vec<u64>> = rs
                .iter()
                .map(|r| r.collector.cumulative_migrations())
                .collect();
            let rounds = series.iter().map(Vec::len).min().unwrap_or(0);
            let mut round = 0;
            while round < rounds {
                let mean: f64 =
                    series.iter().map(|s| s[round] as f64).sum::<f64>() / series.len() as f64;
                table.row([
                    ratio.to_string(),
                    algo.label().to_string(),
                    round.to_string(),
                    fnum(mean),
                ]);
                round += stride.max(1);
            }
        }
    }
    FigureOutput {
        title: format!("Figure 9 — cumulative migrations over the day ({size} PMs)"),
        table,
        notes: vec![
            "paper: the distributed protocols front-load migrations in early rounds; \
             PABFD grows almost linearly all day"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Figure 10 — energy overhead of migrations
// ---------------------------------------------------------------------

/// Regenerates Figure 10: mean total migration energy overhead (kJ) per
/// (size, ratio, algorithm).
pub fn fig10_energy(results: &[(Scenario, RunResult)]) -> FigureOutput {
    let mut table = TextTable::new(["size", "ratio", "algorithm", "energy_kj"]);
    for (size, ratio) in cells(results) {
        for algo in algorithms_of(results) {
            let rs = cell_results(results, size, ratio, algo);
            if rs.is_empty() {
                continue;
            }
            let kj: f64 = rs
                .iter()
                .map(|r| r.collector.total_migration_energy_j() / 1000.0)
                .sum::<f64>()
                / rs.len() as f64;
            table.row([
                size.to_string(),
                ratio.to_string(),
                algo.label().to_string(),
                fnum(kj),
            ]);
        }
    }
    FigureOutput {
        title: "Figure 10 — migration energy overhead (kJ)".into(),
        table,
        notes: vec![
            "paper: PABFD consumes the most migration energy, GLAP the least; more \
             migrations does not always mean more energy (VM size and timing matter)"
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Table I — SLA metric
// ---------------------------------------------------------------------

/// Regenerates Table I: the combined SLAV metric for every size-ratio
/// combination (mean across repetitions), one column per algorithm.
pub fn table1_sla(results: &[(Scenario, RunResult)]) -> FigureOutput {
    let algos = algorithms_of(results);
    let mut header: Vec<String> = vec!["size-ratio".into()];
    header.extend(algos.iter().map(|a| a.label().to_string()));
    let mut table = TextTable::new(header);
    for (size, ratio) in cells(results) {
        let mut row = vec![format!("{size}-{ratio}")];
        for &algo in &algos {
            let rs = cell_results(results, size, ratio, algo);
            if rs.is_empty() {
                row.push("-".into());
                continue;
            }
            let slav: f64 = rs.iter().map(|r| r.sla.slav).sum::<f64>() / rs.len() as f64;
            row.push(fnum(slav));
        }
        table.row(row);
    }
    FigureOutput {
        title: "Table I — SLA violation metric (SLAV = SLAVO × SLALM)".into(),
        table,
        notes: vec![
            "paper ordering: GLAP < EcoCloud < PABFD < GRMP, rising with workload ratio".into(),
        ],
    }
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Summarizes the GLAP ablation variants: overloaded fraction, migrations
/// and SLAV against the full protocol.
pub fn ablation_summary(results: &[(Scenario, RunResult)]) -> FigureOutput {
    let mut table = TextTable::new([
        "size",
        "ratio",
        "variant",
        "overloaded_fraction",
        "total_migrations",
        "slav",
        "mean_active",
    ]);
    for (size, ratio) in cells(results) {
        for algo in algorithms_of(results) {
            let rs = cell_results(results, size, ratio, algo);
            if rs.is_empty() {
                continue;
            }
            let frac: f64 = rs
                .iter()
                .map(|r| r.collector.mean_overloaded_fraction())
                .sum::<f64>()
                / rs.len() as f64;
            let mig: f64 = rs
                .iter()
                .map(|r| r.collector.total_migrations() as f64)
                .sum::<f64>()
                / rs.len() as f64;
            let slav: f64 = rs.iter().map(|r| r.sla.slav).sum::<f64>() / rs.len() as f64;
            let act: f64 = rs
                .iter()
                .map(|r| r.collector.mean_active_pms())
                .sum::<f64>()
                / rs.len() as f64;
            table.row([
                size.to_string(),
                ratio.to_string(),
                algo.label().to_string(),
                fnum(frac),
                fnum(mig),
                fnum(slav),
                fnum(act),
            ]);
        }
    }
    FigureOutput {
        title: "Ablations — GLAP variants (no veto / current-only states / no aggregation)".into(),
        table,
        notes: vec![
            "expected: removing the in-veto or the average-demand signal raises overloads; \
             removing aggregation leaves PMs with partial knowledge"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Grid {
        Grid {
            sizes: vec![30],
            ratios: vec![2],
            reps: 1,
            rounds: 40,
            glap: GlapConfig {
                learning_rounds: 15,
                aggregation_rounds: 8,
                ..GlapConfig::default()
            },
            trace_cfg: Default::default(),
        }
    }

    #[test]
    fn grid_run_produces_all_results() {
        let g = tiny_grid();
        let results = run_grid(&g, &Algorithm::PAPER_SET, Some(1), false);
        assert_eq!(results.len(), 4);
        let f6 = fig6_packing(&results);
        assert_eq!(f6.table.len(), 4);
        let f7 = fig7_overloaded(&results);
        assert_eq!(f7.table.len(), 4);
        let f8 = fig8_migrations(&results);
        assert_eq!(f8.table.len(), 4);
        let f10 = fig10_energy(&results);
        assert_eq!(f10.table.len(), 4);
        let t1 = table1_sla(&results);
        assert_eq!(t1.table.len(), 1);
    }

    #[test]
    fn checkpointed_grid_matches_plain_grid_and_skips_finished_cells() {
        let g = tiny_grid();
        let algos = [Algorithm::Grmp, Algorithm::Pabfd];
        let dir = std::env::temp_dir().join(format!("glap-ckpt-grid-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let plain = run_grid(&g, &algos, Some(1), false);
        let swept = run_grid_checkpointed(&g, &algos, Some(1), false, 10, &dir);
        assert_eq!(plain.len(), swept.len());
        for ((sa, ra), (sb, rb)) in plain.iter().zip(&swept) {
            assert_eq!(sa.id(), sb.id());
            assert_eq!(ra.collector.samples, rb.collector.samples);
            assert_eq!(ra.sla, rb.sla);
        }
        // Every cell left a .done marker and no lingering .ckpt.
        for (sc, _) in &swept {
            assert!(done_path(&dir, sc).exists());
            assert!(!checkpoint_path(&dir, sc).exists());
        }
        // A second sweep over the same directory loads the results
        // instead of recomputing (identical output either way).
        let again = run_grid_checkpointed(&g, &algos, Some(1), false, 10, &dir);
        for ((_, ra), (_, rb)) in swept.iter().zip(&again) {
            assert_eq!(ra.collector.samples, rb.collector.samples);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fig9_samples_with_stride() {
        let g = tiny_grid();
        let results = run_grid(&g, &[Algorithm::Glap], Some(1), false);
        let f9 = fig9_cumulative(&results, 30, 10);
        // 40 rounds / stride 10 → 4 samples.
        assert_eq!(f9.table.len(), 4);
    }

    #[test]
    fn fig5_produces_both_phases() {
        let glap = GlapConfig {
            learning_rounds: 8,
            aggregation_rounds: 5,
            ..GlapConfig::default()
        };
        let out = fig5_convergence(25, &[2], glap, 7);
        // 8 learning + 5 aggregation rows.
        assert_eq!(out.table.len(), 13);
    }

    #[test]
    fn render_includes_title_and_notes() {
        let g = tiny_grid();
        let results = run_grid(&g, &[Algorithm::Glap], Some(1), false);
        let out = fig6_packing(&results);
        let s = out.render();
        assert!(s.contains("Figure 6"));
        assert!(s.contains("note:"));
    }
}
