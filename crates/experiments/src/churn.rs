//! Churn simulation: VM arrivals and departures during the measured day.
//!
//! The paper's learning component "runs as required by a predefined
//! policy e.g., if the arrival and departure rates of VMs exceed a
//! threshold compared to the last learning time" (§IV-B). This module
//! drives that scenario: a Poisson-ish stream of arrivals (placed by the
//! cloud's admission service on random active PMs) and random departures,
//! with the policy notified of the churn volume so GLAP's re-trigger can
//! fire.

use crate::scenario::Scenario;
use glap_baselines::bfd_baseline;
use glap_cluster::{DataCenter, DataCenterConfig, PmId, VmId, VmSpec};
use glap_dcsim::{stream_rng, ConsolidationPolicy, NetworkModel, Observer, RoundCtx, Stream};
use glap_metrics::{MetricsCollector, RunResult};
use glap_telemetry::Tracer;
use glap_workload::{GoogleLikeTraceGen, GoogleTraceConfig, MaterializedTrace, OffsetTrace};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Churn intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Expected VM arrivals per round (thinned Bernoulli per slot).
    pub arrivals_per_round: f64,
    /// Per-round probability that each live VM departs.
    pub departure_prob: f64,
    /// Demand distribution of *arriving* VMs. `None` draws arrivals from
    /// the scenario's own trace config (stationary churn); `Some` models a
    /// workload distribution shift — the case the paper's learning
    /// re-trigger exists for.
    pub arrival_cfg: Option<GoogleTraceConfig>,
}

impl ChurnConfig {
    /// Balanced churn: arrivals sized so the population is roughly stable
    /// for the given initial VM count.
    pub fn balanced(n_vms: usize, departure_prob: f64) -> Self {
        ChurnConfig {
            arrivals_per_round: n_vms as f64 * departure_prob,
            departure_prob,
            arrival_cfg: None,
        }
    }

    /// Same, but arriving VMs follow a different demand distribution.
    pub fn shifted(n_vms: usize, departure_prob: f64, arrival_cfg: GoogleTraceConfig) -> Self {
        ChurnConfig {
            arrivals_per_round: n_vms as f64 * departure_prob,
            departure_prob,
            arrival_cfg: Some(arrival_cfg),
        }
    }
}

/// Builds a churn world: like the standard one, but the trace is sized
/// for the maximum possible VM population (initial + all arrivals).
pub fn build_churn_world(sc: &Scenario, churn: &ChurnConfig) -> (DataCenter, MaterializedTrace) {
    let mut dc = DataCenter::new(DataCenterConfig::paper(sc.n_pms));
    for i in 0..sc.n_vms() {
        dc.add_vm(sc.vm_mix.spec(i));
    }
    dc.random_placement(&mut stream_rng(sc.world_seed(), Stream::Placement));

    let total_rounds = sc.glap.learning_rounds + sc.rounds as usize;
    // Head-room for arrivals: 2× the expectation, so the trace never runs
    // out of series even in a high tail.
    let max_arrivals = (churn.arrivals_per_round * sc.rounds as f64 * 2.0).ceil() as usize;
    let mut trace_rng = stream_rng(sc.world_seed(), Stream::Trace);
    let mut trace =
        GoogleLikeTraceGen::new(sc.trace_cfg).generate(sc.n_vms(), total_rounds, &mut trace_rng);
    let arrivals_gen = GoogleLikeTraceGen::new(churn.arrival_cfg.unwrap_or(sc.trace_cfg));
    let arrivals_trace = arrivals_gen.generate(max_arrivals, total_rounds, &mut trace_rng);
    trace.append_vms(&arrivals_trace);
    (dc, trace)
}

/// Runs a consolidation day with churn. Arrivals are placed on a random
/// active PM (the cloud's admission service, out of scope for DVMC);
/// departures pick uniformly among live VMs. The policy sees the number
/// of churn events each round in [`RoundCtx::churn_events`], and gossips
/// over the scenario's fault profile.
pub fn run_churn_scenario(
    sc: &Scenario,
    churn: &ChurnConfig,
    dc: &mut DataCenter,
    trace: &MaterializedTrace,
    policy: &mut dyn ConsolidationPolicy,
) -> RunResult {
    let mut day = OffsetTrace::new(trace, sc.glap.learning_rounds as u64);
    let mut collector = MetricsCollector::new();
    let mut policy_rng = stream_rng(sc.policy_seed(), Stream::Policy);
    let mut churn_rng = stream_rng(sc.world_seed(), Stream::Custom(42));
    let mut net = NetworkModel::new(sc.n_pms, sc.fault.clone(), sc.policy_seed());

    policy.init(dc, &mut policy_rng);
    for _ in 0..sc.rounds {
        let round = dc.round();

        // --- churn events -------------------------------------------
        let mut events = 0usize;
        // Departures.
        let live: Vec<VmId> = dc
            .vms()
            .filter(|v| v.host.is_some())
            .map(|v| v.id)
            .collect();
        for vm in live {
            if churn_rng.gen::<f64>() < churn.departure_prob {
                dc.remove_vm(vm);
                events += 1;
            }
        }
        // Arrivals (Bernoulli-thinned to the expected rate).
        let mut arrivals = churn.arrivals_per_round.floor() as usize;
        if churn_rng.gen::<f64>() < churn.arrivals_per_round.fract() {
            arrivals += 1;
        }
        let active: Vec<PmId> = dc.active_pm_ids().collect();
        for _ in 0..arrivals {
            if dc.n_vms() >= trace.n_vms() {
                break; // trace head-room exhausted (statistically unreachable)
            }
            let vm = dc.add_vm(VmSpec::EC2_MICRO);
            if let Some(&pm) = active.choose(&mut churn_rng) {
                dc.place(vm, pm);
                events += 1;
            }
        }
        // --- the usual engine round ---------------------------------
        dc.step(&mut day);
        net.begin_round(round);
        let mut ctx = RoundCtx {
            round,
            dc,
            rng: &mut policy_rng,
            churn_events: events,
            net: &mut net,
            tracer: &Tracer::off(),
        };
        policy.round(&mut ctx);
        debug_assert!(dc.check_invariants().is_ok());
        collector.on_round_end(round, dc);
    }

    let mut result = RunResult::from_run(policy.name(), collector, dc);
    result.bfd_bins = bfd_baseline(dc);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::build_policy;
    use crate::scenario::Algorithm;
    use glap::GlapConfig;

    fn sc(algorithm: Algorithm) -> Scenario {
        Scenario {
            rounds: 80,
            glap: GlapConfig {
                learning_rounds: 20,
                aggregation_rounds: 8,
                ..Default::default()
            },
            ..Scenario::paper(30, 3, 0, algorithm)
        }
    }

    #[test]
    fn churn_world_sizes_trace_for_arrivals() {
        let s = sc(Algorithm::Glap);
        let churn = ChurnConfig {
            arrivals_per_round: 2.0,
            departure_prob: 0.01,
            arrival_cfg: None,
        };
        let (dc, trace) = build_churn_world(&s, &churn);
        assert_eq!(dc.n_vms(), 90);
        assert!(trace.n_vms() >= 90 + 2 * 80);
    }

    #[test]
    fn population_stays_roughly_balanced() {
        let s = sc(Algorithm::Grmp);
        let churn = ChurnConfig::balanced(90, 0.02);
        let (mut dc, trace) = build_churn_world(&s, &churn);
        let mut policy = build_policy(&s, &dc, &trace);
        let r = run_churn_scenario(&s, &churn, &mut dc, &trace, policy.as_mut());
        assert_eq!(r.collector.samples.len(), 80);
        let live = dc.vms().filter(|v| v.host.is_some()).count();
        assert!(live > 45 && live < 160, "population drifted to {live}");
        dc.check_invariants().unwrap();
    }

    #[test]
    fn churn_runs_are_reproducible() {
        let s = sc(Algorithm::Glap);
        let churn = ChurnConfig::balanced(90, 0.02);
        let run = || {
            let (mut dc, trace) = build_churn_world(&s, &churn);
            let mut policy = build_policy(&s, &dc, &trace);
            run_churn_scenario(&s, &churn, &mut dc, &trace, policy.as_mut())
        };
        let a = run();
        let b = run();
        assert_eq!(a.collector.samples, b.collector.samples);
    }

    #[test]
    fn glap_retrain_triggers_under_churn() {
        use glap::{train, unified_table, GlapPolicy, RetrainConfig};
        let s = sc(Algorithm::Glap);
        let churn = ChurnConfig::balanced(90, 0.03);
        let (mut dc, trace) = build_churn_world(&s, &churn);
        let mut train_dc = dc.clone();
        let mut train_trace = trace.clone();
        let (tables, _) = train(
            &mut train_dc,
            &mut train_trace,
            &s.glap,
            s.policy_seed(),
            false,
        );
        let mut policy = GlapPolicy::with_shared_table(s.glap, unified_table(&tables));
        policy.retrain = Some(RetrainConfig {
            churn_threshold: 30,
            interval: None,
            learning_window: 5,
        });
        run_churn_scenario(&s, &churn, &mut dc, &trace, &mut policy);
        assert!(policy.retrainings > 0, "re-training never triggered");
    }
}
