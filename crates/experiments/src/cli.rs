//! A small argument parser shared by the experiment binaries (kept
//! in-repo — the approved dependency list has no CLI crate).

use crate::noderun::TransportKind;
use crate::runner::CheckpointOpts;
use crate::scenario::{Algorithm, Grid};
use glap_dcsim::FaultProfile;
use glap_profile::Profiler;
use glap_telemetry::{JsonlSink, Tracer};
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Cli {
    /// The experiment grid to run.
    pub grid: Grid,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Worker threads (None = available parallelism).
    pub threads: Option<usize>,
    /// Per-scenario progress logging.
    pub verbose: bool,
    /// Write a JSONL event trace of the first scenario here.
    pub trace_out: Option<PathBuf>,
    /// Write per-round counter/histogram CSVs of the first scenario here
    /// (`<stem>.csv` for counters, `<stem>_hist.csv` for histograms).
    pub counters_out: Option<PathBuf>,
    /// Replay a JSONL trace (diagnose mode) instead of running scenarios.
    pub replay: Option<PathBuf>,
    /// Write a snapshot every this many measured rounds (0 = off).
    pub checkpoint_every: u64,
    /// Directory for per-scenario checkpoint/`.done` files; sweeps with
    /// this set skip finished cells and resume interrupted ones.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume a single-scenario run from this snapshot file.
    pub resume: Option<PathBuf>,
    /// Interrupt a single-scenario run after this many measured rounds.
    pub stop_at_round: Option<u64>,
    /// Algorithm override for single-scenario binaries.
    pub algo: Option<Algorithm>,
    /// Transport hosting the node fleet (`node_runtime` binary).
    pub transport: TransportKind,
    /// Per-message drop probability for fault injection.
    pub drop_prob: f64,
    /// Per-round crash probability for fault injection.
    pub crash_rate: f64,
    /// Per-round recovery probability for crashed PMs.
    pub recovery_rate: f64,
    /// Write the serialized post-training Q-tables here
    /// (`node_runtime`: the CI byte-identity artifact).
    pub dump_tables: Option<PathBuf>,
    /// Wall-clock profiling: print the per-phase breakdown and write a
    /// `profile_*.json` artifact.
    pub profile: bool,
    /// Override path for the profile JSON artifact.
    pub profile_out: Option<PathBuf>,
    /// Live stderr heartbeat (round rate, ETA, sweep cell).
    pub progress: bool,
    /// `perf_gate`: allowed slowdown over the committed baseline
    /// (1.0 = 100%, i.e. regress only past 2× the baseline).
    pub tolerance: f64,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            grid: Grid::reduced(),
            out_dir: PathBuf::from("results"),
            threads: None,
            verbose: false,
            trace_out: None,
            counters_out: None,
            replay: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: None,
            stop_at_round: None,
            algo: None,
            transport: TransportKind::Sim,
            drop_prob: 0.0,
            crash_rate: 0.0,
            recovery_rate: 0.0,
            dump_tables: None,
            profile: false,
            profile_out: None,
            progress: false,
            tolerance: 1.0,
        }
    }
}

impl Cli {
    /// Builds the tracer requested by the telemetry flags: a JSONL sink
    /// when `--trace` is given, counting-only when just `--counters`, and
    /// [`Tracer::off`] (zero overhead, byte-identical results) otherwise.
    pub fn tracer(&self) -> Tracer {
        if let Some(path) = &self.trace_out {
            match JsonlSink::create(path) {
                Ok(sink) => Tracer::new(Box::new(sink)),
                Err(e) => {
                    eprintln!("cannot create trace file {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        } else if self.counters_out.is_some() {
            Tracer::counting()
        } else {
            Tracer::off()
        }
    }

    /// Writes the counter snapshots (`<path>`) and latency histograms
    /// (`<stem>_hist.csv`) accumulated by `tracer`, if `--counters` was
    /// given.
    pub fn write_counters(&self, tracer: &Tracer) -> std::io::Result<()> {
        let Some(path) = &self.counters_out else {
            return Ok(());
        };
        std::fs::write(path, tracer.counters_csv())?;
        let mut hist = path.clone();
        let stem = hist
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "counters".into());
        hist.set_file_name(format!("{stem}_hist.csv"));
        std::fs::write(hist, tracer.histograms_csv())
    }

    /// The fault profile requested by the `--drop`/`--crash`/`--recover`
    /// flags ([`FaultProfile::none`]-equivalent when none were given, so
    /// default runs stay byte-identical to the ideal-network path).
    pub fn fault(&self) -> FaultProfile {
        FaultProfile::faulty(self.drop_prob, self.crash_rate, self.recovery_rate)
    }

    /// Builds the profiler requested by `--profile`: enabled (span tree
    /// rooted now) or [`Profiler::off`] (zero overhead). Profiling is
    /// strictly observational — results are byte-identical either way.
    pub fn profiler(&self) -> Profiler {
        if self.profile {
            Profiler::enabled()
        } else {
            Profiler::off()
        }
    }

    /// Finishes a profiled run: prints the per-phase breakdown to stdout
    /// and writes the JSON artifact (`--profile-out`, defaulting to
    /// `<out_dir>/profile_<stem>.json`). No-op when `--profile` was not
    /// given. Returns the artifact path when one was written.
    pub fn finish_profile(&self, stem: &str, profiler: &Profiler) -> Option<PathBuf> {
        if !profiler.is_on() {
            return None;
        }
        let report = profiler.snapshot();
        print!("{}", report.render());
        let path = self
            .profile_out
            .clone()
            .unwrap_or_else(|| self.out_dir.join(format!("profile_{stem}.json")));
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => {
                eprintln!("profile written to {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("cannot write profile {}: {e}", path.display());
                None
            }
        }
    }

    /// The checkpoint/resume options requested by the snapshot flags.
    pub fn checkpoint_opts(&self) -> CheckpointOpts {
        CheckpointOpts {
            every: self.checkpoint_every,
            dir: self.checkpoint_dir.clone(),
            resume: self.resume.clone(),
            stop_at_round: self.stop_at_round,
        }
    }
}

/// Parses an algorithm label (as printed by [`Algorithm::label`],
/// case-insensitive) for `--algo`.
pub fn parse_algorithm(s: &str) -> Result<Algorithm, String> {
    Algorithm::PAPER_SET
        .iter()
        .chain(Algorithm::ABLATION_SET.iter())
        .copied()
        .find(|a| a.label().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            format!(
                "unknown algorithm {s} (expected one of GLAP, GLAP-noveto, GLAP-current, \
                 GLAP-noagg, GRMP, EcoCloud, PABFD)"
            )
        })
}

/// Usage text shared by all binaries.
pub const USAGE: &str = "options:
  --quick             smoke-test grid (100 PMs, 120 rounds, 2 reps)
  --full              the paper's full grid (500/1000/2000 PMs, 20 reps) — hours of CPU
  --sizes a,b,c       cluster sizes                      (default 500)
  --ratios a,b,c      VM:PM ratios                       (default 2,3,4)
  --reps n            repetitions per cell               (default 5)
  --rounds n          measured rounds                    (default 720)
  --train n           GLAP learning rounds               (default 100)
  --agg n             GLAP aggregation rounds            (default 30)
  --codec kind        aggregation payload codec: identity (bit-exact legacy
                      wire, default), delta, quantized, or priority
  --threads n         worker threads for the scenario grid and the in-training
                      per-PM pool (default: GLAP_THREADS env var, else all
                      cores; results are byte-identical at any thread count)
  --out dir           CSV output directory               (default results/)
  --verbose           log each finished scenario
  --trace file        write a JSONL event trace of the first scenario
  --counters file     write per-round counter CSVs of the first scenario
  --replay file       replay a JSONL trace and print a per-round digest
  --checkpoint-every n  write a snapshot every n measured rounds (0 = off)
  --checkpoint-dir dir  checkpoint directory; sweeps skip finished cells
                        and resume interrupted ones from it
  --resume file       resume a single-scenario run from a snapshot
  --stop-at-round n   interrupt a single-scenario run after n rounds
  --algo name         algorithm for single-scenario binaries (GLAP, GRMP,
                      EcoCloud, PABFD, GLAP-noveto, GLAP-current, GLAP-noagg)
  --transport kind    node_runtime: host the node fleet in-process (sim) or
                      on real mpsc channel workers (channel); byte-identical
                      either way (default sim)
  --drop p            per-message drop probability          (default 0)
  --crash p           per-round PM crash probability        (default 0)
  --recover p         per-round crashed-PM recovery probability (default 0)
  --dump-tables file  node_runtime: write the serialized post-training
                      Q-tables (the sim-vs-channel comparison artifact)
  --profile           print a per-phase wall-clock breakdown after the run
                      and write a profile_*.json artifact (observational:
                      results stay byte-identical)
  --profile-out file  override the profile artifact path
  --progress          live stderr heartbeat: round rate, ETA, sweep cell
  --tolerance x       perf_gate: allowed slowdown over the baseline
                      (default 1.0 = fail only past 2x)
";

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("bad number: {p}"))
        })
        .collect()
}

/// Parses options from an iterator of arguments (without the program
/// name). Unknown options produce an error string suitable for printing
/// with [`USAGE`].
pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.into_iter();
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => cli.grid = Grid::quick(),
            "--full" => cli.grid = Grid::paper(),
            "--sizes" => cli.grid.sizes = parse_list(&need(&mut it, "--sizes")?)?,
            "--ratios" => cli.grid.ratios = parse_list(&need(&mut it, "--ratios")?)?,
            "--reps" => {
                cli.grid.reps = need(&mut it, "--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--rounds" => {
                cli.grid.rounds = need(&mut it, "--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--train" => {
                cli.grid.glap.learning_rounds = need(&mut it, "--train")?
                    .parse()
                    .map_err(|e| format!("--train: {e}"))?;
            }
            "--agg" => {
                cli.grid.glap.aggregation_rounds = need(&mut it, "--agg")?
                    .parse()
                    .map_err(|e| format!("--agg: {e}"))?;
            }
            "--codec" => cli.grid.glap.codec = need(&mut it, "--codec")?.parse()?,
            "--threads" => {
                cli.threads = Some(
                    need(&mut it, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                );
            }
            "--out" => cli.out_dir = PathBuf::from(need(&mut it, "--out")?),
            "--verbose" => cli.verbose = true,
            "--trace" => cli.trace_out = Some(PathBuf::from(need(&mut it, "--trace")?)),
            "--counters" => cli.counters_out = Some(PathBuf::from(need(&mut it, "--counters")?)),
            "--replay" => cli.replay = Some(PathBuf::from(need(&mut it, "--replay")?)),
            "--checkpoint-every" => {
                cli.checkpoint_every = need(&mut it, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--checkpoint-dir" => {
                cli.checkpoint_dir = Some(PathBuf::from(need(&mut it, "--checkpoint-dir")?));
            }
            "--resume" => cli.resume = Some(PathBuf::from(need(&mut it, "--resume")?)),
            "--stop-at-round" => {
                cli.stop_at_round = Some(
                    need(&mut it, "--stop-at-round")?
                        .parse()
                        .map_err(|e| format!("--stop-at-round: {e}"))?,
                );
            }
            "--algo" => cli.algo = Some(parse_algorithm(&need(&mut it, "--algo")?)?),
            "--transport" => cli.transport = need(&mut it, "--transport")?.parse()?,
            "--drop" => {
                cli.drop_prob = need(&mut it, "--drop")?
                    .parse()
                    .map_err(|e| format!("--drop: {e}"))?;
            }
            "--crash" => {
                cli.crash_rate = need(&mut it, "--crash")?
                    .parse()
                    .map_err(|e| format!("--crash: {e}"))?;
            }
            "--recover" => {
                cli.recovery_rate = need(&mut it, "--recover")?
                    .parse()
                    .map_err(|e| format!("--recover: {e}"))?;
            }
            "--dump-tables" => {
                cli.dump_tables = Some(PathBuf::from(need(&mut it, "--dump-tables")?));
            }
            "--profile" => cli.profile = true,
            "--profile-out" => {
                cli.profile = true;
                cli.profile_out = Some(PathBuf::from(need(&mut it, "--profile-out")?));
            }
            "--progress" => cli.progress = true,
            "--tolerance" => {
                cli.tolerance = need(&mut it, "--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    Ok(cli)
}

/// Parses from the process arguments, exiting with usage on error.
///
/// A parsed `--threads` is installed as the process-wide worker-count
/// default ([`glap_par::set_default_threads`]), so *every* pool in the
/// binary — the scenario grid fan-out and the per-PM learning-phase
/// pool inside `glap::train` — honors the flag, including binaries that
/// never look at `cli.threads` themselves. Without the flag the pools
/// fall back to `GLAP_THREADS`, then to all cores.
pub fn parse_or_exit() -> Cli {
    match parse(std::env::args().skip(1)) {
        Ok(cli) => {
            if let Some(n) = cli.threads {
                glap_par::set_default_threads(n);
            }
            cli
        }
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_are_reduced_grid() {
        let cli = parse(args("")).unwrap();
        assert_eq!(cli.grid.sizes, vec![500]);
        assert_eq!(cli.grid.reps, 5);
    }

    #[test]
    fn full_and_quick_presets() {
        assert_eq!(parse(args("--full")).unwrap().grid.reps, 20);
        assert_eq!(parse(args("--quick")).unwrap().grid.rounds, 120);
    }

    #[test]
    fn lists_and_values() {
        let cli = parse(args(
            "--sizes 100,200 --ratios 2 --reps 7 --rounds 99 --threads 3",
        ))
        .unwrap();
        assert_eq!(cli.grid.sizes, vec![100, 200]);
        assert_eq!(cli.grid.ratios, vec![2]);
        assert_eq!(cli.grid.reps, 7);
        assert_eq!(cli.grid.rounds, 99);
        assert_eq!(cli.threads, Some(3));
    }

    #[test]
    fn glap_training_knobs() {
        let cli = parse(args("--train 42 --agg 17")).unwrap();
        assert_eq!(cli.grid.glap.learning_rounds, 42);
        assert_eq!(cli.grid.glap.aggregation_rounds, 17);
    }

    #[test]
    fn codec_flag_parses_all_kinds() {
        use glap::prelude::CodecKind;
        assert_eq!(
            parse(args("")).unwrap().grid.glap.codec,
            CodecKind::Identity
        );
        for (s, kind) in [
            ("identity", CodecKind::Identity),
            ("delta", CodecKind::Delta),
            ("quantized", CodecKind::Quantized),
            ("priority", CodecKind::Priority),
        ] {
            let cli = parse(args(&format!("--codec {s}"))).unwrap();
            assert_eq!(cli.grid.glap.codec, kind);
        }
        assert!(parse(args("--codec morse")).is_err());
        assert!(parse(args("--codec")).is_err());
    }

    #[test]
    fn telemetry_flags() {
        let cli = parse(args("--trace t.jsonl --counters c.csv --replay old.jsonl")).unwrap();
        assert_eq!(cli.trace_out, Some(PathBuf::from("t.jsonl")));
        assert_eq!(cli.counters_out, Some(PathBuf::from("c.csv")));
        assert_eq!(cli.replay, Some(PathBuf::from("old.jsonl")));
        assert_eq!(parse(args("")).unwrap().trace_out, None);
    }

    #[test]
    fn unknown_flag_errors() {
        assert!(parse(args("--nope")).is_err());
        assert!(parse(args("--sizes")).is_err());
        assert!(parse(args("--sizes abc")).is_err());
    }

    #[test]
    fn checkpoint_flags() {
        let cli = parse(args(
            "--checkpoint-every 50 --checkpoint-dir ckpts --resume c.ckpt --stop-at-round 100",
        ))
        .unwrap();
        assert_eq!(cli.checkpoint_every, 50);
        assert_eq!(cli.checkpoint_dir, Some(PathBuf::from("ckpts")));
        assert_eq!(cli.resume, Some(PathBuf::from("c.ckpt")));
        assert_eq!(cli.stop_at_round, Some(100));
        let opts = cli.checkpoint_opts();
        assert_eq!(opts.every, 50);
        assert_eq!(opts.stop_at_round, Some(100));
        let off = parse(args("")).unwrap();
        assert_eq!(off.checkpoint_every, 0);
        assert!(off.checkpoint_dir.is_none());
    }

    #[test]
    fn transport_and_fault_flags() {
        let cli = parse(args(
            "--transport channel --drop 0.05 --crash 0.01 --recover 0.3 --dump-tables t.bin",
        ))
        .unwrap();
        assert_eq!(cli.transport, TransportKind::Channel);
        assert_eq!(cli.drop_prob, 0.05);
        assert_eq!(cli.crash_rate, 0.01);
        assert_eq!(cli.recovery_rate, 0.3);
        assert_eq!(cli.dump_tables, Some(PathBuf::from("t.bin")));
        assert!(!cli.fault().is_ideal());
        let off = parse(args("")).unwrap();
        assert_eq!(off.transport, TransportKind::Sim);
        assert!(off.fault().is_ideal());
        assert!(parse(args("--transport carrier-pigeon")).is_err());
    }

    #[test]
    fn profile_and_progress_flags() {
        let cli = parse(args("--profile --progress --tolerance 0.25")).unwrap();
        assert!(cli.profile);
        assert!(cli.progress);
        assert_eq!(cli.tolerance, 0.25);
        assert!(cli.profiler().is_on());
        let cli = parse(args("--profile-out p.json")).unwrap();
        assert!(cli.profile, "--profile-out implies --profile");
        assert_eq!(cli.profile_out, Some(PathBuf::from("p.json")));
        let off = parse(args("")).unwrap();
        assert!(!off.profile && !off.progress);
        assert_eq!(off.tolerance, 1.0);
        assert!(!off.profiler().is_on());
        assert!(off.finish_profile("x", &off.profiler()).is_none());
    }

    #[test]
    fn algo_flag_parses_labels_case_insensitively() {
        assert_eq!(
            parse(args("--algo grmp")).unwrap().algo,
            Some(Algorithm::Grmp)
        );
        assert_eq!(
            parse(args("--algo GLAP-noagg")).unwrap().algo,
            Some(Algorithm::GlapNoAggregation)
        );
        assert_eq!(
            parse(args("--algo EcoCloud")).unwrap().algo,
            Some(Algorithm::EcoCloud)
        );
        assert!(parse(args("--algo nope")).is_err());
    }
}
