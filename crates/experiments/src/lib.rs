//! # glap-experiments — the evaluation harness
//!
//! Regenerates every figure and table of the GLAP paper's evaluation
//! (§V): scenario grids ([`scenario`]), end-to-end single runs
//! ([`runner`]), a parallel sweep pool ([`pool`]), per-figure aggregation
//! ([`figures`]), and text/CSV reporting ([`report`]).
//!
//! One binary per experiment lives in `src/bin/`:
//! `fig5_convergence`, `fig6_packing`, `fig7_overloaded`,
//! `fig8_migrations`, `fig9_cumulative`, `fig10_energy`, `table1_sla`,
//! `ablations`, and `all_experiments` (runs the grid once and emits
//! everything). All accept `--quick` / `--full` / explicit grid options
//! (see [`cli::USAGE`]).

pub mod checkpoint;
pub mod churn;
pub mod cli;
pub mod figures;
pub mod noderun;
pub mod perf;
pub mod pool;
pub mod replay;
pub mod report;
pub mod runner;
pub mod scenario;

pub use checkpoint::{
    check_meta, checkpoint_path, decode_result, done_path, encode_checkpoint, encode_result,
    resume_scenario, unprimed_policy, ResumedRun,
};
pub use churn::{build_churn_world, run_churn_scenario, ChurnConfig};
pub use cli::{parse_or_exit, Cli};
pub use figures::{
    ablation_summary, fig10_energy, fig5_convergence, fig5_convergence_profiled, fig6_packing,
    fig7_overloaded, fig8_migrations, fig9_cumulative, run_grid, run_grid_checkpointed,
    run_grid_progress, run_grid_with, table1_sla, FigureOutput,
};
pub use noderun::{
    encode_tables, node_checkpoint_path, run_node_scenario, run_node_scenario_instrumented,
    NodeRunOutcome, TransportKind,
};
pub use perf::{
    codec_records, git_rev, hotpath_records, run_suite, scale_records, scale_records_at,
    snapshot_records, PerfCase, PERF_SUITE, SCALE_SIZES,
};
pub use pool::parallel_map;
pub use replay::{replay_digest, ReplayDigest, RoundDigest};
pub use report::{downsample, fnum, rounds_csv, sparkline, TextTable};
pub use runner::{
    build_policy, build_policy_instrumented, build_policy_traced, build_world, run_scenario,
    run_scenario_checkpointed, run_scenario_instrumented, run_scenario_traced, CheckpointOpts,
};
pub use scenario::{Algorithm, Grid, Scenario, VmMix};
