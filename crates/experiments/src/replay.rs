//! Offline trace replay: parses a JSONL event trace (written by a
//! [`glap_telemetry::JsonlSink`]) back into typed events and folds it
//! into a per-round digest — dropped/timed-out messages, veto and abort
//! tallies, crashes, migrations, and the convergence series.
//!
//! Parsing is strict: every line must round-trip (`to_json(from_json(l))
//! == l`), so replaying a trace doubles as schema validation of the
//! whole file.

use glap_telemetry::{AbortReason, Event, EventKind, Phase};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::BufRead;

/// Aggregated telemetry of one `(phase, round)` group.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundDigest {
    /// Simulation round the digest covers.
    pub round: u64,
    /// Events in the round.
    pub events: usize,
    /// Messages dropped in flight.
    pub dropped: usize,
    /// Requests whose reply missed the timeout.
    pub timed_out: usize,
    /// Sends/requests addressed to a crashed PM.
    pub target_down: usize,
    /// PM crashes.
    pub crashes: usize,
    /// PM recoveries.
    pub recoveries: usize,
    /// Completed shuffles.
    pub shuffles: usize,
    /// Applied Q-merges.
    pub merges: usize,
    /// Committed migrations.
    pub migrations: usize,
    /// π_in vetoes.
    pub vetoes: usize,
    /// Checkpoints written during the round.
    pub checkpoints: usize,
    /// Aborted transfers by reason.
    pub aborts: BTreeMap<AbortReason, usize>,
    /// Q-table population diameter, when sampled this round.
    pub diameter: Option<f64>,
}

/// Whole-trace digest: rounds per phase, in file order.
#[derive(Debug, Clone, Default)]
pub struct ReplayDigest {
    /// `(phase, per-round digest)` groups in trace order.
    pub rounds: Vec<(Phase, RoundDigest)>,
    /// Total events parsed.
    pub events: usize,
}

impl ReplayDigest {
    fn entry(&mut self, phase: Phase, round: u64) -> &mut RoundDigest {
        let fresh = match self.rounds.last() {
            Some((p, d)) => *p != phase || d.round != round,
            None => true,
        };
        if fresh {
            self.rounds.push((
                phase,
                RoundDigest {
                    round,
                    ..RoundDigest::default()
                },
            ));
        }
        &mut self.rounds.last_mut().expect("just pushed").1
    }

    /// Folds one event into the digest.
    pub fn fold(&mut self, ev: &Event) {
        self.events += 1;
        let d = self.entry(ev.phase, ev.round);
        d.events += 1;
        match ev.kind {
            EventKind::MsgDropped { .. } => d.dropped += 1,
            EventKind::MsgTimedOut { .. } => d.timed_out += 1,
            EventKind::MsgTargetDown { .. } => d.target_down += 1,
            EventKind::PmCrashed { .. } => d.crashes += 1,
            EventKind::PmRecovered { .. } => d.recoveries += 1,
            EventKind::ShuffleCompleted { .. } => d.shuffles += 1,
            EventKind::MergeApplied { .. } => d.merges += 1,
            EventKind::MigrationCommitted { .. } => d.migrations += 1,
            EventKind::MigrationVetoed { .. } => d.vetoes += 1,
            EventKind::MigrationAborted { reason, .. } => {
                *d.aborts.entry(reason).or_insert(0) += 1;
            }
            EventKind::CheckpointWritten => d.checkpoints += 1,
            EventKind::ConvergenceSampled { diameter, .. } => d.diameter = Some(diameter),
            _ => {}
        }
    }

    /// Total vetoes across all rounds.
    pub fn total_vetoes(&self) -> usize {
        self.rounds.iter().map(|(_, d)| d.vetoes).sum()
    }

    /// Total dropped messages across all rounds.
    pub fn total_dropped(&self) -> usize {
        self.rounds.iter().map(|(_, d)| d.dropped).sum()
    }

    /// Renders the digest as the human-readable report `diagnose
    /// --replay` prints: one line per round with activity, then totals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>7} {:>5} {:>5} {:>6} {:>6} {:>6} {:>6}  vetoes/aborts, diameter",
            "phase", "round", "events", "drop", "t/o", "crash", "shufl", "merge", "migr"
        );
        for (phase, d) in &self.rounds {
            let mut tail = String::new();
            if d.vetoes > 0 {
                let _ = write!(tail, "veto×{}", d.vetoes);
            }
            for (reason, n) in &d.aborts {
                if !tail.is_empty() {
                    tail.push(' ');
                }
                let _ = write!(tail, "{}×{}", reason.tag(), n);
            }
            if let Some(diam) = d.diameter {
                if !tail.is_empty() {
                    tail.push(' ');
                }
                let _ = write!(tail, "diam={diam:.4}");
            }
            if d.checkpoints > 0 {
                if !tail.is_empty() {
                    tail.push(' ');
                }
                let _ = write!(tail, "ckpt×{}", d.checkpoints);
            }
            let _ = writeln!(
                out,
                "{:>5} {:>6} {:>7} {:>5} {:>5} {:>6} {:>6} {:>6} {:>6}  {}",
                phase.tag(),
                d.round,
                d.events,
                d.dropped,
                d.timed_out,
                d.crashes,
                d.shuffles,
                d.merges,
                d.migrations,
                tail
            );
        }
        let _ = writeln!(
            out,
            "total: {} events over {} rounds, {} dropped, {} vetoes",
            self.events,
            self.rounds.len(),
            self.total_dropped(),
            self.total_vetoes()
        );
        out
    }
}

/// Replays a JSONL trace into a digest. Every non-empty line must parse
/// as an event **and** re-serialize byte-identically (strict schema
/// round-trip); the first offending line fails the whole replay.
pub fn replay_digest<R: BufRead>(input: R) -> Result<ReplayDigest, String> {
    let mut digest = ReplayDigest::default();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", lineno + 1))?;
        if line.is_empty() {
            continue;
        }
        let ev = Event::from_json(&line)
            .map_err(|e| format!("line {}: invalid event: {e:?}", lineno + 1))?;
        let back = ev.to_json();
        if back != line {
            return Err(format!(
                "line {}: round-trip mismatch:\n  in:  {line}\n  out: {back}",
                lineno + 1
            ));
        }
        digest.fold(&ev);
    }
    Ok(digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_telemetry::MsgOp;

    fn ev(phase: Phase, round: u64, seq: u64, kind: EventKind) -> Event {
        Event {
            phase,
            round,
            seq,
            kind,
        }
    }

    #[test]
    fn digest_groups_by_phase_and_round() {
        let events = [
            ev(
                Phase::Learning,
                0,
                0,
                EventKind::ShuffleCompleted { from: 0, to: 1 },
            ),
            ev(
                Phase::Aggregation,
                0,
                1,
                EventKind::MergeApplied { a: 0, b: 1 },
            ),
            ev(
                Phase::Run,
                0,
                2,
                EventKind::MsgDropped {
                    from: 1,
                    to: 2,
                    op: MsgOp::Request,
                },
            ),
            ev(
                Phase::Run,
                1,
                3,
                EventKind::MigrationVetoed {
                    vm: 7,
                    from: 1,
                    to: 2,
                },
            ),
            ev(
                Phase::Run,
                1,
                4,
                EventKind::MigrationAborted {
                    from: 1,
                    to: 2,
                    reason: AbortReason::NoCapacity,
                },
            ),
        ];
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let digest = replay_digest(jsonl.as_bytes()).unwrap();
        assert_eq!(digest.events, 5);
        assert_eq!(digest.rounds.len(), 4);
        assert_eq!(digest.rounds[0].0, Phase::Learning);
        assert_eq!(digest.rounds[0].1.shuffles, 1);
        assert_eq!(digest.rounds[1].1.merges, 1);
        assert_eq!(digest.total_dropped(), 1);
        assert_eq!(digest.total_vetoes(), 1);
        let last = &digest.rounds[3].1;
        assert_eq!(last.aborts[&AbortReason::NoCapacity], 1);
        let report = digest.render();
        assert!(report.contains("veto×1"));
        assert!(report.contains("no_capacity×1"));
    }

    #[test]
    fn digest_shows_checkpoint_rounds() {
        let events = [
            ev(
                Phase::Run,
                4,
                0,
                EventKind::MigrationCommitted {
                    vm: 1,
                    from: 0,
                    to: 1,
                },
            ),
            ev(Phase::Run, 5, 1, EventKind::CheckpointWritten),
        ];
        let jsonl: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let digest = replay_digest(jsonl.as_bytes()).unwrap();
        assert_eq!(digest.rounds[0].1.checkpoints, 0);
        assert_eq!(digest.rounds[1].1.checkpoints, 1);
        let report = digest.render();
        assert!(report.contains("ckpt×1"), "{report}");
    }

    #[test]
    fn malformed_line_fails_replay() {
        assert!(replay_digest("not json\n".as_bytes()).is_err());
        // Valid JSON object but unknown kind.
        let bogus = r#"{"phase":"run","round":0,"seq":0,"kind":"nope","payload":{}}"#;
        assert!(replay_digest(bogus.as_bytes()).is_err());
    }

    #[test]
    fn empty_lines_are_skipped() {
        let e = ev(Phase::Run, 3, 0, EventKind::PmCrashed { pm: 2 });
        let text = format!("\n{}\n\n", e.to_json());
        let digest = replay_digest(text.as_bytes()).unwrap();
        assert_eq!(digest.events, 1);
        assert_eq!(digest.rounds[0].1.crashes, 1);
    }
}
