//! Transport-backed scenario runs: GLAP pre-training as a fleet of real
//! [`glap_node::NodeCore`]s behind a chosen [`Transport`], followed by
//! the standard measured day.
//!
//! This is the harness behind the `node_runtime` binary and the
//! sim-vs-channel byte-identity suite. The measured day is *identical*
//! to [`run_scenario_traced`](crate::runner::run_scenario_traced) — only
//! the training phase differs: instead of the centralized
//! [`glap::train_traced`] loop, each PM runs as a [`NodeCore`] and every
//! protocol exchange crosses the transport as serialized wire bytes.
//! Because node randomness is per-node (`Stream::Node(id)`) and delivery
//! order comes from the seeded `Stream::Delivery` schedule, the result
//! is a pure function of the scenario — [`TransportKind::Sim`] and
//! [`TransportKind::Channel`] at any worker count produce byte-identical
//! tables, metrics and telemetry.
//!
//! Checkpointing (`--checkpoint-every` / `--stop-at-round` / `--resume`)
//! is reinterpreted over *training* rounds: learning rounds first, then
//! aggregation rounds, one checkpoint per cadence tick, each snapshot
//! carrying the data center, the tracer state and the full node fleet.
//!
//! [`NodeCore`]: glap_node::NodeCore
//! [`Transport`]: glap_node::Transport

use crate::runner::{build_policy_traced, build_world, CheckpointOpts};
use crate::scenario::{Algorithm, Scenario};
use glap::prelude::{
    splitmix64, Checkpointable, GlapConfig, NetworkModel, QTablePair, SnapshotError, Tracer, Writer,
};
use glap::{unified_table, GlapPolicy, TableStore};
use glap_baselines::bfd_baseline;
use glap_cluster::DataCenter;
use glap_dcsim::run_simulation_profiled;
use glap_metrics::{MetricsCollector, RunResult};
use glap_node::{ChannelTransport, NodeRuntime, SimTransport, Transport};
use glap_profile::Profiler;
use glap_snapshot::{read_snapshot_file, write_atomic, SnapshotBuilder};
use glap_workload::{MaterializedTrace, OffsetTrace};
use std::path::{Path, PathBuf};

/// Which [`Transport`](glap_node::Transport) hosts the node fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process oracle: cores stepped inline on the driver thread.
    #[default]
    Sim,
    /// Real concurrency: cores on a worker pool, messages over mpsc
    /// channels (`--threads` sets the worker count).
    Channel,
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<TransportKind, String> {
        match s {
            "sim" => Ok(TransportKind::Sim),
            "channel" => Ok(TransportKind::Channel),
            other => Err(format!("unknown transport {other} (expected sim|channel)")),
        }
    }
}

/// Salt distinguishing the training network's fault stream from the
/// measured day's (which seeds directly from the policy seed).
const TRAIN_NET_SALT: u64 = 0x4e4f4445; // "NODE"

/// The checkpoint file of a node-transport run (distinct suffix so it
/// can never collide with the measured-day checkpoints of
/// [`run_scenario_checkpointed`](crate::runner::run_scenario_checkpointed)).
pub fn node_checkpoint_path(dir: &Path, sc: &Scenario) -> PathBuf {
    dir.join(format!("{}_node.ckpt", sc.id()))
}

/// What a transport-backed run produced.
pub struct NodeRunOutcome {
    /// The measured-day result; `None` when `--stop-at-round` ended
    /// training early (resume from the checkpoint to continue).
    pub result: Option<RunResult>,
    /// Serialized per-PM Q-tables after training — the byte-identity
    /// artifact CI compares across transports. `None` for non-GLAP
    /// algorithms (nothing is trained) and interrupted runs.
    pub tables: Option<Vec<u8>>,
}

/// Serializes a table set to its canonical comparison bytes.
pub fn encode_tables(tables: &[QTablePair]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(tables.len());
    for t in tables {
        t.save(&mut w);
    }
    w.into_bytes()
}

/// Trains the fleet over `transport`, honoring the checkpoint options.
/// Returns `None` when `--stop-at-round` interrupted training.
#[allow(clippy::too_many_arguments)]
fn train_over<T: Transport>(
    transport: T,
    cfg: &GlapConfig,
    sc: &Scenario,
    dc: &mut DataCenter,
    trace: &mut MaterializedTrace,
    tracer: &Tracer,
    opts: &CheckpointOpts,
    profiler: &Profiler,
) -> Result<Option<Vec<QTablePair>>, SnapshotError> {
    let _train_span = profiler.span("node_train");
    let seed = sc.policy_seed();
    let net = NetworkModel::new(
        sc.n_pms,
        sc.fault.clone(),
        splitmix64(seed ^ TRAIN_NET_SALT),
    );
    let mut rt = NodeRuntime::new(transport, cfg, net, seed, dc);
    rt.set_profiler(profiler.clone());
    if let Some(path) = &opts.resume {
        let snap = read_snapshot_file(path)?;
        let id = snap.section("meta")?.get_str()?;
        if id != sc.id() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot belongs to scenario {id}, not {}",
                sc.id()
            )));
        }
        dc.restore(&mut snap.section("world")?)?;
        tracer.restore_state(&mut snap.section("tracer")?)?;
        rt.restore(&mut snap.section("runtime")?)?;
    }

    let learning = cfg.learning_rounds as u64;
    let total = learning + cfg.aggregation_rounds as u64;
    while rt.learning_done() + rt.aggregation_done() < total {
        if rt.learning_done() < learning {
            rt.learning_round(dc, trace, tracer);
        } else {
            rt.aggregation_round(tracer);
        }
        let done = rt.learning_done() + rt.aggregation_done();
        if opts.every > 0 && done.is_multiple_of(opts.every) {
            if let Some(dir) = &opts.dir {
                let mut b = SnapshotBuilder::new();
                let mut w = Writer::new();
                w.put_str(&sc.id());
                b.section("meta", w);
                let mut w = Writer::new();
                dc.save(&mut w);
                b.section("world", w);
                let mut w = Writer::new();
                tracer.save_state(&mut w);
                b.section("tracer", w);
                let mut w = Writer::new();
                rt.save(&mut w);
                b.section("runtime", w);
                write_atomic(&node_checkpoint_path(dir, sc), &b.encode())?;
            }
        }
        if done < total && opts.stop_at_round.is_some_and(|s| done >= s) {
            return Ok(None);
        }
    }
    Ok(Some(rt.into_tables()))
}

/// Runs one scenario with transport-backed training.
///
/// GLAP variants train their tables over the chosen transport; the
/// baselines have nothing to train and skip straight to the measured
/// day, which for every algorithm is byte-identical to
/// [`run_scenario_traced`](crate::runner::run_scenario_traced)'s.
pub fn run_node_scenario(
    sc: &Scenario,
    transport: TransportKind,
    threads: Option<usize>,
    tracer: &Tracer,
    opts: &CheckpointOpts,
) -> Result<NodeRunOutcome, SnapshotError> {
    run_node_scenario_instrumented(sc, transport, threads, tracer, opts, &Profiler::off())
}

/// [`run_node_scenario`] with a wall-clock [`Profiler`]: transport-backed
/// training runs under a `node_train` span (per-round `node_learn_round`
/// / `node_agg_round` children with per-message `transport_dispatch`
/// samples), the measured day under `measured_day` with the engine's
/// `sim_round` tree. Observational only — tables, metrics and telemetry
/// stay byte-identical with profiling on or off.
pub fn run_node_scenario_instrumented(
    sc: &Scenario,
    transport: TransportKind,
    threads: Option<usize>,
    tracer: &Tracer,
    opts: &CheckpointOpts,
    profiler: &Profiler,
) -> Result<NodeRunOutcome, SnapshotError> {
    let (mut dc, trace) = build_world(sc);
    let mut table_bytes = None;
    let mut policy = match sc.algorithm {
        Algorithm::Glap
        | Algorithm::GlapNoVeto
        | Algorithm::GlapCurrentOnly
        | Algorithm::GlapNoAggregation => {
            let mut cfg = sc.glap;
            if sc.algorithm == Algorithm::GlapNoAggregation {
                cfg.aggregation_rounds = 0;
            }
            let mut train_dc = dc.clone();
            let mut train_trace = trace.clone();
            let seed = sc.policy_seed();
            let tables = match transport {
                TransportKind::Sim => train_over(
                    SimTransport::new(sc.n_pms, &cfg, seed),
                    &cfg,
                    sc,
                    &mut train_dc,
                    &mut train_trace,
                    tracer,
                    opts,
                    profiler,
                )?,
                TransportKind::Channel => train_over(
                    ChannelTransport::new(sc.n_pms, &cfg, seed, threads),
                    &cfg,
                    sc,
                    &mut train_dc,
                    &mut train_trace,
                    tracer,
                    opts,
                    profiler,
                )?,
            };
            let Some(tables) = tables else {
                return Ok(NodeRunOutcome {
                    result: None,
                    tables: None,
                });
            };
            table_bytes = Some(encode_tables(&tables));
            let store = if sc.algorithm == Algorithm::GlapNoAggregation {
                TableStore::PerPm(tables)
            } else {
                TableStore::Shared(Box::new(unified_table(&tables)))
            };
            let mut policy = GlapPolicy::new(cfg, store);
            policy.disable_in_veto = sc.algorithm == Algorithm::GlapNoVeto;
            policy.current_state_only = sc.algorithm == Algorithm::GlapCurrentOnly;
            Box::new(policy) as Box<dyn glap_dcsim::ConsolidationPolicy>
        }
        _ => build_policy_traced(sc, &dc, &trace, tracer).0,
    };

    // The measured day, exactly as `run_scenario_traced` runs it.
    let day_span = profiler.span("measured_day");
    let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
    let mut collector = MetricsCollector::new();
    let mut net = NetworkModel::new(sc.n_pms, sc.fault.clone(), sc.policy_seed());
    run_simulation_profiled(
        &mut dc,
        &mut day,
        policy.as_mut(),
        &mut [&mut collector],
        sc.rounds,
        sc.policy_seed(),
        &mut net,
        tracer,
        profiler,
    );
    drop(day_span);

    let mut result = RunResult::from_run(sc.algorithm.label(), collector, &dc);
    result.bfd_bins = bfd_baseline(&dc);
    Ok(NodeRunOutcome {
        result: Some(result),
        tables: table_bytes,
    })
}
