//! The perf-gate suite: the hot-path scenarios `perf_gate` measures
//! against the committed `BENCH_profile.json` baselines.
//!
//! Mirrors the shapes of `glap-bench`'s `hotpath` benchmarks at gate
//! sizes (256/1024 PMs — small enough for CI, big enough that the four
//! loops dominated by large-N wall-clock are the ones measured):
//!
//! * `learn_phase_256pms` — one full learning round via `train`;
//! * `aggregation_round_256pms` — one push–pull merge sweep;
//! * `dc_step_1024pms` — one workload step;
//! * `policy_round_256pms` — one consolidation round.
//!
//! `bench_refresh` regenerates the baseline file from this same suite,
//! so gate and baseline can never drift apart.

use glap::prelude::*;
use glap::synthetic_table;
use glap_cluster::{DataCenter, DataCenterConfig, Resources, VmId, VmSpec};
use glap_profile::{measure_median, BenchRecord, Measurement};

/// VMs per PM in every perf-gate world (same as the bench suite).
const VM_RATIO: usize = 2;

/// A mid-load wave: most PMs stay under the 0.5 learning-eligibility
/// threshold, some cross it, so the measured loops see the mixed
/// population real runs do.
fn wave(vm: VmId, round: u64) -> Resources {
    let x = 0.3 + 0.25 * ((round as f64 / 7.0) + vm.0 as f64).sin();
    Resources::splat(x)
}

/// A populated, randomly placed, once-stepped data center.
fn world(n_pms: usize) -> DataCenter {
    let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
    for _ in 0..n_pms * VM_RATIO {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    dc.random_placement(&mut stream_rng(7, Stream::Placement));
    dc.step(&mut wave);
    dc
}

/// One learning round, heavy on local training so the parallelizable
/// Bellman loop dominates.
fn learn_cfg() -> GlapConfig {
    GlapConfig {
        learning_rounds: 1,
        aggregation_rounds: 0,
        learning_iterations: 200,
        ..Default::default()
    }
}

fn measure_learn_phase_at(n: usize, budget_ms: u64) -> Measurement {
    let base = world(n);
    measure_median(budget_ms, || {
        let mut dc = base.clone();
        train(&mut dc, &mut wave, &learn_cfg(), 42, false);
    })
}

fn measure_learn_phase(budget_ms: u64) -> Measurement {
    measure_learn_phase_at(256, budget_ms)
}

fn measure_aggregation_round_at(n: usize, budget_ms: u64) -> Measurement {
    // Short training gives the tables realistic sparsity; the merge
    // sweep itself is what's measured.
    let mut dc = world(n);
    let cfg = GlapConfig {
        learning_rounds: 2,
        aggregation_rounds: 0,
        learning_iterations: 20,
        ..Default::default()
    };
    let (tables, _) = train(&mut dc, &mut wave, &cfg, 42, false);
    let mut overlay = CyclonOverlay::new(n, cfg.cyclon_cache, cfg.cyclon_shuffle);
    let mut rng = stream_rng(42, Stream::Learning);
    overlay.bootstrap_random(&mut rng);
    let mut tables = tables;
    measure_median(budget_ms, || {
        aggregation_round(&mut tables, &mut overlay, &mut rng, AggIo::default());
    })
}

fn measure_aggregation_round(budget_ms: u64) -> Measurement {
    measure_aggregation_round_at(256, budget_ms)
}

fn measure_dc_step_at(n: usize, budget_ms: u64) -> Measurement {
    let mut dc = world(n);
    measure_median(budget_ms, || {
        dc.step(&mut wave);
    })
}

fn measure_dc_step(budget_ms: u64) -> Measurement {
    measure_dc_step_at(1024, budget_ms)
}

fn measure_policy_round_at(n: usize, budget_ms: u64) -> Measurement {
    let base = world(n);
    let mut policy = GlapPolicy::with_shared_table(
        GlapConfig::default(),
        synthetic_table(&mut stream_rng(7, Stream::Custom(99))),
    );
    let mut init_dc = base.clone();
    policy.init(&mut init_dc, &mut stream_rng(7, Stream::Policy));
    let tracer = Tracer::off();
    measure_median(budget_ms, || {
        let mut dc = base.clone();
        let mut pol = policy.clone();
        let mut net = NetworkModel::ideal(n);
        let mut rng = stream_rng(7, Stream::Policy);
        let mut ctx = RoundCtx {
            round: dc.round(),
            dc: &mut dc,
            rng: &mut rng,
            churn_events: 0,
            net: &mut net,
            tracer: &tracer,
        };
        pol.round(&mut ctx);
    })
}

fn measure_policy_round(budget_ms: u64) -> Measurement {
    measure_policy_round_at(256, budget_ms)
}

/// Two realistically sparse trained tables (distinct PMs of a shortly
/// trained world) for the codec measurements.
fn trained_table_pair(n: usize) -> (glap_qlearn::QTablePair, glap_qlearn::QTablePair) {
    let mut dc = world(n);
    let cfg = GlapConfig {
        learning_rounds: 2,
        aggregation_rounds: 0,
        learning_iterations: 20,
        ..Default::default()
    };
    let (tables, _) = train(&mut dc, &mut wave, &cfg, 42, false);
    let a = tables
        .iter()
        .find(|t| t.trained_pairs() > 0)
        .cloned()
        .expect("some PM trained");
    let b = tables
        .iter()
        .rev()
        .find(|t| t.trained_pairs() > 0)
        .cloned()
        .expect("some PM trained");
    (a, b)
}

/// One primed codec pair: a completed exchange so the stateful codecs
/// (delta, priority) measure their steady state, not first contact.
fn primed_codecs(
    kind: CodecKind,
    ta: &mut glap_qlearn::QTablePair,
    tb: &mut glap_qlearn::QTablePair,
) -> (AnyCodec, AnyCodec) {
    let mut ca = AnyCodec::new(kind);
    let mut cb = AnyCodec::new(kind);
    let push = ca.encode_push(1, ta);
    let reply = cb.apply_push(0, tb, &push).expect("codec push applies");
    ca.apply_reply(1, ta, &reply).expect("codec reply applies");
    (ca, cb)
}

fn measure_codec_encode(kind: CodecKind, budget_ms: u64) -> Measurement {
    let (mut ta, mut tb) = trained_table_pair(256);
    let (mut ca, _cb) = primed_codecs(kind, &mut ta, &mut tb);
    measure_median(budget_ms, || {
        let body = ca.encode_push(1, &ta);
        // Undo the in-flight bookkeeping so every iteration encodes the
        // same steady state.
        ca.push_failed(1);
        std::hint::black_box(body);
    })
}

fn measure_codec_exchange(kind: CodecKind, budget_ms: u64) -> Measurement {
    let (mut ta, mut tb) = trained_table_pair(256);
    let (mut ca, mut cb) = primed_codecs(kind, &mut ta, &mut tb);
    measure_median(budget_ms, || {
        // Full ping-pong exchange: encode, decode + merge + reply
        // encode, reply decode + apply. Tables converge and stay
        // converged, so iterations measure the steady state.
        let push = ca.encode_push(1, &ta);
        let reply = cb
            .apply_push(0, &mut tb, &push)
            .expect("codec push applies");
        ca.apply_reply(1, &mut ta, &reply)
            .expect("codec reply applies");
    })
}

fn measure_codec_exchange_delta(budget_ms: u64) -> Measurement {
    measure_codec_exchange(CodecKind::Delta, budget_ms)
}

/// The codec suite — encode cost and full exchange (encode + decode +
/// merge + reply) cost per codec kind, on realistically sparse trained
/// tables — what `bench_refresh` writes into `BENCH_codec.json`.
pub fn codec_records(budget_ms: u64) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for &kind in &glap::codec::ALL_CODEC_KINDS {
        let enc = measure_codec_encode(kind, budget_ms);
        let ex = measure_codec_exchange(kind, budget_ms);
        out.push(BenchRecord {
            name: format!("codec_encode_{}", kind.label()),
            scenario: format!("encode one {kind} push payload, trained 256-PM tables"),
            median_ns: enc.median_ns,
            iterations: enc.iterations,
        });
        out.push(BenchRecord {
            name: format!("codec_exchange_{}", kind.label()),
            scenario: format!("one full {kind}-coded push-pull exchange (encode/decode both legs)"),
            median_ns: ex.median_ns,
            iterations: ex.iterations,
        });
    }
    out
}

/// One gate scenario: a named setup + timed closure.
pub struct PerfCase {
    /// Benchmark name, matching a `BENCH_profile.json` entry.
    pub name: &'static str,
    /// Human-readable description of the measured loop.
    pub scenario: &'static str,
    /// Runs the measurement under the given per-case time budget.
    pub run: fn(u64) -> Measurement,
}

/// The gate suite, in measurement order.
pub const PERF_SUITE: &[PerfCase] = &[
    PerfCase {
        name: "learn_phase_256pms",
        scenario: "one learning round (workload step + shuffle + local training), 256 PMs",
        run: measure_learn_phase,
    },
    PerfCase {
        name: "aggregation_round_256pms",
        scenario: "one push-pull table merge sweep, 256 PMs",
        run: measure_aggregation_round,
    },
    PerfCase {
        name: "dc_step_1024pms",
        scenario: "one workload step with incremental load bookkeeping, 1024 PMs",
        run: measure_dc_step,
    },
    PerfCase {
        name: "policy_round_256pms",
        scenario: "one GLAP consolidation round over a stepped world, 256 PMs",
        run: measure_policy_round,
    },
    PerfCase {
        name: "codec_exchange_delta_256pms",
        scenario: "one delta-coded push-pull exchange (encode/decode both legs), 256-PM tables",
        run: measure_codec_exchange_delta,
    },
];

/// Runs the whole suite, `budget_ms` of sampling per case.
pub fn run_suite(budget_ms: u64) -> Vec<glap_profile::BenchRecord> {
    PERF_SUITE
        .iter()
        .map(|case| {
            let m = (case.run)(budget_ms);
            glap_profile::BenchRecord {
                name: case.name.to_string(),
                scenario: case.scenario.to_string(),
                median_ns: m.median_ns,
                iterations: m.iterations,
            }
        })
        .collect()
}

/// The hot-path suite at bench sizes (1024/4096 PMs) — what
/// `bench_refresh` writes into `BENCH_hotpath.json`. Same four loops as
/// the gate suite, at the sizes `glap-bench`'s `hotpath` bench pins.
pub fn hotpath_records(budget_ms: u64) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for n in [1024usize, 4096] {
        for (stem, scenario, m) in [
            (
                "learn_phase",
                "one full learning round (train, learning_iterations=200)",
                measure_learn_phase_at(n, budget_ms),
            ),
            (
                "aggregation_round",
                "one push-pull table merge sweep over the population",
                measure_aggregation_round_at(n, budget_ms),
            ),
            (
                "dc_step",
                "one workload step with incremental load bookkeeping",
                measure_dc_step_at(n, budget_ms),
            ),
            (
                "policy_round",
                "one GLAP consolidation round over a stepped world",
                measure_policy_round_at(n, budget_ms),
            ),
        ] {
            out.push(BenchRecord {
                name: format!("{stem}_{n}pms"),
                scenario: scenario.to_string(),
                median_ns: m.median_ns,
                iterations: m.iterations,
            });
        }
    }
    out
}

/// Per-round learning cost at `n` PMs, read from the profiler's
/// `learn_round` spans of full `train_instrumented` calls.
///
/// The hotpath-suite `measure_learn_phase_at` times a whole
/// 1-learning-round `train` per sample, which at gate sizes is fine but
/// along the scale trajectory is dominated by per-call setup: the
/// fleet's Q-table allocation (~118 KB per PM — 11.8 GB at 100k) is
/// first-touch page-faulted, dropped, and re-faulted every iteration,
/// which reads as super-linear per-round growth that real runs (one
/// allocation amortized over every round) never see. Here each train
/// call runs several learning rounds and each round's span is one
/// sample, so the committed trajectory measures the round, not the
/// allocator.
fn measure_learn_round_at(n: usize, budget_ms: u64) -> Measurement {
    const ROUNDS_PER_CALL: usize = 3;
    let base = world(n);
    let cfg = GlapConfig {
        learning_rounds: ROUNDS_PER_CALL,
        aggregation_rounds: 0,
        learning_iterations: 200,
        ..Default::default()
    };
    let mut samples_ns: Vec<u64> = Vec::new();
    let t0 = std::time::Instant::now();
    // One call already yields `ROUNDS_PER_CALL` round samples; keep
    // re-running while the budget lasts for steadier medians at small n.
    while samples_ns.is_empty() || t0.elapsed().as_millis() < budget_ms as u128 {
        let profiler = Profiler::enabled();
        let mut dc = base.clone();
        train_instrumented(
            &mut dc,
            &mut wave,
            &cfg,
            42,
            false,
            &Tracer::off(),
            None,
            &profiler,
        );
        let report = profiler.snapshot();
        let span = report
            .span("train/learn_round")
            .expect("train emits learn_round spans");
        // p50 over this call's rounds: robust against the first round,
        // which pays the tables' first-touch faults.
        samples_ns.push(span.p50_ns);
    }
    samples_ns.sort_unstable();
    Measurement {
        median_ns: samples_ns[samples_ns.len() / 2],
        iterations: (samples_ns.len() * ROUNDS_PER_CALL) as u64,
    }
}

/// Per-round consolidation cost at `n` PMs, read from the engine's
/// `policy_round` spans — same rationale as [`measure_learn_round_at`]:
/// the closure-timed variant re-clones the data center and policy every
/// iteration, and along the trajectory that clone-and-drop churn grows
/// faster than the round itself.
fn measure_policy_round_at_scale(n: usize, budget_ms: u64) -> Measurement {
    const ROUNDS_PER_CALL: u64 = 3;
    let base = world(n);
    let policy = GlapPolicy::with_shared_table(
        GlapConfig::default(),
        synthetic_table(&mut stream_rng(7, Stream::Custom(99))),
    );
    let tracer = Tracer::off();
    let mut samples_ns: Vec<u64> = Vec::new();
    let t0 = std::time::Instant::now();
    while samples_ns.is_empty() || t0.elapsed().as_millis() < budget_ms as u128 {
        let profiler = Profiler::enabled();
        let mut dc = base.clone();
        let mut pol = policy.clone();
        let mut net = NetworkModel::ideal(n);
        glap_dcsim::run_simulation_profiled(
            &mut dc,
            &mut wave,
            &mut pol,
            &mut [],
            ROUNDS_PER_CALL,
            7,
            &mut net,
            &tracer,
            &profiler,
        );
        let report = profiler.snapshot();
        let span = report
            .span("sim_round/policy_round")
            .expect("engine emits policy_round spans");
        samples_ns.push(span.p50_ns);
    }
    samples_ns.sort_unstable();
    Measurement {
        median_ns: samples_ns[samples_ns.len() / 2],
        iterations: samples_ns.len() as u64 * ROUNDS_PER_CALL,
    }
}

/// Per-round cost of the fused last-learn + first-aggregate sweep at
/// `n` PMs, read from the arena engine's `fused_round` span.
///
/// This is the real shape of a steady-state GLAP round at scale: the
/// learning work and the merge sweep touch each Q-table once, in one
/// pass over the arena. One plain learning round precedes the fused one
/// so the span measures the steady state (the plain round pays the
/// arena slab's first-touch page faults), mirroring the
/// [`measure_learn_round_at`] methodology.
fn measure_fused_round_at(n: usize, budget_ms: u64) -> Measurement {
    let base = world(n);
    let cfg = GlapConfig {
        learning_rounds: 2,
        aggregation_rounds: 1,
        learning_iterations: 200,
        ..Default::default()
    };
    let mut samples_ns: Vec<u64> = Vec::new();
    let t0 = std::time::Instant::now();
    // One call yields exactly one fused-round sample; take at least
    // three for a meaningful median even when one call overruns the
    // budget (the 100k+ cells).
    while samples_ns.len() < 3 || t0.elapsed().as_millis() < budget_ms as u128 {
        let profiler = Profiler::enabled();
        let mut dc = base.clone();
        train_arena(&mut dc, &mut wave, &cfg, 42, None, &profiler);
        let report = profiler.snapshot();
        let span = report
            .span("train/fused_round")
            .expect("train_arena emits a fused_round span");
        samples_ns.push(span.p50_ns);
    }
    samples_ns.sort_unstable();
    Measurement {
        median_ns: samples_ns[samples_ns.len() / 2],
        iterations: samples_ns.len() as u64,
    }
}

/// The scale-trajectory sizes committed in `BENCH_scale.json`: the
/// 1k→250k PM sweep the flat-storage/fused-round work targets.
pub const SCALE_SIZES: &[usize] = &[1_000, 4_000, 16_000, 64_000, 100_000, 250_000];

/// The scale suite — per-round costs of the phase loops along the
/// 1k→250k PM trajectory, what `bench_refresh` writes into
/// `BENCH_scale.json`. Per size: one learning round (`learn_round`),
/// one aggregation merge sweep (`aggregation_round`), one *fused*
/// learn+aggregate round (`learn_plus_agg_round`, the scalability
/// headline `perf_gate` advises on — measured directly from the arena
/// engine's fused sweep, not summed from the two phase rows), one
/// consolidation round (`policy_round`) and one workload step
/// (`dc_step`). Linear growth in N is the target; the 100k/4k ratio of
/// `learn_plus_agg_round` is the committed criterion (≤ ~30x, vs the
/// 25x size ratio).
pub fn scale_records(budget_ms: u64) -> Vec<BenchRecord> {
    scale_records_at(SCALE_SIZES, budget_ms)
}

/// [`scale_records`] over an explicit size list (CI's 16k smoke run).
pub fn scale_records_at(sizes: &[usize], budget_ms: u64) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for &n in sizes {
        let learn = measure_learn_round_at(n, budget_ms);
        let agg = measure_aggregation_round_at(n, budget_ms);
        let fused = measure_fused_round_at(n, budget_ms);
        let pol = measure_policy_round_at_scale(n, budget_ms);
        let step = measure_dc_step_at(n, budget_ms);
        let mk = |stem: &str, scenario: &str, m: &Measurement| BenchRecord {
            name: format!("{stem}_{n}pms"),
            scenario: scenario.to_string(),
            median_ns: m.median_ns,
            iterations: m.iterations,
        };
        out.push(mk(
            "learn_round",
            "one learning round (learn_round profiler span p50, learning_iterations=200; \
             per-train setup amortized)",
            &learn,
        ));
        out.push(mk(
            "aggregation_round",
            "one push-pull table merge sweep over the population",
            &agg,
        ));
        out.push(mk(
            "learn_plus_agg_round",
            "one fused learn+aggregate round over the Q-table arena \
             (fused_round profiler span p50; scalability headline)",
            &fused,
        ));
        out.push(mk(
            "policy_round",
            "one GLAP consolidation round (policy_round profiler span p50; \
             per-run setup amortized)",
            &pol,
        ));
        out.push(mk(
            "dc_step",
            "one workload step with incremental load bookkeeping",
            &step,
        ));
    }
    out
}

/// The snapshot suite (1024 PMs, faulty network, dense shared table) —
/// what `bench_refresh` writes into `BENCH_snapshot.json`. Mirrors
/// `glap-bench`'s `snapshot` bench: checkpoint encode, full-validation
/// decode, data-center restore, and the raw CRC32 sweep.
pub fn snapshot_records(budget_ms: u64) -> Vec<BenchRecord> {
    use glap_dcsim::{save_rng, FaultProfile};
    use glap_qlearn::{PmState, QParams, QTablePair, VmAction};
    use glap_snapshot::{Snapshot, SnapshotBuilder, Writer};
    use rand::Rng;

    let n = 1024usize;
    let mut dc = DataCenter::new(DataCenterConfig::paper(n));
    for _ in 0..n * VM_RATIO {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    dc.random_placement(&mut stream_rng(11, Stream::Placement));
    let mut src = |vm: VmId, r: u64| Resources::splat(((vm.0 as u64 + r) % 87) as f64 / 100.0);
    for _ in 0..8 {
        dc.step(&mut src);
    }
    let net = NetworkModel::new(n, FaultProfile::faulty(0.05, 0.01, 0.2), 11);
    let mut table = QTablePair::new(QParams::default());
    let mut rng = stream_rng(11, Stream::Custom(3));
    for s in PmState::all() {
        for a in VmAction::all() {
            table.out.set(s, a, rng.gen::<f64>());
            table.r#in.set(s, a, rng.gen::<f64>() - 0.5);
        }
    }
    let policy = glap::GlapPolicy::new(
        GlapConfig::default(),
        glap::TableStore::Shared(Box::new(table)),
    );

    let encode = |dc: &DataCenter, net: &NetworkModel, policy: &glap::GlapPolicy| -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        let mut w = Writer::new();
        save_rng(&stream_rng(11, Stream::Policy), &mut w);
        b.section("rng", w);
        let mut w = Writer::new();
        dc.save(&mut w);
        b.section("dc", w);
        let mut w = Writer::new();
        net.save(&mut w);
        b.section("net", w);
        let mut w = Writer::new();
        policy.save_state(&mut w);
        b.section("policy", w);
        b.encode()
    };
    let bytes = encode(&dc, &net, &policy);
    let snap = Snapshot::decode(&bytes).expect("fresh container decodes");

    let enc = measure_median(budget_ms, || {
        std::hint::black_box(encode(&dc, &net, &policy));
    });
    let dec = measure_median(budget_ms, || {
        std::hint::black_box(Snapshot::decode(&bytes).unwrap());
    });
    let restore = measure_median(budget_ms, || {
        let mut fresh = dc.clone();
        let mut r = snap.section("dc").unwrap();
        fresh.restore(&mut r).unwrap();
        std::hint::black_box(&fresh);
    });
    let crc = measure_median(budget_ms, || {
        std::hint::black_box(glap_snapshot::crc32(&bytes));
    });

    let mk = |stem: &str, scenario: &str, m: Measurement| BenchRecord {
        name: format!("{stem}_{n}pms"),
        scenario: scenario.to_string(),
        median_ns: m.median_ns,
        iterations: m.iterations,
    };
    vec![
        mk(
            "encode_checkpoint",
            "encode one mid-run checkpoint container (1024 PMs, faulty net, dense table)",
            enc,
        ),
        mk(
            "decode_checkpoint",
            "decode + fully validate one checkpoint container (magic, sections, CRCs)",
            dec,
        ),
        mk(
            "restore_datacenter",
            "restore the data-center section into a live world",
            restore,
        ),
        mk("crc32_payload", "raw CRC32 over the whole container", crc),
    ]
}

/// The current git revision (short hash), or `"unknown"` outside a work
/// tree — stamped into regenerated baselines for provenance.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique() {
        let mut names: Vec<_> = PERF_SUITE.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PERF_SUITE.len());
    }

    #[test]
    fn dc_step_case_measures() {
        let m = measure_dc_step(1);
        assert!(m.median_ns > 0);
        assert!(m.iterations >= 3);
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
