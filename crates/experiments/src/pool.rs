//! A small scoped worker pool for running scenarios in parallel.
//!
//! Individual simulation runs are strictly single-threaded and
//! deterministic; the grid of (size × ratio × rep × algorithm) runs is
//! embarrassingly parallel. Workers claim items from a shared atomic
//! cursor and write each result into its own pre-allocated slot, so
//! results come back in input order and downstream aggregation is
//! deterministic regardless of thread count. Built on `std::thread`
//! only — the approved dependency list has no concurrency crates.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` using up to `threads` workers (defaults to the
/// available parallelism), preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, n);

    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every item processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), Some(4), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], Some(1), |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), None, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![7], Some(16), |&x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn single_item_many_threads() {
        let out = parallel_map(vec![String::from("only")], Some(32), |s| s.len());
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn order_preserved_under_many_threads_with_skewed_work() {
        // Early items sleep longest, so late items finish first; the
        // output must still come back in input order.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(items.clone(), Some(16), |&x| {
            std::thread::sleep(std::time::Duration::from_micros((64 - x) * 50));
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn results_match_sequential_regardless_of_threads() {
        let items: Vec<u64> = (0..50).collect();
        let seq = parallel_map(items.clone(), Some(1), |&x| x * x % 97);
        let par = parallel_map(items, Some(8), |&x| x * x % 97);
        assert_eq!(seq, par);
    }

    #[test]
    fn default_thread_count_runs_everything() {
        let out = parallel_map((0..10).collect::<Vec<i32>>(), None, |&x| x - 1);
        assert_eq!(out, (-1..9).collect::<Vec<_>>());
    }
}
