//! Re-export of the shared worker pool.
//!
//! The pool's original home was this module; it moved to [`glap_par`]
//! so `glap` core can parallelize the learning phase without a
//! dependency cycle (`glap-experiments` depends on `glap`, not the
//! other way around). Existing `crate::pool::parallel_map` call sites
//! and the public `glap_experiments::parallel_map` re-export keep
//! working unchanged; the pool's unit tests live with the code in
//! `crates/par`.

pub use glap_par::{parallel_map, resolve_threads, set_default_threads};
