//! A small scoped worker pool for running scenarios in parallel.
//!
//! Individual simulation runs are strictly single-threaded and
//! deterministic; the grid of (size × ratio × rep × algorithm) runs is
//! embarrassingly parallel. A crossbeam injector queue feeds worker
//! threads; results return in input order so downstream aggregation is
//! deterministic regardless of thread count.

use crossbeam::deque::{Injector, Steal};
use parking_lot::Mutex;
use std::num::NonZeroUsize;

/// Maps `f` over `items` using up to `threads` workers (defaults to the
/// available parallelism), preserving input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        })
        .clamp(1, n);

    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let injector: Injector<(usize, &T)> = Injector::new();
    for (i, item) in items.iter().enumerate() {
        injector.push((i, item));
    }
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                match injector.steal() {
                    Steal::Success((i, item)) => {
                        let r = f(item);
                        results.lock()[i] = Some(r);
                    }
                    Steal::Empty => break,
                    Steal::Retry => {}
                }
            });
        }
    })
    .expect("worker panicked");

    results.into_inner().into_iter().map(|r| r.expect("every item processed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), Some(4), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], Some(1), |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), None, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![7], Some(16), |&x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn results_match_sequential_regardless_of_threads() {
        let items: Vec<u64> = (0..50).collect();
        let seq = parallel_map(items.clone(), Some(1), |&x| x * x % 97);
        let par = parallel_map(items, Some(8), |&x| x * x % 97);
        assert_eq!(seq, par);
    }
}
