//! Experiment scenarios: the paper's evaluation grid.
//!
//! §V-A: cluster sizes 500/1000/2000 PMs, VM:PM ratios 2/3/4, 720 rounds
//! of 2 minutes (24 h), 20 repetitions, identical initial VM→PM mapping
//! across algorithms within a repetition, and 700 extra pre-rounds for
//! GLAP's Q-value training.

use glap::GlapConfig;
use glap_cluster::VmSpec;
use glap_dcsim::{splitmix64, FaultProfile};
use glap_workload::GoogleTraceConfig;
use serde::{Deserialize, Serialize};

/// Which consolidation algorithm a run uses (including GLAP's ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// GLAP with the full two-phase trained, unified Q-tables.
    Glap,
    /// GLAP without the `φ_in` admission veto (ablation).
    GlapNoVeto,
    /// GLAP with current-demand-only states (ablation: no averages).
    GlapCurrentOnly,
    /// GLAP without the aggregation phase: per-PM local tables (ablation).
    GlapNoAggregation,
    /// GRMP (Wuhib et al.), static 0.8 threshold gossip.
    Grmp,
    /// EcoCloud (Mastroianni et al.), probabilistic thresholds.
    EcoCloud,
    /// PABFD (Beloglazov & Buyya), centralized MAD + best-fit-decreasing.
    Pabfd,
}

impl Algorithm {
    /// The paper's four compared algorithms.
    pub const PAPER_SET: [Algorithm; 4] = [
        Algorithm::Glap,
        Algorithm::EcoCloud,
        Algorithm::Grmp,
        Algorithm::Pabfd,
    ];

    /// All GLAP ablation variants (plus the full protocol for reference).
    pub const ABLATION_SET: [Algorithm; 4] = [
        Algorithm::Glap,
        Algorithm::GlapNoVeto,
        Algorithm::GlapCurrentOnly,
        Algorithm::GlapNoAggregation,
    ];

    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Glap => "GLAP",
            Algorithm::GlapNoVeto => "GLAP-noveto",
            Algorithm::GlapCurrentOnly => "GLAP-current",
            Algorithm::GlapNoAggregation => "GLAP-noagg",
            Algorithm::Grmp => "GRMP",
            Algorithm::EcoCloud => "EcoCloud",
            Algorithm::Pabfd => "PABFD",
        }
    }

    /// A stable tag mixed into policy seeds.
    pub fn tag(self) -> u64 {
        match self {
            Algorithm::Glap => 1,
            Algorithm::GlapNoVeto => 2,
            Algorithm::GlapCurrentOnly => 3,
            Algorithm::GlapNoAggregation => 4,
            Algorithm::Grmp => 5,
            Algorithm::EcoCloud => 6,
            Algorithm::Pabfd => 7,
        }
    }
}

/// The VM fleet composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VmMix {
    /// The paper's setup: every VM is an EC2 micro.
    #[default]
    MicroOnly,
    /// Extension: 60% micro / 30% m1.small / 10% m1.medium — exercises
    /// the full calibrated action space.
    Mixed,
}

impl VmMix {
    /// The spec of the `i`-th VM under this mix (deterministic in `i`, so
    /// the composition is identical across algorithms and repetitions).
    pub fn spec(self, i: usize) -> VmSpec {
        match self {
            VmMix::MicroOnly => VmSpec::EC2_MICRO,
            VmMix::Mixed => match i % 10 {
                0..=5 => VmSpec::EC2_MICRO,
                6..=8 => VmSpec::M1_SMALL,
                _ => VmSpec::M1_MEDIUM,
            },
        }
    }
}

/// One fully specified simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Number of PMs.
    pub n_pms: usize,
    /// VM:PM ratio (the paper uses 2, 3, 4).
    pub ratio: usize,
    /// Repetition index (drives seeds).
    pub rep: usize,
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Measured rounds (the paper: 720 = 24 h of 2-minute rounds).
    pub rounds: u64,
    /// GLAP configuration (training lengths, thresholds, Q-params).
    pub glap: GlapConfig,
    /// Workload generator configuration (defaults to the documented
    /// Google-cluster-like statistics; the bursty-workload evaluation of
    /// the paper's future work overrides this).
    pub trace_cfg: GoogleTraceConfig,
    /// VM fleet composition (the paper: micro-only).
    pub vm_mix: VmMix,
    /// Network fault injection. [`FaultProfile::none()`] (the default)
    /// keeps every run byte-identical to the pre-network-model code path.
    pub fault: FaultProfile,
}

impl Scenario {
    /// Builds a paper-defaults scenario.
    pub fn paper(n_pms: usize, ratio: usize, rep: usize, algorithm: Algorithm) -> Self {
        Scenario {
            n_pms,
            ratio,
            rep,
            algorithm,
            rounds: 720,
            glap: GlapConfig::default(),
            trace_cfg: GoogleTraceConfig::default(),
            vm_mix: VmMix::default(),
            fault: FaultProfile::none(),
        }
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.n_pms * self.ratio
    }

    /// The *workload* master seed: depends only on (size, ratio, rep) so
    /// every algorithm in a repetition sees the identical trace and
    /// initial placement — the paper's fairness requirement.
    pub fn world_seed(&self) -> u64 {
        splitmix64(
            splitmix64(self.n_pms as u64)
                ^ splitmix64(0x1000 + self.ratio as u64)
                ^ splitmix64(0x2000 + self.rep as u64),
        )
    }

    /// The *policy* seed: differs per algorithm so protocol randomness is
    /// independent across algorithms.
    pub fn policy_seed(&self) -> u64 {
        splitmix64(self.world_seed() ^ splitmix64(0x3000 + self.algorithm.tag()))
    }

    /// Short id used in file names and logs.
    pub fn id(&self) -> String {
        format!(
            "{}-{}x{}-r{}",
            self.algorithm.label(),
            self.n_pms,
            self.ratio,
            self.rep
        )
    }
}

/// The experiment grid shared by the figure regenerators.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid {
    /// Cluster sizes to sweep.
    pub sizes: Vec<usize>,
    /// VM:PM ratios to sweep.
    pub ratios: Vec<usize>,
    /// Repetitions per cell.
    pub reps: usize,
    /// Measured rounds per run.
    pub rounds: u64,
    /// GLAP configuration.
    pub glap: GlapConfig,
    /// Workload generator configuration.
    pub trace_cfg: GoogleTraceConfig,
}

impl Grid {
    /// The paper's full grid: 500/1000/2000 × 2/3/4 × 20 reps × 720
    /// rounds. Heavy — hours of CPU.
    pub fn paper() -> Self {
        Grid {
            sizes: vec![500, 1000, 2000],
            ratios: vec![2, 3, 4],
            reps: 20,
            rounds: 720,
            glap: GlapConfig::default(),
            trace_cfg: GoogleTraceConfig::default(),
        }
    }

    /// A reduced grid with the paper's shape (all ratios, one mid size,
    /// fewer reps) that runs in minutes on one core.
    pub fn reduced() -> Self {
        Grid {
            sizes: vec![500],
            ratios: vec![2, 3, 4],
            reps: 5,
            rounds: 720,
            glap: GlapConfig::default(),
            trace_cfg: GoogleTraceConfig::default(),
        }
    }

    /// A smoke-test grid for CI and benches.
    pub fn quick() -> Self {
        Grid {
            sizes: vec![100],
            ratios: vec![2, 3],
            reps: 2,
            rounds: 120,
            glap: GlapConfig {
                learning_rounds: 30,
                aggregation_rounds: 15,
                ..GlapConfig::default()
            },
            trace_cfg: GoogleTraceConfig::default(),
        }
    }

    /// Enumerates all scenarios of this grid for the given algorithms.
    pub fn scenarios(&self, algorithms: &[Algorithm]) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &n_pms in &self.sizes {
            for &ratio in &self.ratios {
                for rep in 0..self.reps {
                    for &algorithm in algorithms {
                        out.push(Scenario {
                            n_pms,
                            ratio,
                            rep,
                            algorithm,
                            rounds: self.rounds,
                            glap: self.glap,
                            trace_cfg: self.trace_cfg,
                            vm_mix: VmMix::default(),
                            fault: FaultProfile::none(),
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_seed_is_algorithm_independent() {
        let a = Scenario::paper(500, 2, 0, Algorithm::Glap);
        let b = Scenario::paper(500, 2, 0, Algorithm::Grmp);
        assert_eq!(a.world_seed(), b.world_seed());
        assert_ne!(a.policy_seed(), b.policy_seed());
    }

    #[test]
    fn world_seed_varies_with_cell() {
        let a = Scenario::paper(500, 2, 0, Algorithm::Glap);
        let b = Scenario::paper(500, 3, 0, Algorithm::Glap);
        let c = Scenario::paper(500, 2, 1, Algorithm::Glap);
        let d = Scenario::paper(1000, 2, 0, Algorithm::Glap);
        let seeds = [
            a.world_seed(),
            b.world_seed(),
            c.world_seed(),
            d.world_seed(),
        ];
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn grid_enumerates_fully() {
        let g = Grid {
            sizes: vec![100, 200],
            ratios: vec![2, 3],
            reps: 3,
            rounds: 10,
            glap: GlapConfig::default(),
            trace_cfg: GoogleTraceConfig::default(),
        };
        let s = g.scenarios(&Algorithm::PAPER_SET);
        assert_eq!(s.len(), 2 * 2 * 3 * 4);
    }

    #[test]
    fn paper_grid_matches_section_va() {
        let g = Grid::paper();
        assert_eq!(g.sizes, vec![500, 1000, 2000]);
        assert_eq!(g.ratios, vec![2, 3, 4]);
        assert_eq!(g.reps, 20);
        assert_eq!(g.rounds, 720);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = Algorithm::PAPER_SET
            .iter()
            .chain(Algorithm::ABLATION_SET.iter())
            .map(|a| a.label())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert!(labels.len() >= 7);
    }

    #[test]
    fn n_vms_multiplies() {
        assert_eq!(Scenario::paper(500, 4, 0, Algorithm::Glap).n_vms(), 2000);
    }
}
