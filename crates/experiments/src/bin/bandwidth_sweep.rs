//! Bandwidth sweep: bytes on the wire vs. convergence, per gossip codec.
//!
//! Runs the aggregation phase from divergent-but-sparse Q-tables (the
//! realistic post-learning shape: every PM has trained a few hundred of
//! the 6561 (state, action) pairs, heavily overlapping across PMs) under
//! each payload codec and fault profile, recording per round the
//! cumulative gossip bytes and the population diameter — the
//! machine-checkable face of Theorem 1, fed through the same
//! [`ConvergenceMonitor`] the trainer uses.
//!
//! The run self-checks its two acceptance claims and exits non-zero if
//! either fails:
//!
//! 1. **Payload reduction** — delta and quantized reach the matched
//!    convergence diameter with ≥ 4× fewer bytes than the identity
//!    (dense full-table) payload, on every fault profile.
//! 2. **Theorem 1 under lossy codecs** — every codec's diameter series
//!    is non-increasing within the codec's declared quantization-error
//!    tolerance (zero for the lossless ones).
//!
//! Output: `results/bandwidth_sweep.csv` with
//! `codec,profile,round,bytes_tx,bytes_rx,diameter` rows.

use glap::codec::ALL_CODEC_KINDS;
use glap::prelude::*;
use glap_experiments::{parse_or_exit, TextTable};
use glap_qlearn::QTablePair;
use glap_telemetry::{ConvergenceMonitor, OverlayHealth};
use rand::seq::SliceRandom;
use rand::Rng;

/// Matched convergence point: population diameter at or below this is
/// "converged" for the bytes comparison. Initial diameter is ≈ 2 (values
/// drawn from ±1), so this is a 100× contraction — loose enough that the
/// quantized codec's error floor (≈ 1e-4 here) sits far below it.
const DIAMETER_TARGET: f64 = 0.02;
/// Give up on a cell after this many aggregation rounds.
const ROUNDS_CAP: usize = 150;
/// Trained-entry pool shared by the fleet (overlapping coverage).
const POOL_ENTRIES: usize = 600;
/// Entries each PM trains per table (subset of the pool).
const PER_PM_ENTRIES: usize = 400;
/// Required identity-to-codec byte ratio at the matched diameter.
const REQUIRED_REDUCTION: f64 = 4.0;

/// Post-learning-shaped tables: a shared pool of trained entries, each PM
/// holding a random subset with divergent values. Sparse (pool ≪ 6561)
/// and overlapping, like real per-PM training coverage.
fn sparse_divergent_tables(n: usize, rng: &mut impl Rng) -> Vec<QTablePair> {
    let entries = QTablePair::default().out.raw_values().len();
    let mut pool: Vec<usize> = (0..entries).collect();
    pool.shuffle(rng);
    pool.truncate(POOL_ENTRIES);
    (0..n)
        .map(|_| {
            let mut t = QTablePair::default();
            for table in [&mut t.out, &mut t.r#in] {
                let mut mine = pool.clone();
                mine.shuffle(rng);
                mine.truncate(PER_PM_ENTRIES);
                for i in mine {
                    table.set_index(i, rng.gen_range(-1.0..1.0));
                }
            }
            t
        })
        .collect()
}

/// L∞ population diameter over alive PMs' dense value vectors.
fn diameter(tables: &[QTablePair], overlay: &CyclonOverlay) -> f64 {
    let mut d = 0.0f64;
    let n = tables.len();
    let dim = tables[0].out.raw_values().len();
    for side in 0..2 {
        for i in 0..dim {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (p, t) in tables.iter().enumerate().take(n) {
                if !overlay.is_alive(p as u32) {
                    continue;
                }
                let v = if side == 0 {
                    t.out.raw_values()[i]
                } else {
                    t.r#in.raw_values()[i]
                };
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                d = d.max(hi - lo);
            }
        }
    }
    d
}

struct CellResult {
    kind: CodecKind,
    profile_label: &'static str,
    rounds_to_target: Option<usize>,
    bytes_to_target: u64,
    q_err_tol: f64,
    diameter_monotone: bool,
    final_diameter: f64,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    n: usize,
    kind: CodecKind,
    profile: &FaultProfile,
    profile_label: &'static str,
    seed: u64,
    rows: &mut TextTable,
) -> CellResult {
    let mut rng = stream_rng(seed, Stream::Custom(91));
    let mut overlay = CyclonOverlay::new(n, 8, 4);
    overlay.bootstrap_random(&mut rng);
    let mut tables = sparse_divergent_tables(n, &mut rng);
    let mut net = NetworkModel::new(n, profile.clone(), seed);
    let tracer = Tracer::counting();
    // Identity runs through the codec layer too, so every cell accounts
    // *actual* payload bytes and the comparison is apples to apples.
    let mut codecs = FleetCodecs::new(n, kind);
    let mut monitor = ConvergenceMonitor::new();
    let mut scratch_flat: Vec<f64> = Vec::new();
    let mut reference: Vec<f64> = Vec::new();
    let mut rounds_to_target = None;
    let mut bytes_to_target = 0;
    let mut final_diameter = f64::INFINITY;
    for round in 0..ROUNDS_CAP {
        net.begin_round(round as u64);
        overlay.run_round(
            &mut rng,
            RoundIo::contact(&mut |a, b| net.request(a, b).is_ok()),
        );
        let io = AggIo::full(&mut net, &tracer).with_codec(&mut codecs);
        aggregation_round(&mut tables, &mut overlay, &mut rng, io);

        // Feed the same ConvergenceMonitor the trainer uses, so the
        // Theorem 1 certificate comes from the standard instrumentation.
        let dim = tables[0].out.raw_values().len() * 2;
        scratch_flat.clear();
        for (i, t) in tables.iter().enumerate() {
            if overlay.is_alive(i as u32) {
                scratch_flat.extend_from_slice(t.out.raw_values());
                scratch_flat.extend_from_slice(t.r#in.raw_values());
            }
        }
        let unified = unified_table(&tables);
        reference.clear();
        reference.extend_from_slice(unified.out.raw_values());
        reference.extend_from_slice(unified.r#in.raw_values());
        let alive: Vec<bool> = (0..overlay.len())
            .map(|i| overlay.is_alive(i as u32))
            .collect();
        let health =
            OverlayHealth::from_in_degrees(&overlay.in_degrees(), &alive, overlay.is_connected());
        monitor.record(
            Phase::Aggregation,
            round as u64,
            scratch_flat.chunks_exact(dim),
            &reference,
            health,
        );

        let d = diameter(&tables, &overlay);
        final_diameter = d;
        let bytes_tx = tracer.counter_total("net.bytes_tx");
        let bytes_rx = tracer.counter_total("net.bytes_rx");
        rows.row([
            kind.label().to_string(),
            profile_label.to_string(),
            round.to_string(),
            bytes_tx.to_string(),
            bytes_rx.to_string(),
            format!("{d:.6e}"),
        ]);
        if d <= DIAMETER_TARGET {
            rounds_to_target = Some(round);
            bytes_to_target = bytes_tx;
            break;
        }
    }
    // Lossy codecs certify Theorem 1 within their accumulated
    // quantization error: each exchange may re-inject at most the
    // declared per-payload bound on both legs.
    let q_err = tracer.counter_total("codec.q_err_max_1e9") as f64 * 1e-9;
    let q_err_tol = 4.0 * q_err;
    CellResult {
        kind,
        profile_label,
        rounds_to_target,
        bytes_to_target,
        q_err_tol,
        diameter_monotone: monitor.diameter_is_nonincreasing_within(Phase::Aggregation, q_err_tol),
        final_diameter,
    }
}

fn main() {
    let cli = parse_or_exit();
    let n = cli.grid.sizes.first().copied().unwrap_or(48).min(128);
    let seed = 42;
    let profiles: [(&'static str, FaultProfile); 3] = [
        ("ideal", FaultProfile::none()),
        ("lossy", FaultProfile::lossy(0.15)),
        ("faulty", FaultProfile::faulty(0.1, 0.005, 0.5)),
    ];

    let mut rows = TextTable::new([
        "codec", "profile", "round", "bytes_tx", "bytes_rx", "diameter",
    ]);
    let mut results = Vec::new();
    for (label, profile) in &profiles {
        for &kind in &ALL_CODEC_KINDS {
            let r = run_cell(n, kind, profile, label, seed, &mut rows);
            if cli.verbose {
                eprintln!(
                    "{label}/{kind}: rounds {:?}, bytes {}, monotone {}",
                    r.rounds_to_target, r.bytes_to_target, r.diameter_monotone
                );
            }
            results.push(r);
        }
    }

    println!(
        "== Gossip bandwidth vs. convergence ({n} PMs, diameter target {DIAMETER_TARGET}) ==\n"
    );
    let mut summary = TextTable::new([
        "codec",
        "profile",
        "rounds",
        "bytes_to_target",
        "reduction_vs_identity",
        "q_err_tol",
        "diameter_monotone",
    ]);
    let mut failures: Vec<String> = Vec::new();
    for (label, _) in &profiles {
        let identity_bytes = results
            .iter()
            .find(|r| r.profile_label == *label && r.kind == CodecKind::Identity)
            .map(|r| r.bytes_to_target)
            .unwrap_or(0);
        for r in results.iter().filter(|r| r.profile_label == *label) {
            let reduction = if r.bytes_to_target > 0 {
                identity_bytes as f64 / r.bytes_to_target as f64
            } else {
                0.0
            };
            summary.row([
                r.kind.label().to_string(),
                r.profile_label.to_string(),
                r.rounds_to_target
                    .map_or_else(|| "cap".into(), |x| x.to_string()),
                r.bytes_to_target.to_string(),
                format!("{reduction:.2}"),
                format!("{:.3e}", r.q_err_tol),
                r.diameter_monotone.to_string(),
            ]);
            if r.rounds_to_target.is_none() {
                failures.push(format!(
                    "{label}/{}: never reached diameter {DIAMETER_TARGET} \
                     (final {:.4})",
                    r.kind, r.final_diameter
                ));
            }
            if !r.diameter_monotone {
                failures.push(format!(
                    "{label}/{}: diameter series increased beyond tolerance {:.3e}",
                    r.kind, r.q_err_tol
                ));
            }
            if matches!(r.kind, CodecKind::Delta | CodecKind::Quantized)
                && reduction < REQUIRED_REDUCTION
            {
                failures.push(format!(
                    "{label}/{}: only {reduction:.2}x payload reduction \
                     (need >= {REQUIRED_REDUCTION}x)",
                    r.kind
                ));
            }
        }
    }
    print!("{}", summary.render());
    println!(
        "\nnote: bytes count actual encoded payloads plus wire framing for all four \
         codecs (identity ships the dense table). The monotone column is Theorem 1 \
         checked by the ConvergenceMonitor, with the quantized codec allowed its \
         declared accumulated error."
    );

    std::fs::create_dir_all(&cli.out_dir).expect("create out dir");
    let path = cli.out_dir.join("bandwidth_sweep.csv");
    rows.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("\nall codec acceptance checks passed");
}
