//! Regenerates every committed `BENCH_*.json` baseline in one run, all
//! in the uniform `glap-bench-v1` schema (suite, git rev, per-benchmark
//! name/scenario/median ns/iterations):
//!
//! * `BENCH_profile.json`  — the perf-gate suite (what `perf_gate` reads);
//! * `BENCH_hotpath.json`  — the four hot loops at 1024/4096 PMs;
//! * `BENCH_snapshot.json` — checkpoint encode/decode/restore/CRC;
//! * `BENCH_codec.json`    — gossip payload codec encode/exchange costs;
//! * `BENCH_scale.json`    — the 1k→250k PM scale trajectory (per-round
//!   phase costs, including the fused learn+aggregate round; `perf_gate`
//!   prints a 100k/4k advisory from it). The 100k/250k rows take
//!   minutes: `GLAP_BENCH_SKIP_SCALE=1` skips the suite for a quick
//!   refresh of the others.
//!
//! ```text
//! bench_refresh                       # all suites, 300ms budget each
//! GLAP_BENCH_BUDGET_MS=1500 bench_refresh   # steadier medians
//! bench_refresh --out .               # where to write (default repo root)
//! ```
//!
//! Baselines are machine-relative: refresh and commit them from the same
//! class of machine CI runs on, and re-refresh after intentional
//! performance changes so the gate tracks the new normal.

use glap_experiments::{
    codec_records, git_rev, hotpath_records, parse_or_exit, run_suite, scale_records,
    snapshot_records,
};
use glap_profile::Baseline;
use std::path::Path;

/// Per-case sampling budget: `GLAP_BENCH_BUDGET_MS`, else 300ms.
fn budget_ms() -> u64 {
    std::env::var("GLAP_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn write_suite(dir: &Path, suite: &str, baseline: &Baseline) {
    let path = dir.join(format!("BENCH_{suite}.json"));
    std::fs::write(&path, baseline.to_json()).expect("write baseline");
    eprintln!(
        "wrote {} ({} benchmarks)",
        path.display(),
        baseline.benchmarks.len()
    );
}

fn main() {
    let cli = parse_or_exit();
    // Baselines live at the repo root (committed files), not results/ —
    // only an explicit --out moves them.
    let dir = if cli.out_dir == Path::new("results") {
        std::path::PathBuf::from(".")
    } else {
        cli.out_dir.clone()
    };
    std::fs::create_dir_all(&dir).expect("create output directory");
    let budget = budget_ms();
    let rev = git_rev();
    eprintln!("refreshing baselines at rev {rev}, {budget}ms budget per case…");

    let mut suites = vec![
        ("profile", run_suite(budget)),
        ("hotpath", hotpath_records(budget)),
        ("snapshot", snapshot_records(budget)),
        ("codec", codec_records(budget)),
    ];
    if std::env::var_os("GLAP_BENCH_SKIP_SCALE").is_none() {
        eprintln!("measuring the scale trajectory (100k/250k-PM rows take minutes)…");
        suites.push(("scale", scale_records(budget)));
    } else {
        eprintln!("GLAP_BENCH_SKIP_SCALE set: leaving BENCH_scale.json untouched");
    }
    for (suite, benchmarks) in suites {
        let baseline = Baseline {
            suite: suite.to_string(),
            git_rev: rev.clone(),
            budget_ms: budget,
            benchmarks,
        };
        write_suite(&dir, suite, &baseline);
    }
}
