//! Runs one scenario with GLAP training hosted on real nodes behind a
//! chosen transport (the grid's first size/ratio, repetition 0) —
//! the byte-identity harness for the NodeCore/Transport split.
//!
//! ```text
//! node_runtime --transport sim     --sizes 64 --dump-tables sim.bin
//! node_runtime --transport channel --sizes 64 --threads 4 \
//!              --dump-tables chan.bin
//! cmp sim.bin chan.bin   # identical: same Q-tables, bit for bit
//! ```
//!
//! The rounds CSV, counters CSV and dumped tables of a `--transport
//! channel` run match the `--transport sim` run byte for byte at any
//! worker count, with or without `--drop`/`--crash`/`--recover` fault
//! injection — CI diffs exactly these artifacts. Checkpointing flags
//! (`--checkpoint-every`/`--stop-at-round`/`--resume`) interrupt and
//! resume the *training* phase.

use glap_experiments::{
    parse_or_exit, rounds_csv, run_node_scenario_instrumented, Algorithm, Scenario,
};

fn main() {
    let cli = parse_or_exit();
    let sc = Scenario {
        n_pms: cli.grid.sizes[0],
        ratio: cli.grid.ratios[0],
        rep: 0,
        algorithm: cli.algo.unwrap_or(Algorithm::Glap),
        rounds: cli.grid.rounds,
        glap: cli.grid.glap,
        trace_cfg: cli.grid.trace_cfg,
        vm_mix: Default::default(),
        fault: cli.fault(),
    };
    let tracer = cli.tracer();
    let opts = cli.checkpoint_opts();
    if let Some(dir) = &opts.dir {
        std::fs::create_dir_all(dir).expect("create checkpoint directory");
    }

    let profiler = cli.profiler();
    let outcome =
        run_node_scenario_instrumented(&sc, cli.transport, cli.threads, &tracer, &opts, &profiler)
            .unwrap_or_else(|e| {
                eprintln!("{}: {e}", sc.id());
                std::process::exit(1);
            });
    cli.finish_profile(&format!("{}_node", sc.id()), &profiler);
    tracer.flush();
    cli.write_counters(&tracer).expect("write counter CSVs");

    if let (Some(path), Some(bytes)) = (&cli.dump_tables, &outcome.tables) {
        std::fs::write(path, bytes).expect("write table dump");
        eprintln!("wrote {} ({} bytes)", path.display(), bytes.len());
    }

    match outcome.result {
        Some(r) => {
            std::fs::create_dir_all(&cli.out_dir).expect("create output directory");
            let path = cli.out_dir.join(format!("{}_rounds.csv", sc.id()));
            std::fs::write(&path, rounds_csv(&r)).expect("write rounds CSV");
            println!(
                "{} [{:?}]: {} rounds, final active {}, {} migrations, {} wake-ups, slav {:.6e}",
                sc.id(),
                cli.transport,
                r.collector.samples.len(),
                r.collector.samples.last().map_or(0, |s| s.active_pms),
                r.collector.total_migrations(),
                r.wake_ups,
                r.sla.slav,
            );
            eprintln!("wrote {}", path.display());
        }
        None => {
            println!(
                "{}: training stopped at round {} (resume with --resume)",
                sc.id(),
                opts.stop_at_round.unwrap_or(0),
            );
        }
    }
}
