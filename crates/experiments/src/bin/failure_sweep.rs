//! Failure sweep: how GLAP degrades when the management network does.
//!
//! The paper's evaluation assumes a perfectly reliable network; this
//! experiment injects message loss and PM crash/recovery through the
//! [`glap_dcsim::NetworkModel`] and measures, per (drop rate, crash rate)
//! cell:
//!
//! * total energy (active-PM power integrated over the day plus migration
//!   energy, in kWh),
//! * SLA violations (the paper's SLAV = SLAVO × SLALM),
//! * migrations completed,
//! * mean active PMs, and
//! * how many aggregation gossip rounds divergent Q-tables need to reach
//!   0.999 mean pairwise cosine similarity under that fault profile —
//!   the convergence cost of re-sends and crashed partners.
//!
//! Output: `results/failure_sweep.csv`.

use glap::prelude::*;
use glap_cluster::DataCenter;
use glap_dcsim::{run_simulation_with_net, Observer};
use glap_experiments::{
    build_policy, build_world, fnum, parallel_map, parse_or_exit, Algorithm, Scenario, TextTable,
};
use glap_metrics::{sla_metrics, MetricsCollector};
use glap_qlearn::{PmState, QTablePair, VmAction};
use glap_workload::OffsetTrace;
use rand::Rng;

/// Drop rates swept (0.2 is the acceptance point of the fault layer).
const DROP_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.3];
/// Per-round crash hazards swept (recovery rate fixed at 0.3).
const CRASH_RATES: [f64; 3] = [0.0, 0.01, 0.03];
const RECOVERY_RATE: f64 = 0.3;
/// Give up on table convergence after this many aggregation rounds.
const CONVERGENCE_CAP: usize = 200;

/// Integrates active-PM power over the day (trapezoid-free: one sample
/// per 2-minute round is the simulator's native resolution).
struct EnergyMeter {
    joules: f64,
}

impl Observer for EnergyMeter {
    fn on_round_end(&mut self, _round: u64, dc: &mut DataCenter) {
        let secs = dc.config().round_seconds;
        for pm in dc.pms() {
            if pm.is_active() {
                self.joules += dc.power_model().watts(pm.utilization().cpu()) * secs;
            }
        }
    }
}

struct CellResult {
    drop_rate: f64,
    crash_rate: f64,
    energy_kwh: f64,
    slav: f64,
    migrations: u64,
    mean_active: f64,
    convergence_rounds: usize,
    /// Gossip bytes pushed / received during the convergence run.
    bytes_tx: u64,
    bytes_rx: u64,
    delivered_frac: f64,
}

/// A maximally divergent table: every (state, action) value is an
/// independent symmetric uniform draw, so two fresh tables have ~zero
/// expected cosine similarity (unlike `glap::synthetic_table`, whose
/// shared deterministic structure makes tables near-identical already).
fn divergent_table(rng: &mut impl Rng) -> QTablePair {
    let mut q = QTablePair::new(Default::default());
    for s in PmState::all() {
        for a in VmAction::all() {
            q.out.set(s, a, rng.gen_range(-1.0..1.0));
            q.r#in.set(s, a, rng.gen_range(-1.0..1.0));
        }
    }
    q
}

/// Aggregation rounds until fully divergent tables reach 0.999 mean
/// pairwise cosine similarity over `profile`, or the cap — plus the
/// gossip bytes pushed (`net.bytes_tx`) and received (`net.bytes_rx`)
/// getting there, under the configured payload codec.
fn convergence_rounds(
    n: usize,
    profile: &FaultProfile,
    seed: u64,
    codec: CodecKind,
) -> (usize, u64, u64) {
    let mut rng = stream_rng(seed, Stream::Custom(77));
    let mut overlay = CyclonOverlay::new(n, 8, 4);
    overlay.bootstrap_random(&mut rng);
    let mut tables: Vec<QTablePair> = (0..n).map(|_| divergent_table(&mut rng)).collect();
    let mut net = NetworkModel::new(n, profile.clone(), seed);
    let tracer = Tracer::counting();
    let mut codecs = (codec != CodecKind::Identity).then(|| FleetCodecs::new(n, codec));
    let mut rounds = CONVERGENCE_CAP;
    for round in 0..CONVERGENCE_CAP {
        if mean_pairwise_similarity(&tables, &overlay, usize::MAX, &mut rng) > 0.999 {
            rounds = round;
            break;
        }
        net.begin_round(round as u64);
        overlay.run_round(
            &mut rng,
            RoundIo::contact(&mut |a, b| net.request(a, b).is_ok()),
        );
        let mut io = AggIo::full(&mut net, &tracer);
        if let Some(codecs) = codecs.as_mut() {
            io = io.with_codec(codecs);
        }
        aggregation_round(&mut tables, &mut overlay, &mut rng, io);
    }
    (
        rounds,
        tracer.counter_total("net.bytes_tx"),
        tracer.counter_total("net.bytes_rx"),
    )
}

fn run_cell(sc: &Scenario) -> CellResult {
    let profile = sc.fault.clone();
    let (mut dc, trace) = build_world(sc);
    let mut policy = build_policy(sc, &dc, &trace);
    let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
    let mut collector = MetricsCollector::new();
    let mut energy = EnergyMeter { joules: 0.0 };
    let mut net = NetworkModel::new(sc.n_pms, profile.clone(), sc.policy_seed());
    run_simulation_with_net(
        &mut dc,
        &mut day,
        policy.as_mut(),
        &mut [&mut collector, &mut energy],
        sc.rounds,
        sc.policy_seed(),
        &mut net,
    );
    let sla = sla_metrics(&dc);
    let delivered_frac = if net.stats.attempts == 0 {
        1.0
    } else {
        net.stats.delivered as f64 / net.stats.attempts as f64
    };
    let (conv_rounds, bytes_tx, bytes_rx) =
        convergence_rounds(sc.n_pms, &profile, sc.policy_seed(), sc.glap.codec);
    CellResult {
        drop_rate: profile.drop_prob,
        crash_rate: profile.crash_rate,
        energy_kwh: (energy.joules + collector.total_migration_energy_j()) / 3.6e6,
        slav: sla.slav,
        migrations: collector.total_migrations(),
        mean_active: collector.mean_active_pms(),
        convergence_rounds: conv_rounds,
        bytes_tx,
        bytes_rx,
        delivered_frac,
    }
}

fn main() {
    let cli = parse_or_exit();
    let size = cli.grid.sizes.first().copied().unwrap_or(100);
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);

    let mut scenarios = Vec::new();
    for &drop in &DROP_RATES {
        for &crash in &CRASH_RATES {
            let mut sc = Scenario::paper(size, ratio, 0, Algorithm::Glap);
            sc.rounds = cli.grid.rounds;
            sc.glap = cli.grid.glap;
            sc.trace_cfg = cli.grid.trace_cfg;
            sc.fault = FaultProfile {
                drop_prob: drop,
                crash_rate: crash,
                recovery_rate: if crash > 0.0 { RECOVERY_RATE } else { 0.0 },
                ..FaultProfile::none()
            };
            scenarios.push(sc);
        }
    }

    let results = parallel_map(scenarios, cli.threads, run_cell);

    let mut table = TextTable::new([
        "drop_rate",
        "crash_rate",
        "energy_kwh",
        "slav",
        "migrations",
        "mean_active_pms",
        "agg_convergence_rounds",
        "bytes_tx",
        "bytes_rx",
        "delivered_frac",
    ]);
    for r in &results {
        table.row([
            format!("{}", r.drop_rate),
            format!("{}", r.crash_rate),
            fnum(r.energy_kwh),
            format!("{:.6}", r.slav),
            r.migrations.to_string(),
            fnum(r.mean_active),
            r.convergence_rounds.to_string(),
            r.bytes_tx.to_string(),
            r.bytes_rx.to_string(),
            fnum(r.delivered_frac),
        ]);
    }

    println!(
        "== GLAP under network faults ({size} PMs, ratio {ratio}, {} rounds) ==\n",
        cli.grid.rounds
    );
    print!("{}", table.render());
    println!(
        "\nnote: the zero-fault row is byte-identical to the ideal-network runs \
         (integration_determinism pins this); rising drop rates cost extra aggregation \
         rounds — the resend/backoff path — before consolidation quality degrades."
    );

    let conv_ok = results
        .iter()
        .all(|r| r.convergence_rounds < CONVERGENCE_CAP);
    if !conv_ok {
        eprintln!("warning: some cells never reached 0.999 table similarity");
    }

    std::fs::create_dir_all(&cli.out_dir).expect("create out dir");
    let path = cli.out_dir.join("failure_sweep.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
