//! The perf-regression gate: re-measures the hot-path suite and compares
//! each median against the committed `BENCH_profile.json` baseline,
//! exiting nonzero when any scenario slowed past the tolerance.
//!
//! ```text
//! perf_gate                      # default tolerance 1.0 (fail past 2x)
//! perf_gate --tolerance 0.25     # fail past 1.25x the baseline
//! GLAP_BENCH_BUDGET_MS=1000 perf_gate   # steadier medians
//! ```
//!
//! The measured run is also written to `<out>/perf_gate_measured.json`
//! (same `glap-bench-v1` schema as the baseline) so CI can upload it as
//! an artifact; refresh the committed baseline with `bench_refresh`.

use glap_experiments::{git_rev, parse_or_exit, run_suite};
use glap_profile::{compare, fmt_ns, Baseline};

/// Per-case sampling budget: `GLAP_BENCH_BUDGET_MS`, else 300ms (the
/// same default as the in-repo criterion stub).
fn budget_ms() -> u64 {
    std::env::var("GLAP_BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

fn main() {
    let cli = parse_or_exit();
    let baseline_path = std::path::Path::new("BENCH_profile.json");
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!(
            "cannot read {} ({e}); regenerate it with bench_refresh",
            baseline_path.display()
        );
        std::process::exit(2);
    });
    let baseline = Baseline::from_json(&text).unwrap_or_else(|e| {
        eprintln!("{}: {e}", baseline_path.display());
        std::process::exit(2);
    });

    let budget = budget_ms();
    eprintln!(
        "measuring {} scenarios ({budget}ms budget each) against baseline rev {}…",
        baseline.benchmarks.len(),
        baseline.git_rev
    );
    let measured = run_suite(budget);
    let outcomes = compare(&baseline, &measured, cli.tolerance);

    println!(
        "{:<28} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "measured", "ratio"
    );
    let mut regressed = false;
    for o in &outcomes {
        let (base, verdict) = match o.baseline_ns {
            Some(ns) => (
                fmt_ns(ns),
                if o.regressed {
                    regressed = true;
                    "REGRESSED"
                } else {
                    "ok"
                },
            ),
            None => ("-".to_string(), "no baseline"),
        };
        println!(
            "{:<28} {:>12} {:>12} {:>7.2}x  {verdict}",
            o.name,
            base,
            fmt_ns(o.measured_ns),
            o.ratio,
        );
    }

    // Scale advisory (never fails the gate): the committed 1k→250k
    // trajectory's headline ratio — the *fused* learn+aggregate round
    // (the arena engine's single sweep touching each Q-table once, the
    // steady-state shape of a GLAP round) at 100k PMs over the 4k
    // figure. The committed criterion is ≤ ~30x *on ≥4 cores* (size
    // ratio 25x); the trajectory is measured serially, and the sharded
    // waves carry a qualified ≥2x speedup on ≥4 cores (byte-identity
    // pinned, so threads change only wall-clock), so the serial bound
    // here is 60x. Past that, the arena/fused-round scaling regressed
    // and the trajectory should be re-measured with bench_refresh.
    if let Ok(text) = std::fs::read_to_string("BENCH_scale.json") {
        match Baseline::from_json(&text) {
            Ok(scale) => {
                let ns_of = |name: &str| {
                    scale
                        .benchmarks
                        .iter()
                        .find(|b| b.name == name)
                        .map(|b| b.median_ns)
                };
                match (
                    ns_of("learn_plus_agg_round_4000pms"),
                    ns_of("learn_plus_agg_round_100000pms"),
                ) {
                    (Some(at_4k), Some(at_100k)) if at_4k > 0 => {
                        let ratio = at_100k as f64 / at_4k as f64;
                        let verdict = if ratio <= 60.0 { "ok" } else { "ADVISORY" };
                        println!(
                            "scale: fused learn+agg round {} @4k → {} @100k PMs \
                             ({ratio:.1}x serial for 25x the PMs; ~{:.0}x on ≥4 cores \
                             via the sharded waves, target ≤30x there / ≤60x serial)  {verdict}",
                            fmt_ns(at_4k),
                            fmt_ns(at_100k),
                            ratio / 2.0,
                        );
                        if ratio > 60.0 {
                            eprintln!(
                                "scale advisory: 100k/4k fused learn+agg ratio {ratio:.1}x \
                                 exceeds the 60x serial bound (30x on ≥4 cores) — the \
                                 arena/fused-round scaling regressed \
                                 (advisory only, gate unaffected)"
                            );
                        }
                    }
                    _ => eprintln!(
                        "BENCH_scale.json lacks the 4k/100k learn_plus_agg rows; \
                         re-run bench_refresh for the advisory"
                    ),
                }
            }
            Err(e) => eprintln!("BENCH_scale.json: {e} (advisory skipped)"),
        }
    }

    std::fs::create_dir_all(&cli.out_dir).expect("create output directory");
    let out = Baseline {
        suite: "profile".to_string(),
        git_rev: git_rev(),
        budget_ms: budget,
        benchmarks: measured,
    };
    let path = cli.out_dir.join("perf_gate_measured.json");
    std::fs::write(&path, out.to_json()).expect("write measured JSON");
    eprintln!("wrote {}", path.display());

    if regressed {
        eprintln!(
            "perf gate FAILED: at least one scenario slowed past {:.0}% of baseline \
             (override with --tolerance, refresh with bench_refresh)",
            100.0 * (1.0 + cli.tolerance)
        );
        std::process::exit(1);
    }
    eprintln!("perf gate passed (tolerance {:.2})", cli.tolerance);
}
