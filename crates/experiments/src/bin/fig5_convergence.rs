//! Regenerates Figure 5: Q-value convergence during the learning phase
//! (WOG) and the aggregation phase (WG) for VM:PM ratios 2, 3, 4.

use glap_experiments::{fig5_convergence_profiled, parse_or_exit};

fn main() {
    let cli = parse_or_exit();
    let n_pms = cli.grid.sizes.first().copied().unwrap_or(1000);
    let profiler = cli.profiler();
    let out = fig5_convergence_profiled(n_pms, &cli.grid.ratios, cli.grid.glap, 0, &profiler);
    cli.finish_profile("fig5", &profiler);
    print!("{}", out.render());
    let path = cli.out_dir.join("fig5_convergence.csv");
    out.table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
