//! Runs the full evaluation grid once and regenerates every figure and
//! table that depends on it (Figures 6-10, Table I), plus Figure 5's
//! convergence study and the ablations.

use glap_experiments::{
    ablation_summary, fig10_energy, fig5_convergence, fig6_packing, fig7_overloaded,
    fig8_migrations, fig9_cumulative, parse_or_exit, run_grid_with, run_scenario_traced,
    table1_sla, Algorithm,
};

fn main() {
    let cli = parse_or_exit();

    // Telemetry (--trace / --counters): record the grid's first scenario
    // with a full event trace before the measured sweep.
    let tracer = cli.tracer();
    if tracer.is_on() {
        if let Some(sc) = cli.grid.scenarios(&Algorithm::PAPER_SET).first() {
            eprintln!("tracing scenario {}…", sc.id());
            run_scenario_traced(sc, &tracer);
            tracer.flush();
            cli.write_counters(&tracer).expect("write counter CSVs");
            eprintln!("traced {} events", tracer.events_emitted());
        }
    }

    // Figure 5 is a training-only study (no consolidation day).
    let fig5_size = cli.grid.sizes.first().copied().unwrap_or(1000);
    let f5 = fig5_convergence(fig5_size, &cli.grid.ratios, cli.grid.glap, 0);
    print!("{}", f5.render());
    f5.table
        .save_csv(&cli.out_dir.join("fig5_convergence.csv"))
        .expect("write CSV");

    // One grid run feeds Figures 6-10 and Table I.
    let results = run_grid_with(&cli.grid, &Algorithm::PAPER_SET, &cli);
    let stride = (cli.grid.rounds as usize / 36).max(1);
    let outputs = [
        ("fig6_packing.csv", fig6_packing(&results)),
        ("fig7_overloaded.csv", fig7_overloaded(&results)),
        ("fig8_migrations.csv", fig8_migrations(&results)),
        (
            "fig9_cumulative.csv",
            fig9_cumulative(&results, fig5_size, stride),
        ),
        ("fig10_energy.csv", fig10_energy(&results)),
        ("table1_sla.csv", table1_sla(&results)),
    ];
    for (file, out) in outputs {
        print!("\n{}", out.render());
        out.table
            .save_csv(&cli.out_dir.join(file))
            .expect("write CSV");
    }

    // Ablations on the same grid shape.
    let ab_results = run_grid_with(&cli.grid, &Algorithm::ABLATION_SET, &cli);
    let ab = ablation_summary(&ab_results);
    print!("\n{}", ab.render());
    ab.table
        .save_csv(&cli.out_dir.join("ablations.csv"))
        .expect("write CSV");

    eprintln!("\nCSV files in {}", cli.out_dir.display());
}
