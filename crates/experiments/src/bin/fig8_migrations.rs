//! Regenerates Figure 8: number of migrations per round
//! (p10 / median / p90) and the mean run total.

use glap_experiments::{fig8_migrations, parse_or_exit, run_grid_with, Algorithm};

fn main() {
    let cli = parse_or_exit();
    let results = run_grid_with(&cli.grid, &Algorithm::PAPER_SET, &cli);
    let out = fig8_migrations(&results);
    print!("{}", out.render());
    let path = cli.out_dir.join("fig8_migrations.csv");
    out.table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
