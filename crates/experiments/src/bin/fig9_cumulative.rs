//! Regenerates Figure 9: cumulative number of migrations over the day for
//! one cluster size and all ratios.

use glap_experiments::{
    downsample, fig9_cumulative, parse_or_exit, run_grid_with, sparkline, Algorithm,
};

fn main() {
    let cli = parse_or_exit();
    let results = run_grid_with(&cli.grid, &Algorithm::PAPER_SET, &cli);
    let size = cli.grid.sizes.first().copied().unwrap_or(1000);
    let stride = (cli.grid.rounds as usize / 36).max(1);
    let out = fig9_cumulative(&results, size, stride);
    print!("{}", out.render());

    // Inline curve shapes (one rep per algorithm, first listed ratio).
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);
    println!(
        "
cumulative-migration curve shapes ({size} PMs, ratio {ratio}):"
    );
    for algo in Algorithm::PAPER_SET {
        if let Some((_, r)) = results
            .iter()
            .find(|(sc, _)| sc.algorithm == algo && sc.n_pms == size && sc.ratio == ratio)
        {
            let series: Vec<f64> = r
                .collector
                .cumulative_migrations()
                .iter()
                .map(|&x| x as f64)
                .collect();
            println!(
                "  {:<9} {}",
                algo.label(),
                sparkline(&downsample(&series, 60))
            );
        }
    }
    let path = cli.out_dir.join("fig9_cumulative.csv");
    out.table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
