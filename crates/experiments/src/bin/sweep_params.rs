//! Hyperparameter sweep: how GLAP's end-to-end quality depends on the
//! Q-learning rate α and discount factor γ of Eq. (1) — the ablation
//! DESIGN.md §6 calls out. Each (α, γ) cell trains and runs a full
//! consolidation day on the identical world.

use glap_experiments::{
    fnum, parse_or_exit, run_scenario_instrumented, Algorithm, CheckpointOpts, Scenario, TextTable,
};
use glap_profile::SweepProgress;
use glap_qlearn::QParams;
use glap_telemetry::Tracer;

fn main() {
    let cli = parse_or_exit();
    let alphas = [0.1, 0.3, 0.5, 0.9];
    let gammas = [0.0, 0.4, 0.8, 0.95];

    let mut table = TextTable::new([
        "alpha",
        "gamma",
        "overloaded_fraction",
        "total_migrations",
        "mean_active",
        "slav",
    ]);
    let size = cli.grid.sizes.first().copied().unwrap_or(200);
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);

    // One profiler across every cell: the sweep's total span tree shows
    // where the whole grid spends its time, cell after cell.
    let profiler = cli.profiler();
    let ticker = SweepProgress::new(alphas.len() * gammas.len() * cli.grid.reps, cli.progress);
    for &alpha in &alphas {
        for &gamma in &gammas {
            let mut glap = cli.grid.glap;
            glap.qparams = QParams { alpha, gamma };
            let mut frac = 0.0;
            let mut migs = 0.0;
            let mut active = 0.0;
            let mut slav = 0.0;
            for rep in 0..cli.grid.reps {
                let sc = Scenario {
                    n_pms: size,
                    ratio,
                    rep,
                    algorithm: Algorithm::Glap,
                    rounds: cli.grid.rounds,
                    glap,
                    trace_cfg: cli.grid.trace_cfg,
                    vm_mix: Default::default(),
                    fault: Default::default(),
                };
                let (result, _) = run_scenario_instrumented(
                    &sc,
                    &Tracer::off(),
                    &CheckpointOpts::default(),
                    &profiler,
                    false,
                )
                .expect("no checkpoint I/O configured");
                let r = result.expect("runs to completion");
                ticker.cell_done(&format!("a{alpha}-g{gamma}-r{rep}"));
                frac += r.collector.mean_overloaded_fraction();
                migs += r.collector.total_migrations() as f64;
                active += r.collector.mean_active_pms();
                slav += r.sla.slav;
            }
            let n = cli.grid.reps as f64;
            table.row([
                format!("{alpha}"),
                format!("{gamma}"),
                fnum(frac / n),
                fnum(migs / n),
                fnum(active / n),
                fnum(slav / n),
            ]);
            if cli.verbose {
                eprintln!("alpha={alpha} gamma={gamma} done");
            }
        }
    }

    println!("== GLAP hyperparameter sweep ({size} PMs, ratio {ratio}) ==\n");
    print!("{}", table.render());
    println!(
        "\nnote: γ = 0 makes the learner myopic (the paper: 'a factor of zero causes the \
         agent to only consider the current rewards'); large α makes Q-values chase the \
         latest episode ('deterministic action')."
    );
    cli.finish_profile("sweep_params", &profiler);
    let path = cli.out_dir.join("sweep_params.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
