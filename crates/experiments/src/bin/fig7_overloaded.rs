//! Regenerates Figure 7: number of overloaded PMs per round
//! (p10 / median / p90 across rounds and repetitions).

use glap_experiments::{fig7_overloaded, parse_or_exit, run_grid_with, Algorithm};

fn main() {
    let cli = parse_or_exit();
    let results = run_grid_with(&cli.grid, &Algorithm::PAPER_SET, &cli);
    let out = fig7_overloaded(&results);
    print!("{}", out.render());
    let path = cli.out_dir.join("fig7_overloaded.csv");
    out.table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
