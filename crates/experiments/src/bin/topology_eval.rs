//! Topology-awareness evaluation — the paper's future work of switching
//! off network switches. Compares standard GLAP against rack-aware GLAP
//! on a racked data center: active PMs, active ToR switches, migration
//! energy and total infrastructure energy (PMs + switches) over a day.

use glap::{train, unified_table, GlapPolicy};
use glap_cluster::{DataCenter, DataCenterConfig, Topology, VmSpec};
use glap_dcsim::{run_simulation, stream_rng, Observer, Stream};
use glap_experiments::{fnum, parse_or_exit, Algorithm, Scenario, TextTable};
use glap_metrics::MetricsCollector;
use glap_workload::{GoogleLikeTraceGen, OffsetTrace};

/// Samples switch and PM energy each round.
struct EnergyObserver {
    topology: Topology,
    switch_energy_j: f64,
    pm_energy_j: f64,
    active_rack_rounds: u64,
    rounds: u64,
}

impl Observer for EnergyObserver {
    fn on_round_end(&mut self, _round: u64, dc: &mut DataCenter) {
        let secs = dc.config().round_seconds;
        self.switch_energy_j += self.topology.switch_power_w(dc) * secs;
        let pm_w: f64 = dc
            .pms()
            .filter(|p| p.is_active())
            .map(|p| dc.power_model().watts(p.utilization().cpu()))
            .sum();
        self.pm_energy_j += pm_w * secs;
        self.active_rack_rounds += self.topology.active_racks(dc) as u64;
        self.rounds += 1;
    }
}

fn main() {
    let cli = parse_or_exit();
    let size = cli.grid.sizes.first().copied().unwrap_or(200);
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);
    let topology = Topology {
        pms_per_rack: 20,
        ..Topology::default()
    };

    let mut table = TextTable::new([
        "variant",
        "mean_active_pms",
        "mean_active_racks",
        "overloaded_fraction",
        "migrations",
        "migration_kj",
        "switch_kj",
        "pm_mj",
    ]);

    for (name, rack_aware) in [("GLAP", false), ("GLAP-rack", true)] {
        let mut agg = [0.0f64; 7];
        for rep in 0..cli.grid.reps {
            let sc = Scenario {
                rep,
                rounds: cli.grid.rounds,
                glap: cli.grid.glap,
                ..Scenario::paper(size, ratio, rep, Algorithm::Glap)
            };
            // Racked world (same seeds as the flat one).
            let mut dc = DataCenter::new(DataCenterConfig::paper_with_topology(size, topology));
            for _ in 0..sc.n_vms() {
                dc.add_vm(VmSpec::EC2_MICRO);
            }
            dc.random_placement(&mut stream_rng(sc.world_seed(), Stream::Placement));
            let total_rounds = sc.glap.learning_rounds + sc.rounds as usize;
            let trace = GoogleLikeTraceGen::new(sc.trace_cfg).generate(
                sc.n_vms(),
                total_rounds,
                &mut stream_rng(sc.world_seed(), Stream::Trace),
            );

            let mut train_dc = dc.clone();
            let mut train_trace = trace.clone();
            let (tables, _) = train(
                &mut train_dc,
                &mut train_trace,
                &sc.glap,
                sc.policy_seed(),
                false,
            );
            let mut policy = GlapPolicy::with_shared_table(sc.glap, unified_table(&tables));
            policy.rack_aware = rack_aware;

            let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
            let mut metrics = MetricsCollector::new();
            let mut energy = EnergyObserver {
                topology,
                switch_energy_j: 0.0,
                pm_energy_j: 0.0,
                active_rack_rounds: 0,
                rounds: 0,
            };
            run_simulation(
                &mut dc,
                &mut day,
                &mut policy,
                &mut [&mut metrics, &mut energy],
                sc.rounds,
                sc.policy_seed(),
            );

            agg[0] += metrics.mean_active_pms();
            agg[1] += energy.active_rack_rounds as f64 / energy.rounds as f64;
            agg[2] += metrics.mean_overloaded_fraction();
            agg[3] += metrics.total_migrations() as f64;
            agg[4] += metrics.total_migration_energy_j() / 1000.0;
            agg[5] += energy.switch_energy_j / 1000.0;
            agg[6] += energy.pm_energy_j / 1e6;
            if cli.verbose {
                eprintln!(
                    "{name} rep {rep}: final rack occupancy {:?}",
                    topology.rack_occupancy(&dc)
                );
            }
        }
        let n = cli.grid.reps as f64;
        table.row([
            name.to_string(),
            fnum(agg[0] / n),
            fnum(agg[1] / n),
            fnum(agg[2] / n),
            fnum(agg[3] / n),
            fnum(agg[4] / n),
            fnum(agg[5] / n),
            fnum(agg[6] / n),
        ]);
    }

    println!(
        "== Topology awareness ({size} PMs, {} racks of {}, ratio {ratio}) ==\n",
        topology.rack_count(size),
        topology.pms_per_rack
    );
    print!("{}", table.render());
    println!(
        "\nnote: rack-aware GLAP ranks racks and lets consolidation flow down the \
         ranking (half its gossip targets the lowest-ranked rack in view; the \
         higher-ranked side of a pair always sends), so whole racks drain and their \
         ToR switches power down — the switch-energy column is what the paper's \
         future work targets. The extra inter-rack migrations cost a few kJ; the \
         switches save tens of MJ."
    );
    let path = cli.out_dir.join("topology_eval.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
