//! Empirical check of Theorem 1 (§IV-C): under repeated gossip
//! aggregation, the cross-PM distribution of a Q-value converges toward a
//! normal distribution (and, as rounds continue, concentrates on the
//! mean). Prints skewness, excess kurtosis, the Jarque–Bera statistic and
//! the population mean/σ per aggregation round, starting from a heavily
//! skewed initial distribution.

use glap::prelude::*;
use glap_cluster::Resources;
use glap_experiments::{fnum, parse_or_exit, TextTable};
use glap_metrics::{excess_kurtosis, jarque_bera, mean, skewness, std_dev};
use glap_qlearn::{PmState, QParams, QTablePair, VmAction};
use rand::Rng;

fn main() {
    let cli = parse_or_exit();
    let n = cli.grid.sizes.first().copied().unwrap_or(500);
    let rounds = 12usize;
    let mut rng = stream_rng(13, Stream::Custom(7));

    let s = PmState::from_utilization(Resources::splat(0.5));
    let a = VmAction::from_demand(Resources::splat(0.1));

    // Exponential initial values: strongly right-skewed, the adversarial
    // case for the theorem's normality claim.
    let mut tables: Vec<QTablePair> = (0..n)
        .map(|_| {
            let mut t = QTablePair::new(QParams::default());
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t.out.set(s, a, -u.ln() * 10.0);
            t
        })
        .collect();

    let mut overlay = CyclonOverlay::new(n, 8, 4);
    overlay.bootstrap_random(&mut rng);

    let mut table = TextTable::new([
        "round",
        "mean",
        "std_dev",
        "skewness",
        "excess_kurtosis",
        "jarque_bera",
    ]);
    let snapshot =
        |tables: &[QTablePair]| -> Vec<f64> { tables.iter().map(|t| t.out.get(s, a)).collect() };
    let record = |round: usize, tables: &[QTablePair], table: &mut TextTable| {
        let xs = snapshot(tables);
        table.row([
            round.to_string(),
            fnum(mean(&xs)),
            fnum(std_dev(&xs)),
            fnum(skewness(&xs)),
            fnum(excess_kurtosis(&xs)),
            fnum(jarque_bera(&xs)),
        ]);
    };

    record(0, &tables, &mut table);
    for round in 1..=rounds {
        overlay.run_round(&mut rng, RoundIo::default());
        aggregation_round(&mut tables, &mut overlay, &mut rng, AggIo::default());
        record(round, &tables, &mut table);
    }

    println!("== Theorem 1 — gossip-aggregated Q-values converge to a normal ==\n");
    println!("{n} PMs; initial values ~ Exponential(mean 10), one (state, action) pair\n");
    print!("{}", table.render());
    println!(
        "\nnote: exponential data starts with skewness 2 and excess kurtosis 6 \
         (Jarque–Bera ≫ χ²₂ critical value ≈ 6); after a couple of gossip rounds \
         both moments collapse toward 0 while the mean is preserved, and further \
         rounds shrink σ — 'we can optimally decide how many rounds are needed … \
         to assure a satisfying convergence' (§IV-C)."
    );
    let path = cli.out_dir.join("theorem1.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
