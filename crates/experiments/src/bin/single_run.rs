//! Runs exactly one scenario (the grid's first size/ratio, repetition 0)
//! with full checkpoint/resume support — the harness behind the
//! interrupt/resume smoke tests and handy for long single runs.
//!
//! ```text
//! single_run --algo GRMP --rounds 120 --checkpoint-every 40 \
//!            --checkpoint-dir ckpts --stop-at-round 40 --trace part1.jsonl
//! single_run --algo GRMP --rounds 120 --checkpoint-every 40 \
//!            --checkpoint-dir ckpts --resume ckpts/GRMP-100x2-r0.ckpt \
//!            --trace part2.jsonl
//! ```
//!
//! concatenating `part1.jsonl` + `part2.jsonl` reproduces the trace of
//! an uninterrupted run byte for byte, as do the rounds/counters CSVs.

use glap_experiments::{parse_or_exit, rounds_csv, run_scenario_instrumented, Algorithm, Scenario};

fn main() {
    let cli = parse_or_exit();
    let sc = Scenario {
        n_pms: cli.grid.sizes[0],
        ratio: cli.grid.ratios[0],
        rep: 0,
        algorithm: cli.algo.unwrap_or(Algorithm::Glap),
        rounds: cli.grid.rounds,
        glap: cli.grid.glap,
        trace_cfg: cli.grid.trace_cfg,
        vm_mix: Default::default(),
        fault: Default::default(),
    };
    let tracer = cli.tracer();
    let opts = cli.checkpoint_opts();
    if let Some(dir) = &opts.dir {
        std::fs::create_dir_all(dir).expect("create checkpoint directory");
    }

    let profiler = cli.profiler();
    let (result, _) = run_scenario_instrumented(&sc, &tracer, &opts, &profiler, cli.progress)
        .unwrap_or_else(|e| {
            eprintln!("{}: {e}", sc.id());
            std::process::exit(1);
        });
    cli.finish_profile(&sc.id(), &profiler);
    tracer.flush();
    cli.write_counters(&tracer).expect("write counter CSVs");

    match result {
        Some(r) => {
            std::fs::create_dir_all(&cli.out_dir).expect("create output directory");
            let path = cli.out_dir.join(format!("{}_rounds.csv", sc.id()));
            std::fs::write(&path, rounds_csv(&r)).expect("write rounds CSV");
            println!(
                "{}: {} rounds, final active {}, {} migrations, {} wake-ups, slav {:.6e}",
                sc.id(),
                r.collector.samples.len(),
                r.collector.samples.last().map_or(0, |s| s.active_pms),
                r.collector.total_migrations(),
                r.wake_ups,
                r.sla.slav,
            );
            eprintln!("wrote {}", path.display());
        }
        None => {
            println!(
                "{}: stopped at round {} of {} (resume with --resume)",
                sc.id(),
                opts.stop_at_round.unwrap_or(sc.rounds),
                sc.rounds
            );
        }
    }
}
