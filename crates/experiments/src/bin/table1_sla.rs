//! Regenerates Table I: the SLAV metric for all cluster sizes and
//! workload ratios.

use glap_experiments::{parse_or_exit, run_grid_with, table1_sla, Algorithm};

fn main() {
    let cli = parse_or_exit();
    let results = run_grid_with(&cli.grid, &Algorithm::PAPER_SET, &cli);
    let out = table1_sla(&results);
    print!("{}", out.render());
    let path = cli.out_dir.join("table1_sla.csv");
    out.table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
