//! PABFD threshold-estimator comparison — the study the GLAP paper's §II
//! recounts from Beloglazov & Buyya: MAD vs IQR vs local-regression
//! estimation of the dynamic upper threshold, plus GLAP itself as the
//! threshold-free reference.

use glap_baselines::{PabfdConfig, PabfdPolicy, ThresholdMethod};
use glap_dcsim::run_simulation;
use glap_experiments::{
    build_policy, build_world, fnum, parse_or_exit, Algorithm, Scenario, TextTable,
};
use glap_metrics::{sla_metrics, MetricsCollector};
use glap_workload::OffsetTrace;

fn main() {
    let cli = parse_or_exit();
    let size = cli.grid.sizes.first().copied().unwrap_or(200);
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);

    let mut table = TextTable::new([
        "variant",
        "mean_active_pms",
        "overloaded_fraction",
        "total_migrations",
        "slav",
    ]);

    let methods = [
        ("PABFD-MAD", Some(ThresholdMethod::Mad)),
        ("PABFD-IQR", Some(ThresholdMethod::Iqr)),
        ("PABFD-LR", Some(ThresholdMethod::LocalRegression)),
        ("GLAP", None),
    ];
    for (name, method) in methods {
        let mut agg = [0.0f64; 4];
        for rep in 0..cli.grid.reps {
            let algorithm = if method.is_some() {
                Algorithm::Pabfd
            } else {
                Algorithm::Glap
            };
            let sc = Scenario {
                rep,
                rounds: cli.grid.rounds,
                glap: cli.grid.glap,
                ..Scenario::paper(size, ratio, rep, algorithm)
            };
            let (mut dc, trace) = build_world(&sc);
            let mut metrics = MetricsCollector::new();
            let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
            match method {
                Some(m) => {
                    let mut policy = PabfdPolicy::new(PabfdConfig {
                        method: m,
                        ..PabfdConfig::default()
                    });
                    run_simulation(
                        &mut dc,
                        &mut day,
                        &mut policy,
                        &mut [&mut metrics],
                        sc.rounds,
                        sc.policy_seed(),
                    );
                }
                None => {
                    let mut policy = build_policy(&sc, &dc, &trace);
                    run_simulation(
                        &mut dc,
                        &mut day,
                        policy.as_mut(),
                        &mut [&mut metrics],
                        sc.rounds,
                        sc.policy_seed(),
                    );
                }
            }
            agg[0] += metrics.mean_active_pms();
            agg[1] += metrics.mean_overloaded_fraction();
            agg[2] += metrics.total_migrations() as f64;
            agg[3] += sla_metrics(&dc).slav;
            if cli.verbose {
                eprintln!("{name} rep {rep} done");
            }
        }
        let n = cli.grid.reps as f64;
        table.row([
            name.to_string(),
            fnum(agg[0] / n),
            fnum(agg[1] / n),
            fnum(agg[2] / n),
            fnum(agg[3] / n),
        ]);
    }

    println!(
        "== PABFD threshold estimators vs threshold-free GLAP ({size} PMs, ratio {ratio}) ==\n"
    );
    print!("{}", table.render());
    println!(
        "\nnote: all three estimators derive a per-host cap from recent CPU history; \
         GLAP needs none — its learned in-table encodes the same information per \
         (state, action) pair, which is the paper's 'threshold-free' argument."
    );
    let path = cli.out_dir.join("pabfd_thresholds.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
