//! Regenerates Figure 6: fraction of overloaded / active PMs per
//! algorithm, with the offline BFD packing baseline.

use glap_experiments::{fig6_packing, parse_or_exit, run_grid_with, Algorithm};

fn main() {
    let cli = parse_or_exit();
    let results = run_grid_with(&cli.grid, &Algorithm::PAPER_SET, &cli);
    let out = fig6_packing(&results);
    print!("{}", out.render());
    let path = cli.out_dir.join("fig6_packing.csv");
    out.table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
