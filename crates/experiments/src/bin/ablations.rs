//! Runs the GLAP ablation variants (no in-veto, current-demand-only
//! states, no aggregation phase) against the full protocol.

use glap_experiments::{ablation_summary, parse_or_exit, run_grid_with, Algorithm};

fn main() {
    let cli = parse_or_exit();
    let results = run_grid_with(&cli.grid, &Algorithm::ABLATION_SET, &cli);
    let out = ablation_summary(&results);
    print!("{}", out.render());
    let path = cli.out_dir.join("ablations.csv");
    out.table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
