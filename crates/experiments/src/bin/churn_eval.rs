//! Churn evaluation: VM arrivals/departures during the day, exercising
//! the paper's learning re-trigger ("if the arrival and departure rates
//! of VMs exceed a threshold compared to the last learning time").
//!
//! Compares, on identical churn streams: GLAP with a *stale* pre-trained
//! table, GLAP with churn-triggered re-training, and the three baselines
//! (which need no training and adapt implicitly).

use glap::{train, unified_table, GlapPolicy, RetrainConfig};
use glap_experiments::{
    build_churn_world, build_policy, fnum, parse_or_exit, run_churn_scenario, Algorithm,
    ChurnConfig, Scenario, TextTable,
};
use glap_workload::GoogleTraceConfig;

fn main() {
    let cli = parse_or_exit();
    let size = cli.grid.sizes.first().copied().unwrap_or(200);
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);

    let mut table = TextTable::new([
        "churn",
        "variant",
        "overloaded_fraction",
        "total_migrations",
        "slav",
        "retrainings",
    ]);

    // A hotter, burstier arrival population: the workload distribution
    // shift that makes stale Q-tables mispredict.
    let hot_arrivals = GoogleTraceConfig {
        cpu_floor: 0.3,
        cpu_ceil: 0.98,
        bursty_fraction: 0.6,
        burst_prob: 0.04,
        burst_boost: 0.7,
        ..GoogleTraceConfig::default()
    };
    let conditions = [
        ("stationary", ChurnConfig::balanced(size * ratio, 0.01)),
        (
            "shifted",
            ChurnConfig::shifted(size * ratio, 0.01, hot_arrivals),
        ),
    ];
    for (cond_name, churn) in conditions {
        // GLAP variants share the pre-trained table construction.
        let glap_variants: [(&str, Option<RetrainConfig>); 2] = [
            ("GLAP-stale", None),
            (
                "GLAP-retrain",
                Some(RetrainConfig {
                    churn_threshold: (size * ratio) / 10,
                    interval: None,
                    learning_window: 30,
                }),
            ),
        ];
        for (name, retrain) in glap_variants {
            let mut frac = 0.0;
            let mut migs = 0.0;
            let mut slav = 0.0;
            let mut retrainings = 0u64;
            for rep in 0..cli.grid.reps {
                let sc = Scenario {
                    rep,
                    rounds: cli.grid.rounds,
                    glap: cli.grid.glap,
                    ..Scenario::paper(size, ratio, rep, Algorithm::Glap)
                };
                let (mut dc, trace) = build_churn_world(&sc, &churn);
                let mut train_dc = dc.clone();
                let mut train_trace = trace.clone();
                let (tables, _) = train(
                    &mut train_dc,
                    &mut train_trace,
                    &sc.glap,
                    sc.policy_seed(),
                    false,
                );
                let mut policy = GlapPolicy::with_shared_table(sc.glap, unified_table(&tables));
                policy.retrain = retrain;
                let r = run_churn_scenario(&sc, &churn, &mut dc, &trace, &mut policy);
                frac += r.collector.mean_overloaded_fraction();
                migs += r.collector.total_migrations() as f64;
                slav += r.sla.slav;
                retrainings += policy.retrainings;
            }
            let n = cli.grid.reps as f64;
            table.row([
                cond_name.to_string(),
                name.to_string(),
                fnum(frac / n),
                fnum(migs / n),
                fnum(slav / n),
                format!("{:.1}", retrainings as f64 / n),
            ]);
            if cli.verbose {
                eprintln!("churn {cond_name}: {name} done");
            }
        }
        // Baselines.
        for algorithm in [Algorithm::EcoCloud, Algorithm::Grmp, Algorithm::Pabfd] {
            let mut frac = 0.0;
            let mut migs = 0.0;
            let mut slav = 0.0;
            for rep in 0..cli.grid.reps {
                let sc = Scenario {
                    rep,
                    rounds: cli.grid.rounds,
                    glap: cli.grid.glap,
                    ..Scenario::paper(size, ratio, rep, algorithm)
                };
                let (mut dc, trace) = build_churn_world(&sc, &churn);
                let mut policy = build_policy(&sc, &dc, &trace);
                let r = run_churn_scenario(&sc, &churn, &mut dc, &trace, policy.as_mut());
                frac += r.collector.mean_overloaded_fraction();
                migs += r.collector.total_migrations() as f64;
                slav += r.sla.slav;
            }
            let n = cli.grid.reps as f64;
            table.row([
                cond_name.to_string(),
                algorithm.label().to_string(),
                fnum(frac / n),
                fnum(migs / n),
                fnum(slav / n),
                "-".to_string(),
            ]);
        }
    }

    println!("== Churn evaluation ({size} PMs, ratio {ratio}) ==\n");
    print!("{}", table.render());
    println!(
        "\nnote: churn column = per-round departure probability (arrivals balanced); \
         GLAP-stale keeps its pre-trained table all day, GLAP-retrain re-runs the \
         two-phase learning once accumulated churn exceeds 10% of the VM population."
    );
    let path = cli.out_dir.join("churn_eval.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
