//! Heterogeneous-fleet evaluation — extension beyond the paper's
//! micro-only setup. A mixed fleet (60% EC2 micro / 30% m1.small /
//! 10% m1.medium) finally exercises the full calibrated action space:
//! with micros only, every VM action collapses to (Low, Low) and π_out's
//! arg-max is trivial; with large VMs the learned tables must genuinely
//! rank which *class* of VM to evict and which the target can absorb.

use glap::{train, unified_table};
use glap_experiments::{
    build_world, fnum, parse_or_exit, run_grid, Algorithm, Grid, Scenario, TextTable, VmMix,
};
use glap_qlearn::VmAction;

/// Distinct out-table actions learned under a scenario's fleet — the
/// action-space coverage statistic.
fn action_coverage(sc: &Scenario) -> usize {
    let (mut dc, mut trace) = build_world(sc);
    let (tables, _) = train(&mut dc, &mut trace, &sc.glap, sc.policy_seed(), false);
    let uni = unified_table(&tables);
    let mut seen = std::collections::HashSet::new();
    for (_, a, _) in uni.out.iter_visited() {
        seen.insert(a);
    }
    for (_, a, _) in uni.r#in.iter_visited() {
        seen.insert(a);
    }
    seen.len()
}

fn main() {
    let cli = parse_or_exit();
    let size = cli.grid.sizes.first().copied().unwrap_or(200);
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);

    // Action-space coverage: micro-only vs mixed.
    let mut base = Scenario {
        rounds: cli.grid.rounds,
        glap: cli.grid.glap,
        ..Scenario::paper(size, ratio, 0, Algorithm::Glap)
    };
    let micro_actions = action_coverage(&base);
    base.vm_mix = VmMix::Mixed;
    let mixed_actions = action_coverage(&base);
    println!("== Heterogeneous fleet ({size} PMs, ratio {ratio}) ==\n");
    println!(
        "distinct VM actions learned: micro-only fleet {micro_actions}, mixed fleet \
         {mixed_actions} (of {} possible)\n",
        glap_qlearn::NUM_STATES
    );
    debug_assert!(VmAction::all().count() == glap_qlearn::NUM_STATES);

    // Full comparison on the mixed fleet.
    let grid = Grid {
        sizes: vec![size],
        ratios: vec![ratio],
        reps: cli.grid.reps,
        rounds: cli.grid.rounds,
        glap: cli.grid.glap,
        trace_cfg: cli.grid.trace_cfg,
    };
    let mut table = TextTable::new([
        "fleet",
        "algorithm",
        "mean_active_pms",
        "overloaded_fraction",
        "total_migrations",
        "slav",
    ]);
    for (fleet_name, mix) in [("micro", VmMix::MicroOnly), ("mixed", VmMix::Mixed)] {
        let mut scenarios = grid.scenarios(&Algorithm::PAPER_SET);
        for sc in &mut scenarios {
            sc.vm_mix = mix;
        }
        let results: Vec<_> = scenarios
            .iter()
            .map(|sc| (sc.clone(), glap_experiments::run_scenario(sc)))
            .collect();
        for algo in Algorithm::PAPER_SET {
            let rs: Vec<_> = results
                .iter()
                .filter(|(sc, _)| sc.algorithm == algo)
                .map(|(_, r)| r)
                .collect();
            if rs.is_empty() {
                continue;
            }
            let n = rs.len() as f64;
            table.row([
                fleet_name.to_string(),
                algo.label().to_string(),
                fnum(
                    rs.iter()
                        .map(|r| r.collector.mean_active_pms())
                        .sum::<f64>()
                        / n,
                ),
                fnum(
                    rs.iter()
                        .map(|r| r.collector.mean_overloaded_fraction())
                        .sum::<f64>()
                        / n,
                ),
                fnum(
                    rs.iter()
                        .map(|r| r.collector.total_migrations() as f64)
                        .sum::<f64>()
                        / n,
                ),
                fnum(rs.iter().map(|r| r.sla.slav).sum::<f64>() / n),
            ]);
        }
        if cli.verbose {
            eprintln!("{fleet_name} fleet done");
        }
    }
    // Also show the sweep exists for the default engine path.
    let _ = run_grid;

    print!("{}", table.render());
    println!(
        "\nnote: with m1.medium VMs a single eviction can move a PM several load levels \
         at once, so π_out's choice among VM classes and π_in's class-aware veto \
         actually matter; GLAP's ordering should persist on the mixed fleet."
    );
    let path = cli.out_dir.join("heterogeneity_eval.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
