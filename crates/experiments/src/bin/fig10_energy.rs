//! Regenerates Figure 10: energy overhead of migrations (Eq. 3) per
//! algorithm, size and ratio.

use glap_experiments::{fig10_energy, parse_or_exit, run_grid_with, Algorithm};

fn main() {
    let cli = parse_or_exit();
    let results = run_grid_with(&cli.grid, &Algorithm::PAPER_SET, &cli);
    let out = fig10_energy(&results);
    print!("{}", out.render());
    let path = cli.out_dir.join("fig10_energy.csv");
    out.table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
