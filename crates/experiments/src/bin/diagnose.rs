//! Diagnostic tool: runs one GLAP scenario and dumps protocol internals
//! (trained-table coverage, veto counts, per-phase migration activity) —
//! useful when tuning trace dynamics or reward shapes.
//!
//! With `--replay trace.jsonl` it instead parses a previously recorded
//! JSONL event trace (strictly — every line must round-trip through the
//! schema) and prints a per-round digest: drop/timeout counts, veto and
//! abort tallies, crashes, and the convergence series.
//!
//! `--trace file` / `--counters file` record the diagnosed run itself.

use glap::{train_traced, unified_table, GlapPolicy, TableStore};
use glap_dcsim::{run_simulation_traced, NetworkModel};
use glap_experiments::{build_world, parse_or_exit, replay_digest, Algorithm, Scenario};
use glap_metrics::MetricsCollector;
use glap_qlearn::{Level, PmState, VmAction};
use glap_telemetry::Phase;
use glap_workload::OffsetTrace;
use std::fs::File;
use std::io::BufReader;

fn main() {
    let cli = parse_or_exit();

    if let Some(path) = &cli.replay {
        let file = File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {}: {e}", path.display());
            std::process::exit(2);
        });
        match replay_digest(BufReader::new(file)) {
            Ok(digest) => print!("{}", digest.render()),
            Err(msg) => {
                eprintln!("replay failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let sc = Scenario {
        n_pms: cli.grid.sizes[0],
        ratio: cli.grid.ratios[0],
        rep: 0,
        algorithm: Algorithm::Glap,
        rounds: cli.grid.rounds,
        glap: cli.grid.glap,
        trace_cfg: cli.grid.trace_cfg,
        vm_mix: Default::default(),
        fault: Default::default(),
    };
    let (mut dc, trace) = build_world(&sc);
    let tracer = cli.tracer();

    let mut train_dc = dc.clone();
    let mut train_trace = trace.clone();
    let (tables, report, monitor) = train_traced(
        &mut train_dc,
        &mut train_trace,
        &sc.glap,
        sc.policy_seed(),
        false,
        &tracer,
    );
    let uni = unified_table(&tables);
    println!(
        "training: {} PMs trained, {} updates, unified pairs out={} in={}",
        report.pms_trained,
        report.updates,
        uni.out.visited_count(),
        uni.r#in.visited_count()
    );
    if let Some(last) = monitor.last() {
        println!(
            "convergence monitor: final diameter {:.6}, mean cosine {:.6}, \
             aggregation diameter non-increasing: {}",
            last.diameter,
            last.mean_cosine_to_ref,
            monitor.diameter_is_nonincreasing(Phase::Aggregation)
        );
    }

    // Out-table coverage by state CPU level.
    println!("\nout-table coverage by sender state (rows with any visited action):");
    for cpu in Level::ALL {
        let mut covered = 0;
        let mut total = 0;
        for s in PmState::all().filter(|s| s.cpu == cpu) {
            total += 1;
            if VmAction::all().any(|a| uni.out.is_visited(s, a)) {
                covered += 1;
            }
        }
        println!("  cpu={cpu:?}: {covered}/{total}");
    }
    let neg_in = uni.r#in.iter_visited().filter(|&(_, _, v)| v < 0.0).count();
    println!(
        "in-table: {} visited, {} negative (veto) entries",
        uni.r#in.visited_count(),
        neg_in
    );
    println!("\nin-table entries (state, action, value):");
    let mut entries: Vec<_> = uni.r#in.iter_visited().collect();
    entries.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    for (s, a, v) in &entries {
        println!("  {s} {a} {v:.1}");
    }

    let mut policy = GlapPolicy::new(sc.glap, TableStore::Shared(Box::new(uni)));
    let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
    let mut collector = MetricsCollector::new();
    let mut net = NetworkModel::ideal(sc.n_pms);
    run_simulation_traced(
        &mut dc,
        &mut day,
        &mut policy,
        &mut [&mut collector],
        sc.rounds,
        sc.policy_seed(),
        &mut net,
        &tracer,
    );

    println!(
        "\nday: {} migrations, {} vetoes, {} wake-ups, final active {}/{} PMs, \
         overloaded fraction {:.4}",
        collector.total_migrations(),
        policy.vetoes,
        collector.total_wake_ups(),
        dc.active_pm_count(),
        dc.n_pms(),
        collector.mean_overloaded_fraction()
    );
    // Utilization histogram of active PMs at the end.
    let mut hist = [0usize; 10];
    for pm in dc.pms().filter(|p| p.is_active()) {
        let u = pm.utilization().cpu().min(0.999);
        hist[(u * 10.0) as usize] += 1;
    }
    println!("final active-PM CPU histogram (0.0-1.0 in tenths): {hist:?}");

    if tracer.is_on() {
        println!("telemetry: {} events emitted", tracer.events_emitted());
    }
    tracer.flush();
    cli.write_counters(&tracer).expect("write counter CSVs");
}
