//! Bursty-workload evaluation — the paper's stated future work ("we would
//! like to evaluate our work under bursty workload patterns").
//!
//! Re-runs the core comparison on three workload intensities: the default
//! Google-like trace, a *bursty* variant (most VMs exhibit frequent,
//! strong bursts) and a *spiky* one (rarer but near-saturating bursts),
//! and reports how each algorithm's overload/migration behaviour degrades.

use glap_experiments::{fnum, parse_or_exit, run_grid, Algorithm, Grid, TextTable};
use glap_workload::GoogleTraceConfig;

fn main() {
    let cli = parse_or_exit();

    let default_cfg = GoogleTraceConfig::default();
    let bursty = GoogleTraceConfig {
        bursty_fraction: 0.8,
        burst_prob: 0.05,
        mean_burst_len: 8.0,
        burst_boost: 0.6,
        ..default_cfg
    };
    let spiky = GoogleTraceConfig {
        bursty_fraction: 0.5,
        burst_prob: 0.01,
        mean_burst_len: 3.0,
        burst_boost: 0.95,
        ..default_cfg
    };
    let variants = [
        ("google", default_cfg),
        ("bursty", bursty),
        ("spiky", spiky),
    ];

    let mut table = TextTable::new([
        "workload",
        "algorithm",
        "overloaded_fraction",
        "overloaded_median",
        "total_migrations",
        "slav",
    ]);
    for (name, trace_cfg) in variants {
        let grid = Grid {
            trace_cfg,
            ..cli.grid.clone()
        };
        let results = run_grid(&grid, &Algorithm::PAPER_SET, cli.threads, cli.verbose);
        for algo in Algorithm::PAPER_SET {
            let rs: Vec<_> = results
                .iter()
                .filter(|(sc, _)| sc.algorithm == algo)
                .map(|(_, r)| r)
                .collect();
            if rs.is_empty() {
                continue;
            }
            let n = rs.len() as f64;
            let frac: f64 = rs
                .iter()
                .map(|r| r.collector.mean_overloaded_fraction())
                .sum::<f64>()
                / n;
            let med: f64 = rs
                .iter()
                .map(|r| r.collector.overloaded_summary().1)
                .sum::<f64>()
                / n;
            let migs: f64 = rs
                .iter()
                .map(|r| r.collector.total_migrations() as f64)
                .sum::<f64>()
                / n;
            let slav: f64 = rs.iter().map(|r| r.sla.slav).sum::<f64>() / n;
            table.row([
                name.to_string(),
                algo.label().to_string(),
                fnum(frac),
                fnum(med),
                fnum(migs),
                fnum(slav),
            ]);
        }
    }

    println!("== Bursty workloads (paper future work) ==\n");
    print!("{}", table.render());
    println!(
        "\nnote: bursts are exactly what the average-demand signal cannot fully \
         anticipate; the question is whether GLAP's learned admission control still \
         keeps it ahead of the threshold-based algorithms when they strike."
    );
    let path = cli.out_dir.join("bursty_eval.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
