//! Scalability study: GLAP's core claim is that it consolidates "without
//! sacrificing scalability" — per-PM work is constant per round (one
//! gossip exchange, O(view) peer sampling, O(|VMs|) decision making), so
//! total simulation cost should grow linearly with the cluster while a
//! centralized algorithm like PABFD (global scans per round) grows
//! super-linearly.
//!
//! All timing comes from the wall-clock profiler's span tree — the same
//! instrumentation `--profile` exposes — rather than ad-hoc stopwatch
//! calls: the measured day is the `measured_day` span, training is the
//! `train` span, and the learning phase's *effective parallel speedup*
//! is the per-worker busy time (`worker_busy`, summed across workers)
//! over the `local_train` wall time it was compressed into.

use glap_experiments::{
    fnum, parse_or_exit, run_scenario_instrumented, Algorithm, CheckpointOpts, Scenario, TextTable,
};
use glap_par::resolve_threads;
use glap_profile::{alloc_stats, peak_rss_bytes, Profiler};
use glap_telemetry::Tracer;

// Count every heap allocation so the table can attribute allocator churn
// to each cell. Observational: results are identical with or without it.
#[global_allocator]
static ALLOC: glap_profile::CountingAllocator = glap_profile::CountingAllocator;

fn main() {
    let cli = parse_or_exit();
    // The learning phase fans out over this many workers (`--threads`,
    // `GLAP_THREADS`, or all cores); record it — this is a timing study.
    let threads = resolve_threads(cli.threads);
    let sizes = if cli.grid.sizes.len() > 1 {
        cli.grid.sizes.clone()
    } else {
        vec![250, 500, 1000, 2000]
    };
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);
    let rounds = cli.grid.rounds.min(240); // wall-clock study, not SLA study

    // (size, allocs) of every GLAP cell, for the alloc-collapse guard
    // asserted after the table renders.
    let mut glap_alloc_cells: Vec<(usize, u64)> = Vec::new();
    let mut table = TextTable::new([
        "size",
        "algorithm",
        "total_s",
        "ms_per_round",
        "us_per_pm_round",
        "train_s",
        "learn_speedup",
        "migrations",
        "bytes_tx",
        "bytes_rx",
        "allocs",
        "alloc_mb",
        "peak_rss_mb",
    ]);
    for &size in &sizes {
        for algorithm in [Algorithm::Glap, Algorithm::Pabfd] {
            let (allocs_before, alloc_bytes_before) = alloc_stats();
            let sc = Scenario {
                rounds,
                glap: cli.grid.glap,
                ..Scenario::paper(size, ratio, 0, algorithm)
            };
            // A fresh enabled profiler per cell: its root span covers
            // exactly this scenario run. The counting tracer feeds the
            // bytes columns; counting is observational (results are
            // byte-identical with it on or off).
            let profiler = Profiler::enabled();
            let tracer = Tracer::counting();
            let (result, _) = run_scenario_instrumented(
                &sc,
                &tracer,
                &CheckpointOpts::default(),
                &profiler,
                cli.progress,
            )
            .expect("no checkpoint I/O configured");
            let r = result.expect("runs to completion");
            let report = profiler.snapshot();
            let total_s = report.total_ns as f64 / 1e9;
            let day_ns = report.span("measured_day").map_or(0, |s| s.total_ns);
            let ms_per_round = day_ns as f64 / 1e6 / rounds as f64;
            let train_ns = report.span("build_policy/train").map_or(0, |s| s.total_ns);
            // Effective learning-phase speedup: total worker busy time /
            // the wall time of the parallel local-training sections. 1.0
            // means sequential; `threads` means perfect scaling.
            let speedup = match (
                report.span("build_policy/train/learn_round/local_train"),
                report.span("build_policy/train/learn_round/local_train/worker_busy"),
            ) {
                (Some(wall), Some(busy)) if wall.total_ns > 0 => {
                    busy.total_ns as f64 / wall.total_ns as f64
                }
                _ => 0.0,
            };
            table.row([
                size.to_string(),
                algorithm.label().to_string(),
                fnum(total_s),
                fnum(ms_per_round),
                fnum(ms_per_round * 1000.0 / size as f64),
                fnum(train_ns as f64 / 1e9),
                fnum(speedup),
                r.collector.total_migrations().to_string(),
                tracer.counter_total("net.bytes_tx").to_string(),
                tracer.counter_total("net.bytes_rx").to_string(),
                {
                    let (allocs_after, _) = alloc_stats();
                    let allocs = allocs_after - allocs_before;
                    if algorithm == Algorithm::Glap {
                        glap_alloc_cells.push((size, allocs));
                    }
                    allocs.to_string()
                },
                {
                    let (_, alloc_bytes_after) = alloc_stats();
                    fnum((alloc_bytes_after - alloc_bytes_before) as f64 / 1e6)
                },
                // Process high-water mark *so far* — monotone across
                // cells, so the largest size's row is the budget number.
                peak_rss_bytes().map_or_else(|| "n/a".into(), |b| fnum(b as f64 / 1e6)),
            ]);
            if cli.verbose {
                eprintln!("{} at {size} PMs: {total_s:.1}s", algorithm.label());
            }
        }
    }

    println!(
        "== Scalability ({rounds} rounds, ratio {ratio}, {threads} worker thread(s); \
         includes GLAP training) ==\n"
    );
    print!("{}", table.render());
    println!(
        "\nnote: the per-PM-per-round cost column is the scalability claim — flat for \
         GLAP (constant gossip work per PM), growing with size for the centralized \
         PABFD (its placement scans all hosts for every migrating VM). learn_speedup \
         is the learning phase's effective parallelism (worker busy time over wall \
         time, from the profiler's span tree): 1.0 = sequential, {threads} = perfect \
         scaling on this worker count. bytes_tx/bytes_rx count the gossip traffic \
         (per-PM traffic should stay flat with size; --codec shrinks it). allocs / \
         alloc_mb are heap-allocator calls and requested MB attributed to the cell; \
         peak_rss_mb is the process resident high-water mark so far (monotone — read \
         the last row as the run's memory budget)."
    );
    let path = cli.out_dir.join("scalability_eval.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());

    // Alloc-collapse regression guard: with the flat Q-table arena (one
    // slab for the whole fleet) and the reused per-PM scratch buffers,
    // a GLAP cell's allocator traffic is a handful of calls per PM per
    // round — gossip descriptors and policy bookkeeping — not the
    // per-PM/per-iteration churn of boxed tables and rebuilt profile
    // lists (measured ~6 allocs per PM-round at 250–1000 PMs; per-
    // iteration churn would sit at 40+). The bound is loose on purpose:
    // it only trips when per-round allocation grows by an order of
    // magnitude.
    const MAX_ALLOCS_PER_PM_ROUND: f64 = 32.0;
    let effective_rounds =
        rounds + cli.grid.glap.learning_rounds as u64 + cli.grid.glap.aggregation_rounds as u64;
    for &(size, allocs) in &glap_alloc_cells {
        let per_pm_round = allocs as f64 / (size as f64 * effective_rounds as f64);
        assert!(
            per_pm_round <= MAX_ALLOCS_PER_PM_ROUND,
            "GLAP at {size} PMs made {allocs} heap allocations \
             ({per_pm_round:.1} per PM-round over {effective_rounds} train+measured rounds, \
             budget {MAX_ALLOCS_PER_PM_ROUND}) — the arena's per-round allocation \
             collapse regressed"
        );
    }
    eprintln!(
        "alloc guard ok: every GLAP cell under {MAX_ALLOCS_PER_PM_ROUND} allocations \
         per PM-round"
    );
}
