//! Scalability study: GLAP's core claim is that it consolidates "without
//! sacrificing scalability" — per-PM work is constant per round (one
//! gossip exchange, O(view) peer sampling, O(|VMs|) decision making), so
//! total simulation cost should grow linearly with the cluster while a
//! centralized algorithm like PABFD (global scans per round) grows
//! super-linearly. This binary measures wall-clock per simulated round
//! across cluster sizes for GLAP and PABFD.

use glap_experiments::{fnum, parse_or_exit, run_scenario, Algorithm, Scenario, TextTable};
use glap_par::resolve_threads;
use std::time::Instant;

fn main() {
    let cli = parse_or_exit();
    // The learning phase fans out over this many workers (`--threads`,
    // `GLAP_THREADS`, or all cores); record it — this is a timing study.
    let threads = resolve_threads(cli.threads);
    let sizes = if cli.grid.sizes.len() > 1 {
        cli.grid.sizes.clone()
    } else {
        vec![250, 500, 1000, 2000]
    };
    let ratio = cli.grid.ratios.first().copied().unwrap_or(3);
    let rounds = cli.grid.rounds.min(240); // wall-clock study, not SLA study

    let mut table = TextTable::new([
        "size",
        "algorithm",
        "total_s",
        "ms_per_round",
        "us_per_pm_round",
        "migrations",
    ]);
    for &size in &sizes {
        for algorithm in [Algorithm::Glap, Algorithm::Pabfd] {
            let sc = Scenario {
                rounds,
                glap: cli.grid.glap,
                ..Scenario::paper(size, ratio, 0, algorithm)
            };
            let start = Instant::now();
            let r = run_scenario(&sc);
            let elapsed = start.elapsed().as_secs_f64();
            let ms_per_round = elapsed * 1000.0 / rounds as f64;
            table.row([
                size.to_string(),
                algorithm.label().to_string(),
                fnum(elapsed),
                fnum(ms_per_round),
                fnum(ms_per_round * 1000.0 / size as f64),
                r.collector.total_migrations().to_string(),
            ]);
            if cli.verbose {
                eprintln!("{} at {size} PMs: {elapsed:.1}s", algorithm.label());
            }
        }
    }

    println!(
        "== Scalability ({rounds} rounds, ratio {ratio}, {threads} worker thread(s); \
         includes GLAP training) ==\n"
    );
    print!("{}", table.render());
    println!(
        "\nnote: the per-PM-per-round cost column is the scalability claim — flat for \
         GLAP (constant gossip work per PM), growing with size for the centralized \
         PABFD (its placement scans all hosts for every migrating VM)."
    );
    let path = cli.out_dir.join("scalability_eval.csv");
    table.save_csv(&path).expect("write CSV");
    eprintln!("wrote {}", path.display());
}
