//! Executes one scenario end-to-end: trace synthesis, identical initial
//! placement, GLAP pre-training where applicable, the measured day, and
//! metric collection.

use crate::checkpoint::{checkpoint_path, encode_checkpoint, resume_scenario};
use crate::scenario::{Algorithm, Scenario};
use glap::{train_instrumented, unified_table, GlapPolicy, TableStore};
use glap_baselines::{
    bfd_baseline, EcoCloudConfig, EcoCloudPolicy, GrmpConfig, GrmpPolicy, PabfdConfig, PabfdPolicy,
};
use glap_cluster::{DataCenter, DataCenterConfig};
use glap_dcsim::{
    run_simulation_resumable, run_simulation_traced, stream_rng, CheckpointArgs,
    ConsolidationPolicy, NetworkModel, Observer, Stream,
};
use glap_metrics::{MetricsCollector, RunResult};
use glap_profile::{Heartbeat, Profiler};
use glap_snapshot::{read_snapshot_file, write_atomic, SnapshotError};
use glap_telemetry::{ConvergenceMonitor, Tracer};
use glap_workload::{GoogleLikeTraceGen, MaterializedTrace, OffsetTrace};
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

/// Builds the data center of a scenario with its seed-determined initial
/// placement (identical for every algorithm within a repetition).
pub fn build_world(sc: &Scenario) -> (DataCenter, MaterializedTrace) {
    let mut dc = DataCenter::new(DataCenterConfig::paper(sc.n_pms));
    for i in 0..sc.n_vms() {
        dc.add_vm(sc.vm_mix.spec(i));
    }
    let mut placement_rng = stream_rng(sc.world_seed(), Stream::Placement);
    dc.random_placement(&mut placement_rng);

    // Trace covers the GLAP pre-training rounds plus the measured day.
    let total_rounds = sc.glap.learning_rounds + sc.rounds as usize;
    let gen = GoogleLikeTraceGen::new(sc.trace_cfg);
    let mut trace_rng = stream_rng(sc.world_seed(), Stream::Trace);
    let trace = gen.generate(sc.n_vms(), total_rounds, &mut trace_rng);
    (dc, trace)
}

/// Builds the policy for a scenario, pre-training GLAP variants on a
/// throwaway copy of the world (the paper's "700 more rounds to calculate
/// Q-values beforehand").
pub fn build_policy(
    sc: &Scenario,
    dc: &DataCenter,
    trace: &MaterializedTrace,
) -> Box<dyn ConsolidationPolicy> {
    build_policy_traced(sc, dc, trace, &Tracer::off()).0
}

/// [`build_policy`] with an event tracer: GLAP's offline pre-training
/// emits `shuffle_*` / `convergence_sampled` events through `tracer` and
/// the returned [`ConvergenceMonitor`] holds the divergence series
/// (non-`None` only for GLAP variants with the tracer on).
pub fn build_policy_traced(
    sc: &Scenario,
    dc: &DataCenter,
    trace: &MaterializedTrace,
    tracer: &Tracer,
) -> (Box<dyn ConsolidationPolicy>, Option<ConvergenceMonitor>) {
    build_policy_instrumented(sc, dc, trace, tracer, &Profiler::off())
}

/// [`build_policy_traced`] with a wall-clock [`Profiler`] threaded into
/// GLAP pre-training (the `train` span tree). Observational only:
/// results are byte-identical with profiling on or off.
pub fn build_policy_instrumented(
    sc: &Scenario,
    dc: &DataCenter,
    trace: &MaterializedTrace,
    tracer: &Tracer,
    profiler: &Profiler,
) -> (Box<dyn ConsolidationPolicy>, Option<ConvergenceMonitor>) {
    match sc.algorithm {
        Algorithm::Grmp => (Box::new(GrmpPolicy::new(GrmpConfig::default())), None),
        Algorithm::EcoCloud => (
            Box::new(EcoCloudPolicy::new(EcoCloudConfig::default())),
            None,
        ),
        Algorithm::Pabfd => (Box::new(PabfdPolicy::new(PabfdConfig::default())), None),
        Algorithm::Glap
        | Algorithm::GlapNoVeto
        | Algorithm::GlapCurrentOnly
        | Algorithm::GlapNoAggregation => {
            let mut cfg = sc.glap;
            if sc.algorithm == Algorithm::GlapNoAggregation {
                cfg.aggregation_rounds = 0;
            }
            let mut train_dc = dc.clone();
            let mut train_trace = trace.clone();
            let (tables, _report, monitor) = train_instrumented(
                &mut train_dc,
                &mut train_trace,
                &cfg,
                sc.policy_seed(),
                false,
                tracer,
                None,
                profiler,
            );
            let store = if sc.algorithm == Algorithm::GlapNoAggregation {
                TableStore::PerPm(tables)
            } else {
                TableStore::Shared(Box::new(unified_table(&tables)))
            };
            let mut policy = GlapPolicy::new(cfg, store);
            policy.disable_in_veto = sc.algorithm == Algorithm::GlapNoVeto;
            policy.current_state_only = sc.algorithm == Algorithm::GlapCurrentOnly;
            let monitor = tracer.is_on().then_some(monitor);
            (Box::new(policy), monitor)
        }
    }
}

/// Runs a scenario and returns its result bundle.
pub fn run_scenario(sc: &Scenario) -> RunResult {
    run_scenario_traced(sc, &Tracer::off()).0
}

/// [`run_scenario`] with an event tracer threaded through pre-training,
/// the network, the data center, and the policy. With [`Tracer::off`] the
/// results are byte-identical to [`run_scenario`]; with a live sink, the
/// run additionally produces a full structured event trace plus counter
/// snapshots without perturbing the simulation.
pub fn run_scenario_traced(
    sc: &Scenario,
    tracer: &Tracer,
) -> (RunResult, Option<ConvergenceMonitor>) {
    let (mut dc, trace) = build_world(sc);
    let (mut policy, monitor) = build_policy_traced(sc, &dc, &trace, tracer);

    // Every algorithm replays the *same* measured day: the trace rounds
    // after GLAP's training prefix.
    let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
    let mut collector = MetricsCollector::new();
    let mut net = NetworkModel::new(sc.n_pms, sc.fault.clone(), sc.policy_seed());
    run_simulation_traced(
        &mut dc,
        &mut day,
        policy.as_mut(),
        &mut [&mut collector],
        sc.rounds,
        sc.policy_seed(),
        &mut net,
        tracer,
    );

    let mut result = RunResult::from_run(sc.algorithm.label(), collector, &dc);
    result.bfd_bins = bfd_baseline(&dc);
    (result, monitor)
}

/// Checkpoint/resume options for [`run_scenario_checkpointed`].
#[derive(Debug, Clone, Default)]
pub struct CheckpointOpts {
    /// Write a checkpoint every this many measured rounds (0 = never).
    /// Byte-identity across an interruption requires the uninterrupted
    /// reference run to use the *same* cadence, because each checkpoint
    /// leaves a `checkpoint_written` event in the trace.
    pub every: u64,
    /// Directory for checkpoint files (`<scenario-id>.ckpt`); `None`
    /// still emits the checkpoint telemetry but writes nothing.
    pub dir: Option<PathBuf>,
    /// Resume from this snapshot file instead of starting fresh.
    pub resume: Option<PathBuf>,
    /// Stop after this many measured rounds (interrupt simulation: the
    /// run ends early and returns no [`RunResult`]).
    pub stop_at_round: Option<u64>,
}

/// A [`MetricsCollector`] observer that is shareable with the checkpoint
/// hook: the engine mutates it through [`Observer`] while each checkpoint
/// reads the samples collected so far.
struct SharedCollector(Rc<RefCell<MetricsCollector>>);

impl Observer for SharedCollector {
    fn on_round_end(&mut self, round: u64, dc: &mut DataCenter) {
        self.0.borrow_mut().on_round_end(round, dc);
    }
}

/// [`run_scenario_traced`] with checkpoint/resume support.
///
/// Fresh runs (no `opts.resume`) behave exactly like
/// [`run_scenario_traced`] — including GLAP pre-training — plus a
/// checkpoint written atomically every `opts.every` rounds. Resumed runs
/// skip pre-training entirely: all state, including the trained tables
/// and every RNG cursor, comes from the snapshot, and the continuation
/// is byte-identical to a run that was never interrupted.
///
/// Returns `Ok((None, _))` when `opts.stop_at_round` ended the run
/// before the scenario's final round; the convergence monitor is only
/// available on fresh traced GLAP runs (resumes skip the training that
/// produces it).
pub fn run_scenario_checkpointed(
    sc: &Scenario,
    tracer: &Tracer,
    opts: &CheckpointOpts,
) -> Result<(Option<RunResult>, Option<ConvergenceMonitor>), SnapshotError> {
    run_scenario_instrumented(sc, tracer, opts, &Profiler::off(), false)
}

/// An observer relaying round completions to the `--progress` stderr
/// heartbeat. Writes to stderr only and reads nothing back — the
/// simulation cannot observe it.
struct HeartbeatObserver(Heartbeat);

impl Observer for HeartbeatObserver {
    fn on_round_end(&mut self, round: u64, _dc: &mut DataCenter) {
        self.0.tick(round + 1);
    }
}

/// [`run_scenario_checkpointed`] with a wall-clock [`Profiler`] threaded
/// through pre-training, the engine and the network model, plus an
/// optional live stderr heartbeat. Both are strictly observational:
/// results are byte-identical whatever their setting (pinned by the
/// `integration_profile` suite).
pub fn run_scenario_instrumented(
    sc: &Scenario,
    tracer: &Tracer,
    opts: &CheckpointOpts,
    profiler: &Profiler,
    progress: bool,
) -> Result<(Option<RunResult>, Option<ConvergenceMonitor>), SnapshotError> {
    let (mut dc, trace, mut net, mut rng, mut policy, collector, rounds_done, monitor, call_init);
    if let Some(path) = &opts.resume {
        let _s = profiler.span("resume_load");
        let snap = read_snapshot_file(path)?;
        let resumed = resume_scenario(sc, &snap, tracer)?;
        dc = resumed.dc;
        trace = resumed.trace;
        net = resumed.net;
        rng = resumed.rng;
        policy = resumed.policy;
        collector = resumed.collector;
        rounds_done = resumed.rounds_done;
        monitor = None;
        call_init = false;
    } else {
        {
            let _s = profiler.span("build_world");
            (dc, trace) = build_world(sc);
        }
        let (p, m) = {
            let _s = profiler.span("build_policy");
            build_policy_instrumented(sc, &dc, &trace, tracer, profiler)
        };
        policy = p;
        monitor = m;
        net = NetworkModel::new(sc.n_pms, sc.fault.clone(), sc.policy_seed());
        rng = stream_rng(sc.policy_seed(), Stream::Policy);
        collector = MetricsCollector::new();
        rounds_done = 0;
        call_init = true;
    }

    let target = opts.stop_at_round.map_or(sc.rounds, |s| s.min(sc.rounds));
    let rounds_left = target.saturating_sub(rounds_done);
    let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
    let shared = Rc::new(RefCell::new(collector));
    let mut observer = SharedCollector(shared.clone());
    let hb = if progress {
        Heartbeat::new(&sc.id(), sc.rounds)
    } else {
        Heartbeat::off()
    };
    let mut hb_observer = HeartbeatObserver(hb);
    let hook_collector = shared.clone();
    let ckpt_file = opts.dir.as_ref().map(|d| checkpoint_path(d, sc));
    let mut hook = move |args: &CheckpointArgs<'_>| -> Result<(), SnapshotError> {
        let bytes = encode_checkpoint(sc, args, &hook_collector.borrow());
        match &ckpt_file {
            Some(path) => write_atomic(path, &bytes),
            None => Ok(()),
        }
    };
    let day_span = profiler.span("measured_day");
    run_simulation_resumable(
        &mut dc,
        &mut day,
        policy.as_mut(),
        &mut [&mut observer, &mut hb_observer],
        rounds_left,
        &mut net,
        tracer,
        profiler,
        &mut rng,
        call_init,
        opts.every,
        &mut hook,
    )?;
    drop(day_span);
    hb_observer.0.finish();
    drop(observer);
    drop(hook);
    let collector = Rc::try_unwrap(shared)
        .expect("observer and hook are dropped")
        .into_inner();

    if dc.round() < sc.rounds {
        return Ok((None, monitor));
    }
    let mut result = RunResult::from_run(sc.algorithm.label(), collector, &dc);
    result.bfd_bins = bfd_baseline(&dc);
    Ok((Some(result), monitor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap::GlapConfig;

    fn quick_scenario(algorithm: Algorithm) -> Scenario {
        Scenario {
            n_pms: 40,
            ratio: 3,
            rep: 0,
            algorithm,
            rounds: 60,
            glap: GlapConfig {
                learning_rounds: 20,
                aggregation_rounds: 10,
                ..GlapConfig::default()
            },
            trace_cfg: Default::default(),
            vm_mix: Default::default(),
            fault: Default::default(),
        }
    }

    #[test]
    fn world_is_identical_across_algorithms() {
        let a = quick_scenario(Algorithm::Glap);
        let b = quick_scenario(Algorithm::Pabfd);
        let (dc_a, tr_a) = build_world(&a);
        let (dc_b, tr_b) = build_world(&b);
        assert_eq!(tr_a, tr_b);
        let hosts_a: Vec<_> = dc_a.vms().map(|v| v.host).collect();
        let hosts_b: Vec<_> = dc_b.vms().map(|v| v.host).collect();
        assert_eq!(hosts_a, hosts_b);
    }

    #[test]
    fn all_algorithms_run_to_completion() {
        for algo in [
            Algorithm::Glap,
            Algorithm::Grmp,
            Algorithm::EcoCloud,
            Algorithm::Pabfd,
        ] {
            let sc = quick_scenario(algo);
            let result = run_scenario(&sc);
            assert_eq!(result.collector.samples.len(), 60, "{}", algo.label());
            assert!(result.bfd_bins > 0);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let sc = quick_scenario(Algorithm::Glap);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.collector.samples, b.collector.samples);
        assert_eq!(a.sla, b.sla);
    }

    #[test]
    fn glap_consolidates_in_the_quick_world() {
        let sc = quick_scenario(Algorithm::Glap);
        let result = run_scenario(&sc);
        let final_active = result.collector.samples.last().unwrap().active_pms;
        assert!(final_active < 40, "no consolidation: {final_active} active");
    }

    #[test]
    fn checkpointed_run_without_snapshots_matches_plain_run() {
        let sc = quick_scenario(Algorithm::Grmp);
        let plain = run_scenario(&sc);
        let (ckpt, _) = run_scenario_checkpointed(&sc, &Tracer::off(), &CheckpointOpts::default())
            .expect("no checkpoint I/O configured");
        let ckpt = ckpt.expect("ran to completion");
        assert_eq!(plain.collector.samples, ckpt.collector.samples);
        assert_eq!(plain.sla, ckpt.sla);
        assert_eq!(plain.bfd_bins, ckpt.bfd_bins);
    }

    #[test]
    fn interrupted_and_resumed_scenario_is_byte_identical() {
        let sc = quick_scenario(Algorithm::Glap);
        let dir = std::env::temp_dir().join(format!("glap-ckpt-runner-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Uninterrupted reference at the same checkpoint cadence.
        let full_opts = CheckpointOpts {
            every: 20,
            dir: Some(dir.join("full")),
            ..Default::default()
        };
        std::fs::create_dir_all(dir.join("full")).unwrap();
        let (full, _) = run_scenario_checkpointed(&sc, &Tracer::off(), &full_opts).unwrap();
        let full = full.unwrap();

        // Interrupt at round 20, then resume to the end.
        let part_dir = dir.join("part");
        std::fs::create_dir_all(&part_dir).unwrap();
        let stop_opts = CheckpointOpts {
            every: 20,
            dir: Some(part_dir.clone()),
            stop_at_round: Some(20),
            ..Default::default()
        };
        let (stopped, _) = run_scenario_checkpointed(&sc, &Tracer::off(), &stop_opts).unwrap();
        assert!(stopped.is_none(), "interrupted run yields no result");
        let ckpt = crate::checkpoint::checkpoint_path(&part_dir, &sc);
        assert!(ckpt.exists());

        let resume_opts = CheckpointOpts {
            every: 20,
            dir: Some(part_dir.clone()),
            resume: Some(ckpt),
            ..Default::default()
        };
        let (resumed, _) = run_scenario_checkpointed(&sc, &Tracer::off(), &resume_opts).unwrap();
        let resumed = resumed.unwrap();

        assert_eq!(full.collector.samples, resumed.collector.samples);
        assert_eq!(full.sla, resumed.sla);
        assert_eq!(full.bfd_bins, resumed.bfd_bins);
        assert_eq!(full.wake_ups, resumed.wake_ups);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_snapshot_from_another_scenario() {
        let sc = quick_scenario(Algorithm::Glap);
        let dir = std::env::temp_dir().join(format!("glap-ckpt-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stop_opts = CheckpointOpts {
            every: 10,
            dir: Some(dir.clone()),
            stop_at_round: Some(10),
            ..Default::default()
        };
        run_scenario_checkpointed(&sc, &Tracer::off(), &stop_opts).unwrap();
        let ckpt = crate::checkpoint::checkpoint_path(&dir, &sc);

        let mut other = quick_scenario(Algorithm::Glap);
        other.rep = 9;
        let resume_opts = CheckpointOpts {
            resume: Some(ckpt),
            ..Default::default()
        };
        let err = run_scenario_checkpointed(&other, &Tracer::off(), &resume_opts).unwrap_err();
        assert!(err.to_string().contains("repetition"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ablation_variants_run() {
        for algo in [
            Algorithm::GlapNoVeto,
            Algorithm::GlapCurrentOnly,
            Algorithm::GlapNoAggregation,
        ] {
            let sc = quick_scenario(algo);
            let result = run_scenario(&sc);
            assert_eq!(result.collector.samples.len(), 60);
        }
    }
}
