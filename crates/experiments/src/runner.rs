//! Executes one scenario end-to-end: trace synthesis, identical initial
//! placement, GLAP pre-training where applicable, the measured day, and
//! metric collection.

use crate::scenario::{Algorithm, Scenario};
use glap::{train_traced, unified_table, GlapPolicy, TableStore};
use glap_baselines::{
    bfd_baseline, EcoCloudConfig, EcoCloudPolicy, GrmpConfig, GrmpPolicy, PabfdConfig, PabfdPolicy,
};
use glap_cluster::{DataCenter, DataCenterConfig};
use glap_dcsim::{run_simulation_traced, stream_rng, ConsolidationPolicy, NetworkModel, Stream};
use glap_metrics::{MetricsCollector, RunResult};
use glap_telemetry::{ConvergenceMonitor, Tracer};
use glap_workload::{GoogleLikeTraceGen, MaterializedTrace, OffsetTrace};

/// Builds the data center of a scenario with its seed-determined initial
/// placement (identical for every algorithm within a repetition).
pub fn build_world(sc: &Scenario) -> (DataCenter, MaterializedTrace) {
    let mut dc = DataCenter::new(DataCenterConfig::paper(sc.n_pms));
    for i in 0..sc.n_vms() {
        dc.add_vm(sc.vm_mix.spec(i));
    }
    let mut placement_rng = stream_rng(sc.world_seed(), Stream::Placement);
    dc.random_placement(&mut placement_rng);

    // Trace covers the GLAP pre-training rounds plus the measured day.
    let total_rounds = sc.glap.learning_rounds + sc.rounds as usize;
    let gen = GoogleLikeTraceGen::new(sc.trace_cfg);
    let mut trace_rng = stream_rng(sc.world_seed(), Stream::Trace);
    let trace = gen.generate(sc.n_vms(), total_rounds, &mut trace_rng);
    (dc, trace)
}

/// Builds the policy for a scenario, pre-training GLAP variants on a
/// throwaway copy of the world (the paper's "700 more rounds to calculate
/// Q-values beforehand").
pub fn build_policy(
    sc: &Scenario,
    dc: &DataCenter,
    trace: &MaterializedTrace,
) -> Box<dyn ConsolidationPolicy> {
    build_policy_traced(sc, dc, trace, &Tracer::off()).0
}

/// [`build_policy`] with an event tracer: GLAP's offline pre-training
/// emits `shuffle_*` / `convergence_sampled` events through `tracer` and
/// the returned [`ConvergenceMonitor`] holds the divergence series
/// (non-`None` only for GLAP variants with the tracer on).
pub fn build_policy_traced(
    sc: &Scenario,
    dc: &DataCenter,
    trace: &MaterializedTrace,
    tracer: &Tracer,
) -> (Box<dyn ConsolidationPolicy>, Option<ConvergenceMonitor>) {
    match sc.algorithm {
        Algorithm::Grmp => (Box::new(GrmpPolicy::new(GrmpConfig::default())), None),
        Algorithm::EcoCloud => (
            Box::new(EcoCloudPolicy::new(EcoCloudConfig::default())),
            None,
        ),
        Algorithm::Pabfd => (Box::new(PabfdPolicy::new(PabfdConfig::default())), None),
        Algorithm::Glap
        | Algorithm::GlapNoVeto
        | Algorithm::GlapCurrentOnly
        | Algorithm::GlapNoAggregation => {
            let mut cfg = sc.glap;
            if sc.algorithm == Algorithm::GlapNoAggregation {
                cfg.aggregation_rounds = 0;
            }
            let mut train_dc = dc.clone();
            let mut train_trace = trace.clone();
            let (tables, _report, monitor) = train_traced(
                &mut train_dc,
                &mut train_trace,
                &cfg,
                sc.policy_seed(),
                false,
                tracer,
            );
            let store = if sc.algorithm == Algorithm::GlapNoAggregation {
                TableStore::PerPm(tables)
            } else {
                TableStore::Shared(Box::new(unified_table(&tables)))
            };
            let mut policy = GlapPolicy::new(cfg, store);
            policy.disable_in_veto = sc.algorithm == Algorithm::GlapNoVeto;
            policy.current_state_only = sc.algorithm == Algorithm::GlapCurrentOnly;
            let monitor = tracer.is_on().then_some(monitor);
            (Box::new(policy), monitor)
        }
    }
}

/// Runs a scenario and returns its result bundle.
pub fn run_scenario(sc: &Scenario) -> RunResult {
    run_scenario_traced(sc, &Tracer::off()).0
}

/// [`run_scenario`] with an event tracer threaded through pre-training,
/// the network, the data center, and the policy. With [`Tracer::off`] the
/// results are byte-identical to [`run_scenario`]; with a live sink, the
/// run additionally produces a full structured event trace plus counter
/// snapshots without perturbing the simulation.
pub fn run_scenario_traced(
    sc: &Scenario,
    tracer: &Tracer,
) -> (RunResult, Option<ConvergenceMonitor>) {
    let (mut dc, trace) = build_world(sc);
    let (mut policy, monitor) = build_policy_traced(sc, &dc, &trace, tracer);

    // Every algorithm replays the *same* measured day: the trace rounds
    // after GLAP's training prefix.
    let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
    let mut collector = MetricsCollector::new();
    let mut net = NetworkModel::new(sc.n_pms, sc.fault.clone(), sc.policy_seed());
    run_simulation_traced(
        &mut dc,
        &mut day,
        policy.as_mut(),
        &mut [&mut collector],
        sc.rounds,
        sc.policy_seed(),
        &mut net,
        tracer,
    );

    let mut result = RunResult::from_run(sc.algorithm.label(), collector, &dc);
    result.bfd_bins = bfd_baseline(&dc);
    (result, monitor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap::GlapConfig;

    fn quick_scenario(algorithm: Algorithm) -> Scenario {
        Scenario {
            n_pms: 40,
            ratio: 3,
            rep: 0,
            algorithm,
            rounds: 60,
            glap: GlapConfig {
                learning_rounds: 20,
                aggregation_rounds: 10,
                ..GlapConfig::default()
            },
            trace_cfg: Default::default(),
            vm_mix: Default::default(),
            fault: Default::default(),
        }
    }

    #[test]
    fn world_is_identical_across_algorithms() {
        let a = quick_scenario(Algorithm::Glap);
        let b = quick_scenario(Algorithm::Pabfd);
        let (dc_a, tr_a) = build_world(&a);
        let (dc_b, tr_b) = build_world(&b);
        assert_eq!(tr_a, tr_b);
        let hosts_a: Vec<_> = dc_a.vms().map(|v| v.host).collect();
        let hosts_b: Vec<_> = dc_b.vms().map(|v| v.host).collect();
        assert_eq!(hosts_a, hosts_b);
    }

    #[test]
    fn all_algorithms_run_to_completion() {
        for algo in [
            Algorithm::Glap,
            Algorithm::Grmp,
            Algorithm::EcoCloud,
            Algorithm::Pabfd,
        ] {
            let sc = quick_scenario(algo);
            let result = run_scenario(&sc);
            assert_eq!(result.collector.samples.len(), 60, "{}", algo.label());
            assert!(result.bfd_bins > 0);
        }
    }

    #[test]
    fn runs_are_reproducible() {
        let sc = quick_scenario(Algorithm::Glap);
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(a.collector.samples, b.collector.samples);
        assert_eq!(a.sla, b.sla);
    }

    #[test]
    fn glap_consolidates_in_the_quick_world() {
        let sc = quick_scenario(Algorithm::Glap);
        let result = run_scenario(&sc);
        let final_active = result.collector.samples.last().unwrap().active_pms;
        assert!(final_active < 40, "no consolidation: {final_active} active");
    }

    #[test]
    fn ablation_variants_run() {
        for algo in [
            Algorithm::GlapNoVeto,
            Algorithm::GlapCurrentOnly,
            Algorithm::GlapNoAggregation,
        ] {
            let sc = quick_scenario(algo);
            let result = run_scenario(&sc);
            assert_eq!(result.collector.samples.len(), 60);
        }
    }
}
