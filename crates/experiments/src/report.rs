//! Result reporting: aligned text tables for stdout and CSV files for
//! post-processing, written without external dependencies.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given header.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<w$}", c, w = width[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn save_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Renders a numeric series as a unicode sparkline (▁▂▃▄▅▆▇█), scaled to
/// the series' own min/max — used by binaries to show round series inline
/// (cumulative migrations, overload counts, similarity curves).
pub fn sparkline(xs: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if xs.is_empty() {
        return String::new();
    }
    let min = xs.iter().cloned().fold(f64::MAX, f64::min);
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    xs.iter()
        .map(|&x| {
            let idx = (((x - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Downsamples a series to at most `width` points by averaging buckets —
/// pair with [`sparkline`] for long round series.
pub fn downsample(xs: &[f64], width: usize) -> Vec<f64> {
    if xs.is_empty() || width == 0 {
        return Vec::new();
    }
    if xs.len() <= width {
        return xs.to_vec();
    }
    let bucket = xs.len() as f64 / width as f64;
    (0..width)
        .map(|i| {
            let lo = (i as f64 * bucket) as usize;
            let hi = (((i + 1) as f64 * bucket) as usize)
                .min(xs.len())
                .max(lo + 1);
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// The per-round CSV a single-scenario binary writes: one line per
/// measured round with the consolidation-facing sample fields. Shared by
/// `single_run` and `node_runtime` so the sim-vs-channel CI comparison
/// diffs identically formatted files.
pub fn rounds_csv(result: &glap_metrics::RunResult) -> String {
    let mut csv =
        String::from("round,active_pms,overloaded_pms,migrations,migration_energy_j,wake_ups\n");
    for s in &result.collector.samples {
        csv.push_str(&format!(
            "{},{},{},{},{},{}\n",
            s.round, s.active_pms, s.overloaded_pms, s.migrations, s.migration_energy_j, s.wake_ups
        ));
    }
    csv
}

/// Formats a float compactly for tables (scientific for very small
/// non-zero values, fixed otherwise).
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() < 0.001 {
        format!("{x:.2e}")
    } else if x.abs() < 10.0 {
        format!("{x:.4}")
    } else {
        format!("{x:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(["algo", "value"]);
        t.row(["GLAP", "1"]);
        t.row(["EcoCloud", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("algo"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
        // Columns aligned: "value" column starts at same offset.
        let off0 = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][off0 - 2..off0], "  ");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn save_csv_roundtrips() {
        let mut t = TextTable::new(["k", "v"]);
        t.row(["a", "1"]);
        let mut path = std::env::temp_dir();
        path.push(format!("glap_report_test_{}.csv", std::process::id()));
        t.save_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(body, "k,v\na,1\n");
    }

    #[test]
    fn sparkline_scales_to_extremes() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
    }

    #[test]
    fn sparkline_handles_constant_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[3.0, 3.0, 3.0]);
        assert!(flat.chars().all(|c| c == '▁'));
    }

    #[test]
    fn downsample_averages_buckets() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let d = downsample(&xs, 10);
        assert_eq!(d.len(), 10);
        // Bucket means are increasing.
        assert!(d.windows(2).all(|w| w[0] < w[1]));
        // Short series pass through unchanged.
        assert_eq!(downsample(&[1.0, 2.0], 10), vec![1.0, 2.0]);
        assert!(downsample(&xs, 0).is_empty());
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert!(fnum(0.00017).contains('e'));
        assert_eq!(fnum(0.27), "0.2700");
        assert_eq!(fnum(123.456), "123.5");
    }
}
