//! Scenario-level checkpointing: packaging the engine's mid-run state
//! ([`glap_dcsim::CheckpointArgs`]) into one snapshot file, and
//! reconstructing a resumable run from it.
//!
//! A checkpoint is a [`glap_snapshot`] container with seven sections:
//!
//! | section   | contents                                              |
//! |-----------|-------------------------------------------------------|
//! | `meta`    | scenario identity + seeds + rounds completed          |
//! | `rng`     | the policy-stream RNG cursor (exact, mid-block)       |
//! | `dc`      | the full [`DataCenter`] dynamic state                 |
//! | `net`     | the network model: fault profile, up-map, RNG cursor  |
//! | `policy`  | the policy's own state (`ConsolidationPolicy::save_state`) |
//! | `metrics` | every [`MetricsCollector`] round sample so far        |
//! | `tracer`  | telemetry phase/round/seq + the counter registry      |
//!
//! The `meta` section is validated against the scenario on resume, so a
//! checkpoint can never be silently applied to the wrong cell of a sweep
//! grid. The `tracer` section is encoded twice (see [`encode_checkpoint`])
//! so the `checkpoint.bytes` counter can include the size of the very
//! snapshot it is stored in.

use crate::runner::build_world;
use crate::scenario::{Algorithm, Scenario};
use glap::{GlapPolicy, TableStore};
use glap_baselines::{
    EcoCloudConfig, EcoCloudPolicy, GrmpConfig, GrmpPolicy, PabfdConfig, PabfdPolicy,
};
use glap_cluster::DataCenter;
use glap_dcsim::{
    restore_rng, save_rng, CheckpointArgs, ConsolidationPolicy, NetworkModel, SimRng,
};
use glap_metrics::{MetricsCollector, RunResult, SlaMetrics};
use glap_snapshot::{Checkpointable, Reader, Snapshot, SnapshotBuilder, SnapshotError, Writer};
use glap_telemetry::{EventKind, Tracer};
use glap_workload::MaterializedTrace;
use std::path::{Path, PathBuf};

/// The checkpoint file of a scenario inside `dir`.
pub fn checkpoint_path(dir: &Path, sc: &Scenario) -> PathBuf {
    dir.join(format!("{}.ckpt", sc.id()))
}

/// The finished-result marker file of a scenario inside `dir`.
pub fn done_path(dir: &Path, sc: &Scenario) -> PathBuf {
    dir.join(format!("{}.done", sc.id()))
}

fn meta_section(sc: &Scenario, round: u64) -> Writer {
    let mut w = Writer::new();
    w.put_str(sc.algorithm.label());
    w.put_usize(sc.n_pms);
    w.put_usize(sc.ratio);
    w.put_usize(sc.rep);
    w.put_u64(sc.rounds);
    w.put_u64(sc.world_seed());
    w.put_u64(sc.policy_seed());
    w.put_u64(round);
    w
}

/// Validates a snapshot's `meta` section against the scenario it is about
/// to resume, returning the number of measured rounds already completed.
/// Every mismatch is a [`SnapshotError::Corrupt`] naming the field, so a
/// checkpoint can never silently resume the wrong cell.
pub fn check_meta(sc: &Scenario, snap: &Snapshot) -> Result<u64, SnapshotError> {
    let mut r = snap.section("meta")?;
    let algorithm = r.get_str()?;
    if algorithm != sc.algorithm.label() {
        return Err(SnapshotError::Corrupt(format!(
            "checkpoint is for algorithm {algorithm}, scenario runs {}",
            sc.algorithm.label()
        )));
    }
    let n_pms = r.get_usize()?;
    if n_pms != sc.n_pms {
        return Err(SnapshotError::Corrupt(format!(
            "checkpoint has {n_pms} PMs, scenario has {}",
            sc.n_pms
        )));
    }
    let ratio = r.get_usize()?;
    if ratio != sc.ratio {
        return Err(SnapshotError::Corrupt(format!(
            "checkpoint has ratio {ratio}, scenario has {}",
            sc.ratio
        )));
    }
    let rep = r.get_usize()?;
    if rep != sc.rep {
        return Err(SnapshotError::Corrupt(format!(
            "checkpoint is repetition {rep}, scenario is {}",
            sc.rep
        )));
    }
    let rounds = r.get_u64()?;
    if rounds != sc.rounds {
        return Err(SnapshotError::Corrupt(format!(
            "checkpoint targets {rounds} rounds, scenario targets {}",
            sc.rounds
        )));
    }
    let world_seed = r.get_u64()?;
    if world_seed != sc.world_seed() {
        return Err(SnapshotError::Corrupt(
            "checkpoint world seed does not match the scenario".into(),
        ));
    }
    let policy_seed = r.get_u64()?;
    if policy_seed != sc.policy_seed() {
        return Err(SnapshotError::Corrupt(
            "checkpoint policy seed does not match the scenario".into(),
        ));
    }
    let round = r.get_u64()?;
    if round > sc.rounds {
        return Err(SnapshotError::Corrupt(format!(
            "checkpoint claims {round} completed rounds of {}",
            sc.rounds
        )));
    }
    Ok(round)
}

/// Encodes one checkpoint for a scenario from the engine's hook payload.
///
/// The telemetry side effects happen *before* the tracer state is
/// captured, so an uninterrupted run and an interrupted-then-resumed run
/// (both checkpointing at the same cadence) keep byte-identical event
/// traces and counter CSVs: `checkpoint.written` is bumped, a
/// [`EventKind::CheckpointWritten`] event is emitted, and the
/// `checkpoint.bytes` key is created. The container is then encoded
/// twice — the first pass measures the total size, the second stores it
/// in `checkpoint.bytes`. The two passes are size-stable because
/// counters are fixed-width.
pub fn encode_checkpoint(
    sc: &Scenario,
    args: &CheckpointArgs<'_>,
    collector: &MetricsCollector,
) -> Vec<u8> {
    args.tracer.add("checkpoint.written", 1);
    args.tracer.emit(EventKind::CheckpointWritten);
    args.tracer.add("checkpoint.bytes", 0);

    let mut b = SnapshotBuilder::new();
    b.section("meta", meta_section(sc, args.round));
    let mut w = Writer::new();
    save_rng(args.rng, &mut w);
    b.section("rng", w);
    let mut w = Writer::new();
    args.dc.save(&mut w);
    b.section("dc", w);
    let mut w = Writer::new();
    args.net.save(&mut w);
    b.section("net", w);
    let mut w = Writer::new();
    w.put_bytes(args.policy_state);
    b.section("policy", w);
    let mut w = Writer::new();
    collector.save(&mut w);
    b.section("metrics", w);
    let mut w = Writer::new();
    args.tracer.save_state(&mut w);
    b.section("tracer", w);

    let first = b.encode();
    args.tracer.add("checkpoint.bytes", first.len() as u64);
    let mut w = Writer::new();
    args.tracer.save_state(&mut w);
    b.section("tracer", w);
    let second = b.encode();
    debug_assert_eq!(
        first.len(),
        second.len(),
        "fixed-width counters keep the two encode passes size-stable"
    );
    second
}

/// Builds the policy a checkpoint restores into: the same type and
/// configuration [`crate::runner::build_policy`] would produce, but
/// *without* GLAP's offline pre-training — the trained tables arrive
/// from the snapshot via `restore_state`, so resuming costs seconds,
/// not another 700 training rounds.
pub fn unprimed_policy(sc: &Scenario) -> Box<dyn ConsolidationPolicy> {
    match sc.algorithm {
        Algorithm::Grmp => Box::new(GrmpPolicy::new(GrmpConfig::default())),
        Algorithm::EcoCloud => Box::new(EcoCloudPolicy::new(EcoCloudConfig::default())),
        Algorithm::Pabfd => Box::new(PabfdPolicy::new(PabfdConfig::default())),
        Algorithm::Glap
        | Algorithm::GlapNoVeto
        | Algorithm::GlapCurrentOnly
        | Algorithm::GlapNoAggregation => {
            let mut cfg = sc.glap;
            if sc.algorithm == Algorithm::GlapNoAggregation {
                cfg.aggregation_rounds = 0;
            }
            let mut policy = GlapPolicy::new(cfg, TableStore::Shared(Box::default()));
            policy.disable_in_veto = sc.algorithm == Algorithm::GlapNoVeto;
            policy.current_state_only = sc.algorithm == Algorithm::GlapCurrentOnly;
            Box::new(policy)
        }
    }
}

/// Everything needed to continue a checkpointed run.
pub struct ResumedRun {
    /// The world, restored to its mid-run state.
    pub dc: DataCenter,
    /// The (deterministically regenerated) full demand trace.
    pub trace: MaterializedTrace,
    /// The network model with its fault-stream cursor restored.
    pub net: NetworkModel,
    /// The policy-stream RNG, restored to its exact cursor.
    pub rng: SimRng,
    /// The policy with its internal state restored (no `init` needed).
    pub policy: Box<dyn ConsolidationPolicy>,
    /// Round samples collected before the checkpoint.
    pub collector: MetricsCollector,
    /// Measured rounds already completed.
    pub rounds_done: u64,
}

/// Reconstructs a runnable mid-run state from a validated snapshot.
///
/// Static structure (PM/VM inventory, the demand trace) is rebuilt
/// deterministically from the scenario's seeds; the snapshot then
/// overwrites every piece of dynamic state. `tracer` — when on — has its
/// phase/round/seq stamp and counter registry restored too, so event
/// traces and counter CSVs continue seamlessly.
pub fn resume_scenario(
    sc: &Scenario,
    snap: &Snapshot,
    tracer: &Tracer,
) -> Result<ResumedRun, SnapshotError> {
    let rounds_done = check_meta(sc, snap)?;
    let (mut dc, trace) = build_world(sc);
    dc.restore(&mut snap.section("dc")?)?;
    if dc.round() != rounds_done {
        return Err(SnapshotError::Corrupt(format!(
            "meta claims {rounds_done} rounds, data center is at {}",
            dc.round()
        )));
    }
    let mut net = NetworkModel::new(sc.n_pms, sc.fault.clone(), sc.policy_seed());
    net.restore(&mut snap.section("net")?)?;
    let rng = restore_rng(&mut snap.section("rng")?)?;
    let mut policy = unprimed_policy(sc);
    let policy_bytes = snap.section("policy")?.get_bytes()?;
    policy.restore_state(&mut Reader::new(&policy_bytes))?;
    let mut collector = MetricsCollector::new();
    collector.restore(&mut snap.section("metrics")?)?;
    tracer.restore_state(&mut snap.section("tracer")?)?;
    Ok(ResumedRun {
        dc,
        trace,
        net,
        rng,
        policy,
        collector,
        rounds_done,
    })
}

/// Encodes a finished [`RunResult`] as a snapshot container (one
/// `result` section) — the sweep's `.done` marker files, CRC-protected
/// like every other snapshot.
pub fn encode_result(result: &RunResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(&result.algorithm);
    result.collector.save(&mut w);
    w.put_f64(result.sla.slavo);
    w.put_f64(result.sla.slalm);
    w.put_f64(result.sla.slav);
    w.put_usize(result.bfd_bins);
    w.put_u64(result.wake_ups);
    let mut b = SnapshotBuilder::new();
    b.section("result", w);
    b.encode()
}

/// Inverse of [`encode_result`].
pub fn decode_result(snap: &Snapshot) -> Result<RunResult, SnapshotError> {
    let mut r = snap.section("result")?;
    let algorithm = r.get_str()?;
    let mut collector = MetricsCollector::new();
    collector.restore(&mut r)?;
    let sla = SlaMetrics {
        slavo: r.get_f64()?,
        slalm: r.get_f64()?,
        slav: r.get_f64()?,
    };
    let bfd_bins = r.get_usize()?;
    let wake_ups = r.get_u64()?;
    Ok(RunResult {
        algorithm,
        collector,
        sla,
        bfd_bins,
        wake_ups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_metrics::RoundSample;
    use glap_snapshot::Snapshot;

    fn scenario(algorithm: Algorithm) -> Scenario {
        Scenario {
            n_pms: 20,
            ratio: 2,
            rep: 1,
            algorithm,
            rounds: 30,
            glap: Default::default(),
            trace_cfg: Default::default(),
            vm_mix: Default::default(),
            fault: Default::default(),
        }
    }

    fn snapshot_with_meta(sc: &Scenario, round: u64) -> Snapshot {
        let mut b = SnapshotBuilder::new();
        b.section("meta", meta_section(sc, round));
        Snapshot::decode(&b.encode()).unwrap()
    }

    #[test]
    fn meta_round_trips_and_reports_rounds_done() {
        let sc = scenario(Algorithm::Glap);
        let snap = snapshot_with_meta(&sc, 12);
        assert_eq!(check_meta(&sc, &snap).unwrap(), 12);
    }

    #[test]
    fn meta_rejects_wrong_algorithm_and_cell() {
        let sc = scenario(Algorithm::Glap);
        let snap = snapshot_with_meta(&sc, 5);
        let wrong_algo = scenario(Algorithm::Grmp);
        let err = check_meta(&wrong_algo, &snap).unwrap_err();
        assert!(err.to_string().contains("GLAP"), "{err}");
        let mut wrong_cell = scenario(Algorithm::Glap);
        wrong_cell.n_pms = 21;
        assert!(check_meta(&wrong_cell, &snap).is_err());
        let mut wrong_rep = scenario(Algorithm::Glap);
        wrong_rep.rep = 0;
        assert!(check_meta(&wrong_rep, &snap).is_err());
    }

    #[test]
    fn meta_rejects_round_past_the_end() {
        let sc = scenario(Algorithm::Glap);
        let snap = snapshot_with_meta(&sc, 31);
        assert!(check_meta(&sc, &snap).is_err());
    }

    #[test]
    fn result_files_round_trip() {
        let mut collector = MetricsCollector::new();
        collector.samples.push(RoundSample {
            round: 0,
            active_pms: 9,
            overloaded_pms: 1,
            migrations: 4,
            migration_energy_j: 123.5,
            wake_ups: 2,
        });
        let result = RunResult {
            algorithm: "GLAP".into(),
            collector,
            sla: SlaMetrics {
                slavo: 0.25,
                slalm: 0.5,
                slav: 0.125,
            },
            bfd_bins: 7,
            wake_ups: 2,
        };
        let bytes = encode_result(&result);
        let twin = decode_result(&Snapshot::decode(&bytes).unwrap()).unwrap();
        assert_eq!(twin.algorithm, "GLAP");
        assert_eq!(twin.collector.samples, result.collector.samples);
        assert_eq!(twin.sla, result.sla);
        assert_eq!(twin.bfd_bins, 7);
        assert_eq!(twin.wake_ups, 2);
        // And a re-encode is byte-identical.
        assert_eq!(encode_result(&twin), bytes);
    }

    #[test]
    fn paths_embed_the_scenario_id() {
        let sc = scenario(Algorithm::Pabfd);
        let dir = Path::new("/tmp/ckpts");
        assert!(checkpoint_path(dir, &sc)
            .to_string_lossy()
            .ends_with("PABFD-20x2-r1.ckpt"));
        assert!(done_path(dir, &sc)
            .to_string_lossy()
            .ends_with("PABFD-20x2-r1.done"));
    }

    #[test]
    fn unprimed_policies_match_scenario_algorithms() {
        for algo in Algorithm::PAPER_SET
            .iter()
            .chain(Algorithm::ABLATION_SET.iter())
        {
            let sc = scenario(*algo);
            let policy = unprimed_policy(&sc);
            // Every unprimed policy reports a name; GLAP variants share
            // the protocol name while baselines keep their own.
            assert!(!policy.name().is_empty());
        }
    }
}
