//! # glap-snapshot — deterministic checkpoint/restore
//!
//! A versioned, self-describing binary container for mid-run simulation
//! state, plus the [`Checkpointable`] trait every stateful component
//! implements. The format is little-endian throughout and has no
//! external dependencies (the vendored serde is an inert stub; all
//! encoding here is hand-rolled).
//!
//! ## Container layout (format v1)
//!
//! ```text
//! magic            8 bytes   "GLAPSNAP"
//! format_version   u32       1
//! section_count    u32
//! section*         repeated:
//!     name_len     u16
//!     name         name_len bytes (UTF-8)
//!     payload_len  u64
//!     crc32        u32       IEEE CRC-32 of the payload bytes
//!     payload      payload_len bytes
//! ```
//!
//! The section table is **append-only**: decoders ignore sections they
//! do not know, so old checkpoints keep decoding as the format grows —
//! `tests/golden.rs` pins a committed v1 fixture against exactly that
//! contract. Every section's CRC is validated *before* [`Snapshot`]
//! is returned, so a corrupt file never yields a partially-loaded
//! snapshot: decoding is all-or-nothing with a typed [`SnapshotError`].
//!
//! ## Determinism contract
//!
//! A snapshot captures component state exactly (RNG cursors included),
//! so interrupt-at-round-R + restore replays the uninterrupted run
//! byte for byte. The integration tests in the experiments crate
//! enforce that end to end; this crate only promises that what was
//! saved is what restore hands back.

pub mod codec;
pub mod container;
pub mod error;
pub mod io;

pub use codec::{Reader, Writer};
pub use container::{Snapshot, SnapshotBuilder, FORMAT_VERSION, MAGIC};
pub use error::SnapshotError;
pub use io::{read_snapshot_file, write_atomic};

/// A component whose complete dynamic state can be written to and
/// reconstructed from a snapshot section.
///
/// `save` and `restore` must be exact inverses: after
/// `a.save(&mut w); b.restore(&mut Reader::new(w.bytes()))`, a second
/// `b.save(..)` must produce identical bytes (the proptests in this
/// crate and the per-component tests pin this). `restore` operates on
/// a structurally compatible instance (same topology sizes) and must
/// never leave `self` partially updated on error paths that the caller
/// could observe — callers treat any `Err` as "discard this instance".
pub trait Checkpointable {
    /// Serializes the complete dynamic state into `w`.
    fn save(&self, w: &mut Writer);

    /// Overwrites `self` from serialized state.
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError>;
}

/// Computes the IEEE CRC-32 (reflected, polynomial `0xEDB88320`) of a
/// byte slice — the per-section integrity check of the container.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Small table built on demand; snapshot encode/decode is not on the
    // simulation hot path.
    let mut table = [0u32; 256];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
        }
        *entry = c;
    }
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
