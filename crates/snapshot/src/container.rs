//! The versioned section container: magic, format version, named
//! sections with per-section CRC-32. See the crate docs for the exact
//! byte layout.

use crate::codec::{Reader, Writer};
use crate::crc32;
use crate::error::SnapshotError;

/// The 8-byte file magic.
pub const MAGIC: &[u8; 8] = b"GLAPSNAP";

/// The container format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Builds a snapshot: named sections appended in order, then encoded
/// with [`SnapshotBuilder::encode`].
#[derive(Debug, Default, Clone)]
pub struct SnapshotBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Appends a section with the given payload. Section names must be
    /// unique; re-adding a name replaces the previous payload (the
    /// two-pass encode of self-referential counters relies on this).
    pub fn section(&mut self, name: &str, payload: Writer) {
        let payload = payload.into_bytes();
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = payload;
        } else {
            self.sections.push((name.to_string(), payload));
        }
    }

    /// Encodes the container.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let mut out = Vec::with_capacity(
            16 + self
                .sections
                .iter()
                .map(|(n, p)| n.len() + p.len() + 14)
                .sum::<usize>(),
        );
        out.extend_from_slice(MAGIC);
        w.put_u32(FORMAT_VERSION);
        w.put_u32(self.sections.len() as u32);
        out.extend_from_slice(w.bytes());
        for (name, payload) in &self.sections {
            let mut sw = Writer::new();
            sw.put_u16(name.len() as u16);
            out.extend_from_slice(sw.bytes());
            out.extend_from_slice(name.as_bytes());
            let mut hw = Writer::new();
            hw.put_u64(payload.len() as u64);
            hw.put_u32(crc32(payload));
            out.extend_from_slice(hw.bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A fully validated, decoded snapshot. Construction checks the magic,
/// the format version, every declared length, and every section CRC —
/// a [`Snapshot`] in hand means the whole file was intact.
#[derive(Debug, Clone)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Decodes and fully validates a container.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < MAGIC.len() {
            return Err(if bytes.starts_with(&MAGIC[..bytes.len()]) {
                SnapshotError::Truncated
            } else {
                SnapshotError::BadMagic
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = Reader::new(&bytes[MAGIC.len()..]);
        let version = r.get_u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::BadVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let count = r.get_u32()?;
        let mut sections = Vec::with_capacity(count.min(1024) as usize);
        for _ in 0..count {
            let name_len = r.get_u16()? as usize;
            let name_bytes = {
                if r.remaining() < name_len {
                    return Err(SnapshotError::Truncated);
                }
                let mut nb = Vec::with_capacity(name_len);
                for _ in 0..name_len {
                    nb.push(r.get_u8()?);
                }
                nb
            };
            let name = String::from_utf8(name_bytes)
                .map_err(|_| SnapshotError::Corrupt("non-UTF-8 section name".into()))?;
            let payload_len = r.get_usize()?;
            let declared_crc = r.get_u32()?;
            if r.remaining() < payload_len {
                return Err(SnapshotError::Truncated);
            }
            let mut payload = Vec::with_capacity(payload_len);
            for _ in 0..payload_len {
                payload.push(r.get_u8()?);
            }
            if crc32(&payload) != declared_crc {
                return Err(SnapshotError::BadCrc { section: name });
            }
            if sections.iter().any(|(n, _): &(String, _)| *n == name) {
                return Err(SnapshotError::Corrupt(format!(
                    "duplicate section `{name}`"
                )));
            }
            sections.push((name, payload));
        }
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes after section table".into(),
            ));
        }
        Ok(Snapshot { sections })
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// A reader over a required section's payload.
    pub fn section(&self, name: &str) -> Result<Reader<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| Reader::new(p))
            .ok_or_else(|| SnapshotError::MissingSection(name.to_string()))
    }

    /// Whether a section is present (decoders tolerate — and skip —
    /// unknown sections; this is the append-only evolution hook).
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        let mut w = Writer::new();
        w.put_u64(42);
        w.put_str("hello");
        b.section("alpha", w);
        let mut w2 = Writer::new();
        w2.put_f64_slice(&[1.0, 2.0, 3.0]);
        b.section("beta", w2);
        b.encode()
    }

    #[test]
    fn encode_decode_round_trips() {
        let bytes = sample();
        let snap = Snapshot::decode(&bytes).unwrap();
        assert_eq!(
            snap.section_names().collect::<Vec<_>>(),
            vec!["alpha", "beta"]
        );
        let mut r = snap.section("alpha").unwrap();
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert!(r.is_exhausted());
    }

    #[test]
    fn re_encoding_is_byte_identical() {
        let bytes = sample();
        let snap = Snapshot::decode(&bytes).unwrap();
        let mut b = SnapshotBuilder::new();
        for name in snap.section_names().map(String::from).collect::<Vec<_>>() {
            let mut w = Writer::new();
            let mut r = snap.section(&name).unwrap();
            while !r.is_exhausted() {
                w.put_u8(r.get_u8().unwrap());
            }
            b.section(&name, w);
        }
        assert_eq!(b.encode(), bytes);
    }

    #[test]
    fn replacing_a_section_keeps_one_copy() {
        let mut b = SnapshotBuilder::new();
        let mut w = Writer::new();
        w.put_u64(1);
        b.section("x", w);
        let mut w = Writer::new();
        w.put_u64(2);
        b.section("x", w);
        let snap = Snapshot::decode(&b.encode()).unwrap();
        assert_eq!(snap.section_names().count(), 1);
        assert_eq!(snap.section("x").unwrap().get_u64().unwrap(), 2);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert_eq!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            Snapshot::decode(b"short").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample();
        bytes[8] = 99; // format_version LE first byte
        assert_eq!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapshotError::BadVersion {
                found: 99,
                expected: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn every_truncation_is_loud() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::BadCrc { .. }
                        | SnapshotError::BadVersion { .. }
                        | SnapshotError::Corrupt(_)
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn payload_bit_flips_fail_crc() {
        let bytes = sample();
        // Flip a bit inside the first section's payload (after magic +
        // version + count + name header).
        let payload_start = 8 + 4 + 4 + 2 + "alpha".len() + 8 + 4;
        let mut corrupt = bytes.clone();
        corrupt[payload_start] ^= 0x40;
        match Snapshot::decode(&corrupt).unwrap_err() {
            SnapshotError::BadCrc { section } => assert_eq!(section, "alpha"),
            other => panic!("expected BadCrc, got {other}"),
        }
    }

    #[test]
    fn unknown_sections_are_tolerated() {
        let mut b = SnapshotBuilder::new();
        let mut w = Writer::new();
        w.put_u64(7);
        b.section("known", w);
        let mut w = Writer::new();
        w.put_str("from-the-future");
        b.section("added_in_v7", w);
        let snap = Snapshot::decode(&b.encode()).unwrap();
        assert!(snap.has_section("added_in_v7"));
        assert_eq!(snap.section("known").unwrap().get_u64().unwrap(), 7);
    }

    #[test]
    fn missing_section_is_typed() {
        let snap = Snapshot::decode(&sample()).unwrap();
        assert_eq!(
            snap.section("gamma").unwrap_err(),
            SnapshotError::MissingSection("gamma".into())
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }
}
