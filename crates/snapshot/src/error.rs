//! Typed snapshot failures. Decoding never panics and never yields a
//! partially valid snapshot: every failure mode maps to one of these.

use std::fmt;

/// Everything that can go wrong loading or interpreting a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The container's format version is not one this decoder reads.
    BadVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The input ended before the declared structure did.
    Truncated,
    /// A section's payload failed its CRC-32 check.
    BadCrc {
        /// Name of the corrupt section.
        section: String,
    },
    /// A section the reader requires is absent.
    MissingSection(String),
    /// The bytes decoded structurally but their content is invalid
    /// (impossible enum tag, mismatched topology size, scenario
    /// mismatch, …).
    Corrupt(String),
    /// An I/O failure while reading or writing the snapshot file.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a GLAP snapshot (bad magic)"),
            SnapshotError::BadVersion { found, expected } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (expected {expected})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::BadCrc { section } => {
                write!(
                    f,
                    "CRC mismatch in section `{section}` (snapshot is corrupt)"
                )
            }
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot is missing required section `{name}`")
            }
            SnapshotError::Corrupt(msg) => write!(f, "snapshot content invalid: {msg}"),
            SnapshotError::Io(msg) => write!(f, "snapshot I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.to_string())
    }
}
