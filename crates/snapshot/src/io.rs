//! Snapshot file I/O with crash-safe atomic writes.

use crate::container::Snapshot;
use crate::error::SnapshotError;
use std::path::Path;

/// Writes `bytes` to `path` atomically: the data lands in
/// `<path>.tmp` first and is renamed into place only after a
/// successful write + sync, so a crash mid-checkpoint never replaces a
/// good snapshot with a torn one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = {
        let mut name = path.as_os_str().to_owned();
        name.push(".tmp");
        std::path::PathBuf::from(name)
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and fully validates a snapshot file.
pub fn read_snapshot_file(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    Snapshot::decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Writer;
    use crate::container::SnapshotBuilder;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("glap-snapshot-io-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_read_round_trips() {
        let dir = tmp_dir("rt");
        let path = dir.join("a.ckpt");
        let mut b = SnapshotBuilder::new();
        let mut w = Writer::new();
        w.put_u64(99);
        b.section("s", w);
        write_atomic(&path, &b.encode()).unwrap();
        let snap = read_snapshot_file(&path).unwrap();
        assert_eq!(snap.section("s").unwrap().get_u64().unwrap(), 99);
        // No stray tmp file is left behind.
        assert!(!dir.join("a.ckpt.tmp").exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn atomic_write_replaces_previous_snapshot() {
        let dir = tmp_dir("replace");
        let path = dir.join("b.ckpt");
        for v in [1u64, 2, 3] {
            let mut b = SnapshotBuilder::new();
            let mut w = Writer::new();
            w.put_u64(v);
            b.section("v", w);
            write_atomic(&path, &b.encode()).unwrap();
        }
        let snap = read_snapshot_file(&path).unwrap();
        assert_eq!(snap.section("v").unwrap().get_u64().unwrap(), 3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_snapshot_file(Path::new("/nonexistent/nope.ckpt")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }
}
