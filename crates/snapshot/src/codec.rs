//! Primitive little-endian encoding: the [`Writer`]/[`Reader`] pair all
//! [`Checkpointable`](crate::Checkpointable) implementations build on.
//!
//! Integers are fixed-width little-endian; floats are the IEEE-754 bit
//! pattern (so `save → restore → save` is byte-identical even for NaN
//! payloads and signed zeros); strings and byte blobs are
//! length-prefixed with a `u64`. The reader is strict: any read past
//! the end is [`SnapshotError::Truncated`], and helpers that decode
//! tags return [`SnapshotError::Corrupt`] on unknown values.

use crate::error::SnapshotError;

/// Append-only byte buffer with typed little-endian primitives.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (the format is 64-bit everywhere).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, xs: &[f64]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_f64(x);
        }
    }

    /// Writes a length-prefixed bool slice.
    pub fn put_bool_slice(&mut self, xs: &[bool]) {
        self.put_u64(xs.len() as u64);
        for &x in xs {
            self.put_bool(x);
        }
    }
}

/// Strict sequential reader over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`); errors if it overflows the
    /// platform's `usize` or is absurdly larger than the remaining
    /// input (defensive against corrupt length prefixes).
    pub fn get_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| SnapshotError::Corrupt(format!("length {v} overflows usize")))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool; bytes other than 0/1 are corrupt.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupt(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.get_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed `f64` slice.
    pub fn get_f64_slice(&mut self) -> Result<Vec<f64>, SnapshotError> {
        let n = self.get_len()?;
        let mut out = Vec::with_capacity(n.min(self.remaining() / 8 + 1));
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed bool slice.
    pub fn get_bool_slice(&mut self) -> Result<Vec<bool>, SnapshotError> {
        let n = self.get_len()?;
        let mut out = Vec::with_capacity(n.min(self.remaining() + 1));
        for _ in 0..n {
            out.push(self.get_bool()?);
        }
        Ok(out)
    }

    /// A length prefix that is guaranteed not to promise more elements
    /// than bytes remain (each element is ≥ 1 byte), so corrupt lengths
    /// fail fast instead of attempting huge allocations.
    fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 3);
        w.put_usize(42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("hello");
        w.put_bytes(&[1, 2, 3]);
        w.put_f64_slice(&[1.5, -2.5]);
        w.put_bool_slice(&[true, false, true]);

        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 513);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_usize().unwrap(), 42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "hello");
        assert_eq!(r.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_f64_slice().unwrap(), vec![1.5, -2.5]);
        assert_eq!(r.get_bool_slice().unwrap(), vec![true, false, true]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn reads_past_end_are_truncated() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.get_u64().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_without_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let e = r.get_bytes().unwrap_err();
        assert!(matches!(
            e,
            SnapshotError::Truncated | SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn invalid_bool_byte_is_corrupt() {
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            r.get_bool().unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }
}
