//! Golden-file test pinning container format v1.
//!
//! `tests/fixtures/format_v1.snap` (at the repo root) is a small
//! committed snapshot exercising every codec primitive. It must keep
//! decoding — with the exact pinned values — as the format evolves,
//! so old sweep checkpoints stay readable. The section table is
//! append-only: future writers may add sections, but the encoding of
//! existing primitives and the container framing are frozen.
//!
//! If this test ever fails after a format change, the change broke
//! compatibility with deployed checkpoints: bump `FORMAT_VERSION` and
//! add a migration path instead of editing the fixture.

use glap_snapshot::{Reader, Snapshot, SnapshotBuilder, SnapshotError, Writer, FORMAT_VERSION};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/format_v1.snap")
}

/// A quiet-NaN bit pattern with a distinctive payload, pinned exactly
/// (the codec stores IEEE-754 bits, so even NaN payloads survive).
const NAN_BITS: u64 = 0x7FF8_0000_DEAD_BEEF;

/// Rebuilds the fixture from source. The committed file must stay
/// byte-identical to this builder's output (see
/// `fixture_matches_the_builder_byte_for_byte`).
fn fixture_builder() -> SnapshotBuilder {
    let mut b = SnapshotBuilder::new();

    let mut w = Writer::new();
    w.put_u8(0xA5);
    w.put_u16(51_966); // 0xCAFE
    w.put_u32(3_735_928_559); // 0xDEADBEEF
    w.put_u64(u64::MAX - 1);
    w.put_usize(1024);
    w.put_bool(true);
    w.put_bool(false);
    w.put_f64(std::f64::consts::PI);
    w.put_f64(-0.0);
    w.put_f64(f64::from_bits(NAN_BITS));
    b.section("scalars", w);

    let mut w = Writer::new();
    w.put_str("glap-snapshot v1 — naïve UTF-8 ✓");
    w.put_bytes(&[0x00, 0x01, 0xFE, 0xFF]);
    b.section("blobs", w);

    let mut w = Writer::new();
    w.put_f64_slice(&[1.5, -2.25, f64::INFINITY, f64::NEG_INFINITY, -0.0]);
    w.put_bool_slice(&[true, false, true, true]);
    b.section("slices", w);

    b
}

fn fixture_bytes() -> Vec<u8> {
    std::fs::read(fixture_path()).expect(
        "missing tests/fixtures/format_v1.snap — run \
         `cargo test -p glap-snapshot --test golden regenerate -- --ignored`",
    )
}

/// Regenerates the committed fixture. Run manually after *adding* new
/// sections to the fixture builder; never to paper over a decode
/// failure of the existing file.
#[test]
#[ignore = "writes the committed fixture; run once when extending it"]
fn regenerate() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, fixture_builder().encode()).unwrap();
    eprintln!("wrote {}", path.display());
}

#[test]
fn fixture_matches_the_builder_byte_for_byte() {
    assert_eq!(
        fixture_bytes(),
        fixture_builder().encode(),
        "the committed fixture and the in-source builder diverged: \
         either the writer's byte encoding changed (format break!) or \
         the fixture needs regenerating after an intentional extension"
    );
}

#[test]
fn fixture_decodes_with_pinned_values() {
    let snap = Snapshot::decode(&fixture_bytes()).unwrap();
    assert_eq!(
        snap.section_names().collect::<Vec<_>>(),
        vec!["scalars", "blobs", "slices"]
    );

    let mut r = snap.section("scalars").unwrap();
    assert_eq!(r.get_u8().unwrap(), 0xA5);
    assert_eq!(r.get_u16().unwrap(), 51_966);
    assert_eq!(r.get_u32().unwrap(), 3_735_928_559);
    assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
    assert_eq!(r.get_usize().unwrap(), 1024);
    assert!(r.get_bool().unwrap());
    assert!(!r.get_bool().unwrap());
    assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
    assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
    assert_eq!(r.get_f64().unwrap().to_bits(), NAN_BITS);
    assert!(r.is_exhausted());

    let mut r = snap.section("blobs").unwrap();
    assert_eq!(r.get_str().unwrap(), "glap-snapshot v1 — naïve UTF-8 ✓");
    assert_eq!(r.get_bytes().unwrap(), vec![0x00, 0x01, 0xFE, 0xFF]);
    assert!(r.is_exhausted());

    let mut r = snap.section("slices").unwrap();
    let xs = r.get_f64_slice().unwrap();
    assert_eq!(xs.len(), 5);
    assert_eq!(xs[0], 1.5);
    assert_eq!(xs[1], -2.25);
    assert_eq!(xs[2], f64::INFINITY);
    assert_eq!(xs[3], f64::NEG_INFINITY);
    assert_eq!(xs[4].to_bits(), (-0.0f64).to_bits());
    assert_eq!(r.get_bool_slice().unwrap(), vec![true, false, true, true]);
    assert!(r.is_exhausted());
}

#[test]
fn fixture_header_is_pinned() {
    let bytes = fixture_bytes();
    assert_eq!(&bytes[..8], b"GLAPSNAP");
    assert_eq!(
        u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        FORMAT_VERSION
    );
    assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 3);
}

#[test]
fn appended_sections_do_not_break_old_readers() {
    // A future writer appends a section this reader knows nothing
    // about; the pinned sections must still decode identically.
    let snap = Snapshot::decode(&fixture_bytes()).unwrap();
    let mut b = SnapshotBuilder::new();
    for name in snap.section_names().map(String::from).collect::<Vec<_>>() {
        let mut w = Writer::new();
        let mut r = snap.section(&name).unwrap();
        while !r.is_exhausted() {
            w.put_u8(r.get_u8().unwrap());
        }
        b.section(&name, w);
    }
    let mut w = Writer::new();
    w.put_str("added-in-a-later-release");
    b.section("vfuture_extras", w);

    let extended = Snapshot::decode(&b.encode()).unwrap();
    assert!(extended.has_section("vfuture_extras"));
    let mut r = extended.section("scalars").unwrap();
    assert_eq!(r.get_u8().unwrap(), 0xA5);
    let mut r = extended.section("blobs").unwrap();
    assert_eq!(r.get_str().unwrap(), "glap-snapshot v1 — naïve UTF-8 ✓");
}

#[test]
fn tampered_fixture_fails_loudly() {
    let bytes = fixture_bytes();

    // Version bump → BadVersion, never a partial load.
    let mut v2 = bytes.clone();
    v2[8] = 2;
    assert_eq!(
        Snapshot::decode(&v2).unwrap_err(),
        SnapshotError::BadVersion {
            found: 2,
            expected: FORMAT_VERSION
        }
    );

    // Bit flip in the first section's payload → BadCrc naming it.
    let payload_start = 16 + 2 + "scalars".len() + 8 + 4;
    let mut flipped = bytes.clone();
    flipped[payload_start] ^= 0x01;
    match Snapshot::decode(&flipped).unwrap_err() {
        SnapshotError::BadCrc { section } => assert_eq!(section, "scalars"),
        other => panic!("expected BadCrc, got {other}"),
    }

    // Any truncation → a typed error, never a panic.
    for cut in 0..bytes.len() {
        assert!(Snapshot::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
}

#[test]
fn fixture_payloads_reject_truncated_reads() {
    // Strictness holds inside sections too: cutting the blobs payload
    // mid-string is a typed Truncated, not garbage.
    let snap = Snapshot::decode(&fixture_bytes()).unwrap();
    let mut full = Vec::new();
    let mut r = snap.section("blobs").unwrap();
    while !r.is_exhausted() {
        full.push(r.get_u8().unwrap());
    }
    let mut short = Reader::new(&full[..full.len() / 2]);
    assert!(matches!(
        short.get_str().unwrap_err(),
        SnapshotError::Truncated
    ));
}
