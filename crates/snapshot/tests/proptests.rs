//! Property tests for the snapshot container: random states round-trip
//! `save → restore → save` to identical bytes, and mutilated inputs
//! (truncation, bit flips, version edits) are rejected with typed
//! [`SnapshotError`]s — never a panic, never a silent partial load.

use glap_snapshot::{
    crc32, Checkpointable, Reader, Snapshot, SnapshotBuilder, SnapshotError, Writer,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// A stand-in component with every primitive the real implementations
/// use (RNG words, f64 tables, bool masks, strings, nested vectors).
#[derive(Debug, Clone, PartialEq, Default)]
struct MockState {
    round: u64,
    cursor: u32,
    energy: f64,
    table: Vec<f64>,
    alive: Vec<bool>,
    label: String,
    views: Vec<Vec<u32>>,
}

impl Checkpointable for MockState {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.round);
        w.put_u32(self.cursor);
        w.put_f64(self.energy);
        w.put_f64_slice(&self.table);
        w.put_bool_slice(&self.alive);
        w.put_str(&self.label);
        w.put_usize(self.views.len());
        for view in &self.views {
            w.put_usize(view.len());
            for &x in view {
                w.put_u32(x);
            }
        }
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.round = r.get_u64()?;
        self.cursor = r.get_u32()?;
        self.energy = r.get_f64()?;
        self.table = r.get_f64_slice()?;
        self.alive = r.get_bool_slice()?;
        self.label = r.get_str()?;
        let n = r.get_usize()?;
        self.views.clear();
        for _ in 0..n {
            let m = r.get_usize()?;
            let mut view = Vec::with_capacity(m.min(1024));
            for _ in 0..m {
                view.push(r.get_u32()?);
            }
            self.views.push(view);
        }
        Ok(())
    }
}

fn mock_strategy() -> impl Strategy<Value = MockState> {
    (
        0u64..1_000_000,
        0u32..=16,
        (-1000i64..1000).prop_map(|x| x as f64 / 7.0),
        vec((-100i64..100).prop_map(|x| x as f64 * 0.125), 0..40),
        vec(prop_oneof![Just(true), Just(false)], 0..40),
        (0usize..4).prop_map(|i| ["", "GLAP", "ckpt", "αβ"][i].to_string()),
    )
        .prop_map(|(round, cursor, energy, table, alive, label)| MockState {
            round,
            cursor,
            energy,
            table,
            alive,
            label,
            views: Vec::new(),
        })
}

fn encode(states: &[MockState]) -> Vec<u8> {
    let mut b = SnapshotBuilder::new();
    for (i, s) in states.iter().enumerate() {
        let mut w = Writer::new();
        s.save(&mut w);
        b.section(&format!("state{i}"), w);
    }
    b.encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn save_restore_save_is_byte_identical(states in vec(mock_strategy(), 1..5)) {
        let bytes = encode(&states);
        let snap = Snapshot::decode(&bytes).expect("own encoding decodes");
        let mut restored = Vec::new();
        for i in 0..states.len() {
            let mut r = snap.section(&format!("state{i}")).unwrap();
            let mut s = MockState::default();
            s.restore(&mut r).expect("restore");
            prop_assert!(r.is_exhausted(), "restore left trailing bytes");
            restored.push(s);
        }
        prop_assert_eq!(&restored, &states);
        // The load-bearing contract: a second save of the restored
        // state produces the identical container bytes.
        prop_assert_eq!(encode(&restored), bytes);
    }

    #[test]
    fn truncations_are_rejected_loudly(state in mock_strategy(), frac in 0u32..100) {
        let bytes = encode(std::slice::from_ref(&state));
        let cut = (bytes.len() as u64 * u64::from(frac) / 100) as usize;
        if cut < bytes.len() {
            let err = Snapshot::decode(&bytes[..cut]).unwrap_err();
            prop_assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::BadVersion { .. }
                        | SnapshotError::BadCrc { .. }
                        | SnapshotError::Corrupt(_)
                ),
                "truncation at {} produced {:?}", cut, err
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected_loudly(state in mock_strategy(), pos in 0u32..10_000, bit in 0u32..8) {
        let bytes = encode(std::slice::from_ref(&state));
        let pos = pos as usize % bytes.len();
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        // A flip anywhere must either still decode to *valid sections
        // that fail semantically later* (impossible here: CRC covers
        // every payload byte) or produce a typed error. Never a panic.
        match Snapshot::decode(&corrupt) {
            Err(
                SnapshotError::BadMagic
                | SnapshotError::BadVersion { .. }
                | SnapshotError::Truncated
                | SnapshotError::BadCrc { .. }
                | SnapshotError::Corrupt(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            Ok(snap) => {
                // The only survivable flips are inside a section-name
                // length/count region that still describes a
                // consistent container; payload bytes are always
                // CRC-protected.
                for name in snap.section_names() {
                    prop_assert!(name.starts_with("state") || !name.is_empty());
                }
            }
        }
    }

    #[test]
    fn version_bumps_are_bad_version(state in mock_strategy(), v in 2u32..1000) {
        let mut bytes = encode(std::slice::from_ref(&state));
        bytes[8..12].copy_from_slice(&v.to_le_bytes());
        prop_assert_eq!(
            Snapshot::decode(&bytes).unwrap_err(),
            SnapshotError::BadVersion { found: v, expected: glap_snapshot::FORMAT_VERSION }
        );
    }

    #[test]
    fn crc_is_order_sensitive(data in vec(0u8..=255, 1..64)) {
        // Sanity on the integrity primitive itself: swapping two
        // unequal bytes changes the checksum.
        if data.len() >= 2 && data[0] != data[data.len() - 1] {
            let mut swapped = data.clone();
            let last = swapped.len() - 1;
            swapped.swap(0, last);
            prop_assert_ne!(crc32(&data), crc32(&swapped));
        }
    }
}
