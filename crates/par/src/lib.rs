//! A small scoped worker pool shared by the trainer and the experiment
//! grid (its original home was `glap-experiments`; it moved here so
//! `glap` core can parallelize the learning phase without a dependency
//! cycle).
//!
//! Individual simulation runs are deterministic by construction, so
//! parallelism never changes results — only wall-clock. Two primitives:
//!
//! * [`parallel_map`] — embarrassingly parallel fan-out over owned
//!   items, output in input order (scenario grids);
//! * [`parallel_for_each`] — in-place mutation of disjoint slice
//!   elements (the per-PM learning round, where each task owns its own
//!   Q-table, RNG and scratch).
//!
//! Workers claim contiguous chunks from a shared atomic cursor — one
//! `fetch_add` per chunk instead of per item, and no per-slot locks.
//! Worker panics are joined explicitly and re-raised on the caller with
//! their original payload, so a failing scenario can never silently
//! vanish from the result set.
//!
//! Thread-count resolution ([`resolve_threads`]) has one precedence
//! order everywhere: an explicit request, then the process-wide default
//! installed by the `--threads` CLI flag ([`set_default_threads`]), then
//! the `GLAP_THREADS` environment variable, then the machine's available
//! parallelism. Built on `std::thread` only — the approved dependency
//! list has no concurrency crates.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-worker execution stats from one [`parallel_for_each_timed`]
/// pool run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerTiming {
    /// Wall time this worker spent inside `f`, nanoseconds.
    pub busy_ns: u64,
    /// Items this worker processed.
    pub items: u64,
}

/// Pool-level timing from one [`parallel_for_each_timed`] run: the
/// pool's wall time plus each worker's busy split. `wall_ns -
/// busy_ns` per worker is idle (spawn/join skew and load imbalance).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolTiming {
    /// Wall time of the whole pool run, nanoseconds.
    pub wall_ns: u64,
    /// One entry per worker, in chunk order (a single entry on the
    /// sequential path).
    pub workers: Vec<WorkerTiming>,
}

/// Process-wide default worker count; 0 means "not set".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Installs a process-wide default worker count, used whenever a call
/// site passes `threads = None`. The CLI layer calls this once when
/// `--threads` is given, so every pool in the process — scenario grid
/// and in-training — honors the flag. Passing 0 clears the default.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// Resolves a worker count: explicit request, else the process default
/// ([`set_default_threads`]), else `GLAP_THREADS`, else the machine's
/// available parallelism. Always at least 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    let d = DEFAULT_THREADS.load(Ordering::Relaxed);
    if d > 0 {
        return d;
    }
    if let Ok(s) = std::env::var("GLAP_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Chunk size for `n` items over `threads` workers: ~4 chunks per
/// worker balances skewed work against cursor contention.
fn chunk_size(n: usize, threads: usize) -> usize {
    n.div_ceil(threads * 4).max(1)
}

/// Maps `f` over `items` using up to `threads` workers (resolved via
/// [`resolve_threads`] when `None`), preserving input order in the
/// output. A worker panic is re-raised on the caller with its original
/// payload once every other worker has drained.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: Option<usize>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads).clamp(1, n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let chunk = chunk_size(n, threads);
    let next = AtomicUsize::new(0);
    let f = &f;
    let items = &items;
    let mut pieces: Vec<(usize, Vec<R>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        local.push((start, items[start..end].iter().map(f).collect()));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => pieces.extend(local),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    pieces.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut piece) in pieces {
        out.append(&mut piece);
    }
    out
}

/// Runs `f` on every element of `items` in place, partitioning the
/// slice statically into one contiguous chunk per worker. Panics are
/// re-raised like in [`parallel_map`].
///
/// The static split (rather than the cursor) keeps the borrow story
/// trivial — each worker owns one `&mut` sub-slice — which is exactly
/// what the per-PM training round needs: element `i` bundles PM `i`'s
/// table, RNG and scratch, and no worker ever touches another's.
pub fn parallel_for_each<T, F>(items: &mut [T], threads: Option<usize>, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let _ = parallel_for_each_timed(items, threads, f);
}

/// [`parallel_for_each`] that also reports pool wall time and each
/// worker's busy time — the profiler's per-worker busy/idle split.
/// Same chunking, same execution order, same panic semantics; the only
/// addition is two monotonic clock reads per worker, so the untimed
/// wrapper simply discards the result.
pub fn parallel_for_each_timed<T, F>(items: &mut [T], threads: Option<usize>, f: F) -> PoolTiming
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return PoolTiming::default();
    }
    let wall0 = Instant::now();
    let threads = resolve_threads(threads).clamp(1, n);
    if threads == 1 {
        for item in items {
            f(item);
        }
        let busy = wall0.elapsed().as_nanos() as u64;
        return PoolTiming {
            wall_ns: busy,
            workers: vec![WorkerTiming {
                busy_ns: busy,
                items: n as u64,
            }],
        };
    }

    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut workers = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|part| {
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let items = part.len() as u64;
                    for item in part {
                        f(item);
                    }
                    WorkerTiming {
                        busy_ns: t0.elapsed().as_nanos() as u64,
                        items,
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(timing) => workers.push(timing),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    PoolTiming {
        wall_ns: wall0.elapsed().as_nanos() as u64,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(items.clone(), Some(4), |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(vec![1, 2, 3], Some(1), |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), None, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(vec![7], Some(16), |&x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn single_item_many_threads() {
        let out = parallel_map(vec![String::from("only")], Some(32), |s| s.len());
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn order_preserved_under_many_threads_with_skewed_work() {
        // Early items sleep longest, so late items finish first; the
        // output must still come back in input order.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(items.clone(), Some(16), |&x| {
            std::thread::sleep(std::time::Duration::from_micros((64 - x) * 50));
            x * 3 + 1
        });
        assert_eq!(out, items.iter().map(|x| x * 3 + 1).collect::<Vec<_>>());
    }

    #[test]
    fn results_match_sequential_regardless_of_threads() {
        let items: Vec<u64> = (0..50).collect();
        let seq = parallel_map(items.clone(), Some(1), |&x| x * x % 97);
        let par = parallel_map(items, Some(8), |&x| x * x % 97);
        assert_eq!(seq, par);
    }

    #[test]
    fn default_thread_count_runs_everything() {
        let out = parallel_map((0..10).collect::<Vec<i32>>(), None, |&x| x - 1);
        assert_eq!(out, (-1..9).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map((0..32).collect::<Vec<i32>>(), Some(4), |&x| {
                if x == 17 {
                    panic!("boom at {x}");
                }
                x
            })
        })
        .expect_err("the worker panic must reach the caller");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is the formatted message");
        assert_eq!(msg, "boom at 17");
    }

    #[test]
    fn for_each_mutates_every_element() {
        let mut items: Vec<u64> = (0..100).collect();
        parallel_for_each(&mut items, Some(4), |x| *x *= 2);
        assert_eq!(items, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_handles_empty_and_oversubscription() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_for_each(&mut empty, Some(8), |_| unreachable!());
        let mut one = vec![41];
        parallel_for_each(&mut one, Some(16), |x| *x += 1);
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn for_each_panic_propagates() {
        let mut items: Vec<i32> = (0..8).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_for_each(&mut items, Some(4), |&mut x| {
                if x == 3 {
                    panic!("for-each boom");
                }
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn resolve_threads_precedence() {
        // One sequential test owns the global default and the env var
        // (mutating them from parallel tests would race).
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit 0 clamps to 1");

        set_default_threads(5);
        assert_eq!(resolve_threads(None), 5);
        assert_eq!(resolve_threads(Some(2)), 2, "explicit beats default");

        set_default_threads(0);
        std::env::set_var("GLAP_THREADS", "7");
        assert_eq!(resolve_threads(None), 7);
        set_default_threads(4);
        assert_eq!(resolve_threads(None), 4, "default beats env");
        set_default_threads(0);
        std::env::set_var("GLAP_THREADS", "not-a-number");
        assert!(resolve_threads(None) >= 1, "bad env falls through");
        std::env::remove_var("GLAP_THREADS");
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn timed_for_each_reports_all_workers_and_items() {
        let mut items: Vec<u64> = (0..100).collect();
        let timing = parallel_for_each_timed(&mut items, Some(4), |x| *x += 1);
        assert_eq!(items, (1..101).collect::<Vec<_>>());
        assert_eq!(timing.workers.len(), 4);
        assert_eq!(timing.workers.iter().map(|w| w.items).sum::<u64>(), 100);
        for w in &timing.workers {
            assert!(w.busy_ns <= timing.wall_ns);
        }
    }

    #[test]
    fn timed_for_each_sequential_path_has_one_worker() {
        let mut items = vec![1u8, 2, 3];
        let timing = parallel_for_each_timed(&mut items, Some(1), |x| *x *= 2);
        assert_eq!(items, vec![2, 4, 6]);
        assert_eq!(timing.workers.len(), 1);
        assert_eq!(timing.workers[0].items, 3);
        assert_eq!(timing.workers[0].busy_ns, timing.wall_ns);
        assert_eq!(
            parallel_for_each_timed(&mut Vec::<u8>::new(), None, |_| {}),
            PoolTiming::default()
        );
    }

    #[test]
    fn chunking_covers_every_index_exactly_once() {
        for n in [1usize, 2, 3, 5, 17, 64, 1000] {
            for threads in [2usize, 3, 8] {
                let out = parallel_map((0..n).collect(), Some(threads), |&i| i);
                assert_eq!(out, (0..n).collect::<Vec<_>>(), "n={n} threads={threads}");
            }
        }
    }
}
