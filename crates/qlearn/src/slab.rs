//! Backing storage for the flat Q-table arena: a plain heap `Vec` or —
//! behind the `GLAP_ARENA_MMAP` flag — a file-backed `mmap` region, so a
//! million-PM table set (≈105 GB of values alone) can spill to disk
//! instead of pinning RSS.
//!
//! The mmap path deliberately avoids any libc dependency (the workspace
//! vendors no `libc`): on `x86_64-linux` it issues the `mmap`/`munmap`
//! syscalls directly via inline assembly against an *unlinked* temporary
//! file (created, grown with `set_len`, then removed while the fd stays
//! open), so the backing space is reclaimed automatically on process
//! exit, clean or not. Everywhere else — or on any failure along the way
//! — it silently degrades to the heap, which is always correct, just
//! fatter.
//!
//! Freshly mapped pages read back as zero bytes, which is exactly the
//! all-`0.0` / all-`false` initial state the arena wants, so heap and
//! mmap slabs start byte-identical for the element types used here
//! (`f64`, `bool`, zeroable sidecar integers).

use std::ops::{Deref, DerefMut};

/// Marker for element types whose all-zero byte pattern is a valid value
/// equal to `Self::ZERO` — the invariant that makes freshly mapped pages
/// a correct initial state.
///
/// # Safety
///
/// `ZERO`'s object representation must be all zero bytes and every bit
/// pattern the slab will ever hold must be produced by safe writes of
/// valid `Self` values (trivially true for the plain-old-data types
/// implemented below).
pub unsafe trait Zeroable: Copy {
    /// The value all-zero bytes decode to.
    const ZERO: Self;
}

unsafe impl Zeroable for f64 {
    const ZERO: Self = 0.0;
}
unsafe impl Zeroable for bool {
    const ZERO: Self = false;
}
unsafe impl Zeroable for usize {
    const ZERO: Self = 0;
}
unsafe impl Zeroable for u128 {
    const ZERO: Self = 0;
}

/// A fixed-length zero-initialized array of `T`, heap- or mmap-backed.
/// Derefs to `[T]`; the backing choice is invisible to all table kernels.
pub enum Slab<T: Zeroable> {
    /// Ordinary heap allocation.
    Heap(Vec<T>),
    /// File-backed anonymous-in-spirit mapping (unlinked temp file).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mmap(mmap_impl::MmapSlab<T>),
}

impl<T: Zeroable> Slab<T> {
    /// A zeroed heap slab of `len` elements.
    pub fn heap(len: usize) -> Self {
        Slab::Heap(vec![T::ZERO; len])
    }

    /// A zeroed slab of `len` elements, file-backed if `want_mmap` and
    /// the platform cooperates, heap otherwise. Never fails — the heap is
    /// the universal fallback.
    pub fn new(len: usize, want_mmap: bool) -> Self {
        if want_mmap {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            if let Some(m) = mmap_impl::MmapSlab::create(len) {
                return Slab::Mmap(m);
            }
        }
        Self::heap(len)
    }

    /// Whether this slab actually ended up file-backed.
    pub fn is_mmap(&self) -> bool {
        match self {
            Slab::Heap(_) => false,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Slab::Mmap(_) => true,
        }
    }
}

impl<T: Zeroable> Deref for Slab<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Slab::Heap(v) => v,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Slab::Mmap(m) => m.as_slice(),
        }
    }
}

impl<T: Zeroable> DerefMut for Slab<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        match self {
            Slab::Heap(v) => v,
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Slab::Mmap(m) => m.as_mut_slice(),
        }
    }
}

impl<T: Zeroable> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Slab<{}>{{ len: {}, backing: {} }}",
            std::any::type_name::<T>(),
            self.len(),
            if self.is_mmap() { "mmap" } else { "heap" }
        )
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod mmap_impl {
    use super::Zeroable;
    use std::fs::{File, OpenOptions};
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicU64, Ordering};

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 0x1;
    const PROT_WRITE: usize = 0x2;
    const MAP_SHARED: usize = 0x01;

    /// Raw `mmap(2)`; returns the mapped address or a negative errno.
    unsafe fn sys_mmap(len: usize, fd: i32) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MMAP as isize => ret,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ | PROT_WRITE,
            in("r10") MAP_SHARED,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// Raw `munmap(2)`.
    unsafe fn sys_munmap(addr: usize, len: usize) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MUNMAP as isize => ret,
            in("rdi") addr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// A writable mapping of an unlinked temp file, viewed as `[T]`.
    pub struct MmapSlab<T> {
        addr: usize,
        byte_len: usize,
        len: usize,
        /// Keeps the (already unlinked) backing file alive.
        _file: File,
        _marker: PhantomData<T>,
    }

    // The mapping is plain memory owned by this value; `T: Zeroable` is
    // POD, so the usual slice rules apply.
    unsafe impl<T: Send> Send for MmapSlab<T> {}
    unsafe impl<T: Sync> Sync for MmapSlab<T> {}

    static SLAB_COUNTER: AtomicU64 = AtomicU64::new(0);

    impl<T: Zeroable> MmapSlab<T> {
        /// Maps a zeroed `len`-element region backed by an unlinked temp
        /// file. Returns `None` on any failure (caller falls back to heap).
        pub fn create(len: usize) -> Option<Self> {
            let byte_len = len.checked_mul(std::mem::size_of::<T>())?;
            if byte_len == 0 {
                // Zero-length mmap is EINVAL; an empty heap Vec is free.
                return None;
            }
            let dir = std::env::var_os("GLAP_ARENA_MMAP_DIR")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(std::env::temp_dir);
            let seq = SLAB_COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!(
                "glap-arena-{}-{}.slab",
                std::process::id(),
                seq
            ));
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)
                .ok()?;
            // Unlink immediately: the mapping keeps the inode alive and
            // the kernel reclaims the space when the process dies.
            let _ = std::fs::remove_file(&path);
            file.set_len(byte_len as u64).ok()?;
            let ret = unsafe { sys_mmap(byte_len, fd_of(&file)) };
            if !(0..isize::MAX).contains(&ret) || ret as usize % std::mem::align_of::<T>() != 0 {
                return None;
            }
            Some(MmapSlab {
                addr: ret as usize,
                byte_len,
                len,
                _file: file,
                _marker: PhantomData,
            })
        }

        #[inline]
        pub fn as_slice(&self) -> &[T] {
            unsafe { std::slice::from_raw_parts(self.addr as *const T, self.len) }
        }

        #[inline]
        pub fn as_mut_slice(&mut self) -> &mut [T] {
            unsafe { std::slice::from_raw_parts_mut(self.addr as *mut T, self.len) }
        }
    }

    impl<T> Drop for MmapSlab<T> {
        fn drop(&mut self) {
            unsafe {
                sys_munmap(self.addr, self.byte_len);
            }
        }
    }

    /// `AsRawFd` without importing the trait into the public surface.
    fn fd_of(f: &File) -> i32 {
        use std::os::unix::io::AsRawFd;
        f.as_raw_fd()
    }
}

/// Reads the `GLAP_ARENA_MMAP` environment flag: `1`/`true`/`yes` (any
/// case) requests file-backed arena storage.
pub fn mmap_requested_from_env() -> bool {
    std::env::var("GLAP_ARENA_MMAP")
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            v == "1" || v == "true" || v == "yes"
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_slab_is_zeroed_and_writable() {
        let mut s: Slab<f64> = Slab::new(1024, false);
        assert!(!s.is_mmap());
        assert!(s.iter().all(|&x| x == 0.0));
        s[17] = 3.5;
        assert_eq!(s[17], 3.5);
    }

    #[test]
    fn mmap_slab_matches_heap_semantics() {
        let mut m: Slab<f64> = Slab::new(4096, true);
        // On non-linux-x86_64 (or mmap failure) this silently fell back
        // to heap; the semantics below must hold either way.
        assert!(m.iter().all(|&x| x == 0.0));
        for i in 0..m.len() {
            m[i] = i as f64 * 0.5;
        }
        assert_eq!(m[4095], 4095.0 * 0.5);
        let mut b: Slab<bool> = Slab::new(333, true);
        assert!(b.iter().all(|&x| !x));
        b[300] = true;
        assert!(b[300] && !b[299]);
    }

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    #[test]
    fn mmap_backing_actually_engages_on_linux() {
        let s: Slab<f64> = Slab::new(1 << 16, true);
        assert!(s.is_mmap(), "mmap slab should engage on x86_64 linux");
    }

    #[test]
    fn env_flag_parsing() {
        // Only exercises the parser, not the environment.
        assert!(!mmap_requested_from_env() || std::env::var("GLAP_ARENA_MMAP").is_ok());
    }
}
