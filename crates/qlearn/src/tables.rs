//! The φ_out / φ_in pair every PM maintains, plus the paper's decision
//! functions.
//!
//! * `π_out(s_p) = arg max_a φ_out(s_p, a)` over the actions available in
//!   the sender's VM set — which VM to evict.
//! * `π_in(a) = sign(φ_in(s_q, a))` — accept the migrating VM iff the
//!   learned value is non-negative; a negative value means accepting a VM
//!   in this load state "very likely ends in an overload state immediately
//!   or in the near future".

use crate::reward::{RewardIn, RewardOut};
use crate::state::{PmState, VmAction};
use crate::table::{QParams, QTable};
use serde::{Deserialize, Serialize};

/// A PM's learned knowledge: the two Q-tables plus hyperparameters.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QTables {
    /// Sender-mode values (which VM to move out).
    pub out: QTable,
    /// Recipient-mode values (accept/reject).
    pub r#in: QTable,
    /// Bellman hyperparameters.
    pub params: QParams,
    /// Reward system for sender mode.
    pub reward_out: RewardOut,
    /// Reward system for recipient mode.
    pub reward_in: RewardIn,
}

impl QTables {
    /// Fresh, untrained tables with the given hyperparameters.
    pub fn new(params: QParams) -> Self {
        QTables {
            out: QTable::new(),
            r#in: QTable::new(),
            params,
            reward_out: RewardOut::default(),
            reward_in: RewardIn::default(),
        }
    }

    /// One sender-mode training step: the PM in state `s` (from average
    /// demands) evicted a VM with action label `a` and ended in `s_next`
    /// (from current demands of the remaining VMs).
    ///
    /// Transitions into an overload state are terminal for bootstrapping —
    /// the consolidation episode stops there, so no future value is
    /// propagated through it.
    pub fn train_out(&mut self, s: PmState, a: VmAction, s_next: PmState) {
        let r = self.reward_out.of_transition(s_next);
        let future =
            if s_next.is_overloaded() { 0.0 } else { self.out.max_over_actions(s_next) };
        self.out.update_toward(s, a, r + self.params.gamma * future, self.params.alpha);
    }

    /// One recipient-mode training step: the PM in state `s` accepted a VM
    /// with action label `a` and ended in `s_next`.
    ///
    /// The continuation value is floored at zero: a recipient PM can
    /// always *reject* further VMs (the `π_in = −1` branch), so the value
    /// of the reached state is never worse than "stop accepting here".
    /// Without this floor the big negative overload reward would cascade
    /// backwards through `γ·max_a Q(s', a)` and poison every state —
    /// admission control would veto everything. Transitions that land in
    /// overload are terminal and keep their full `r_O ≪ 0` penalty, which
    /// is exactly the paper's "very likely ends in an overload state
    /// immediately or in the near future" signal (the near-future part
    /// enters through the average-demand state calibration).
    pub fn train_in(&mut self, s: PmState, a: VmAction, s_next: PmState) {
        let r = self.reward_in.of_transition(s_next);
        let future = if s_next.is_overloaded() {
            0.0
        } else {
            self.r#in.max_over_actions(s_next).max(0.0)
        };
        self.r#in.update_toward(s, a, r + self.params.gamma * future, self.params.alpha);
    }

    /// `π_out`: best available eviction action for sender state `s`.
    pub fn pi_out<I: IntoIterator<Item = VmAction>>(
        &self,
        s: PmState,
        available: I,
    ) -> Option<(VmAction, f64)> {
        self.out.best_action_among(s, available)
    }

    /// `π_in`: whether a recipient in state `s_q` should accept action `a`.
    /// Untrained pairs default to 0 → accepted, matching the `≥ 0` rule.
    pub fn pi_in(&self, s_q: PmState, a: VmAction) -> bool {
        self.r#in.get(s_q, a) >= 0.0
    }

    /// Algorithm 2's `UPDATE`: merge a peer's tables into ours (average on
    /// shared pairs, adopt missing pairs). `out` and `in` maps keep their
    /// identities (the paper's `φ^io = φ^in ∪ φ^out` is a tagged union).
    pub fn merge(&mut self, other: &QTables) {
        self.out.merge_average(&other.out);
        self.r#in.merge_average(&other.r#in);
    }

    /// Cosine similarity of the concatenated (out, in) value vectors —
    /// the convergence measure of Figure 5.
    pub fn cosine_similarity(&self, other: &QTables) -> f64 {
        // Concatenate by combining the two dot products and norms.
        let dot_norms = |x: &QTable, y: &QTable| {
            let mut dot = 0.0;
            let mut nx = 0.0;
            let mut ny = 0.0;
            let (xv, yv) = (x.raw_values(), y.raw_values());
            for i in 0..xv.len() {
                dot += xv[i] * yv[i];
                nx += xv[i] * xv[i];
                ny += yv[i] * yv[i];
            }
            (dot, nx, ny)
        };
        let (d1, a1, b1) = dot_norms(&self.out, &other.out);
        let (d2, a2, b2) = dot_norms(&self.r#in, &other.r#in);
        let (dot, na, nb) = (d1 + d2, a1 + a2, b1 + b2);
        if na == 0.0 && nb == 0.0 {
            1.0
        } else if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Total number of trained (state, action) pairs in both tables.
    pub fn trained_pairs(&self) -> usize {
        self.out.visited_count() + self.r#in.visited_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::Resources;

    fn s(cpu: f64, mem: f64) -> PmState {
        PmState::from_utilization(Resources::new(cpu, mem))
    }

    fn a(cpu: f64, mem: f64) -> VmAction {
        VmAction::from_demand(Resources::new(cpu, mem))
    }

    #[test]
    fn train_out_prefers_emptier_outcomes() {
        let mut q = QTables::new(QParams { alpha: 1.0, gamma: 0.0 });
        let st = s(0.75, 0.75);
        let evict_big = a(0.45, 0.45);
        let evict_small = a(0.1, 0.1);
        // Evicting the big VM lands in a light state, the small one in a
        // heavy state.
        q.train_out(st, evict_big, s(0.3, 0.3));
        q.train_out(st, evict_small, s(0.65, 0.65));
        assert!(q.out.get(st, evict_big) > q.out.get(st, evict_small));
        let (best, _) = q.pi_out(st, [evict_big, evict_small]).unwrap();
        assert_eq!(best, evict_big);
    }

    #[test]
    fn train_in_rejects_overloading_actions() {
        let mut q = QTables::new(QParams { alpha: 1.0, gamma: 0.0 });
        let st = s(0.85, 0.85);
        let small = a(0.1, 0.1);
        let big = a(0.45, 0.45);
        q.train_in(st, small, s(0.95, 0.95)); // fills up, fine
        q.train_in(st, big, s(1.0, 0.95)); // overloads → huge negative
        assert!(q.pi_in(st, small));
        assert!(!q.pi_in(st, big));
    }

    #[test]
    fn pi_in_default_accepts_untrained() {
        let q = QTables::new(QParams::default());
        assert!(q.pi_in(s(0.5, 0.5), a(0.3, 0.3)));
    }

    #[test]
    fn repeated_overload_training_stays_negative() {
        let mut q = QTables::new(QParams::default());
        let st = s(0.95, 0.95);
        let act = a(0.3, 0.3);
        for _ in 0..20 {
            q.train_in(st, act, s(1.0, 1.0));
        }
        assert!(q.r#in.get(st, act) < -100.0);
        assert!(!q.pi_in(st, act));
    }

    #[test]
    fn merge_unifies_knowledge() {
        let mut p = QTables::new(QParams::default());
        let mut q = QTables::new(QParams::default());
        p.train_out(s(0.5, 0.5), a(0.1, 0.1), s(0.3, 0.3));
        q.train_in(s(0.85, 0.85), a(0.45, 0.45), s(1.0, 1.0));
        let p0 = p.clone();
        p.merge(&q);
        q.merge(&p0);
        assert!((p.cosine_similarity(&q) - 1.0).abs() < 1e-12);
        assert!(!p.pi_in(s(0.85, 0.85), a(0.45, 0.45)));
    }

    #[test]
    fn similarity_of_fresh_tables_is_one() {
        let p = QTables::new(QParams::default());
        let q = QTables::new(QParams::default());
        assert_eq!(p.cosine_similarity(&q), 1.0);
    }

    #[test]
    fn trained_pairs_counts_both_tables() {
        let mut p = QTables::new(QParams::default());
        p.train_out(s(0.5, 0.5), a(0.1, 0.1), s(0.3, 0.3));
        p.train_in(s(0.5, 0.5), a(0.1, 0.1), s(0.65, 0.65));
        assert_eq!(p.trained_pairs(), 2);
    }
}
