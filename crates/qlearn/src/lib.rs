//! # glap-qlearn — tabular Q-learning substrate
//!
//! The model-free reinforcement-learning machinery of the GLAP paper
//! (§IV-A): the nine-level calibration of utilization, PM states and VM
//! actions over (CPU, MEM), the two reward systems (`out` for emptying
//! PMs, `in` for admission control), dense Q-tables with the Bellman
//! update of Eq. (1), the gossip merge of Algorithm 2 and the cosine
//! similarity convergence measure of Figure 5.
//!
//! ```
//! use glap_qlearn::prelude::*;
//! use glap_cluster::Resources;
//!
//! let mut q = QTablePair::new(QParams::default());
//! let s = PmState::from_utilization(Resources::new(0.79, 0.40)); // (3xHigh, Medium)
//! let a = VmAction::from_demand(Resources::new(0.41, 0.10));     // (High, Low)
//! let s_next = PmState::from_utilization(Resources::new(0.50, 0.30));
//! q.train_out(s, a, s_next); // Figure 3's update, in code
//! assert!(q.out.get(s, a) > 0.0);
//! ```

pub mod arena;
pub mod kernel;
pub mod level;
pub mod reward;
pub mod slab;
pub mod state;
pub mod table;

pub use arena::{ArenaPair, ArenaPtr, PairCaches, QArena};
pub use kernel::{RowMaxCache, TABLE_LEN};
pub use level::{Level, NUM_LEVELS};
pub use reward::{RewardIn, RewardOut};
pub use state::{PmState, VmAction, NUM_STATES};
pub use table::{QParams, QTable, QTablePair, TrainTarget};

/// Convenient glob import.
pub mod prelude {
    pub use crate::level::Level;
    pub use crate::reward::{RewardIn, RewardOut};
    pub use crate::state::{PmState, VmAction};
    pub use crate::table::{QParams, QTable, QTablePair};
}
