//! Dense tabular Q-values: the single [`QTable`] and the φ_out/φ_in
//! [`QTablePair`] every PM maintains.
//!
//! With 81 states × 81 actions, a Q-table is a 6561-entry `f64` array plus
//! a `visited` bitmap. The bitmap distinguishes "never trained" from
//! "trained to value 0", which the gossip merge of Algorithm 2 needs: a
//! (state, action) pair present in both peers is averaged, a pair present
//! in only one is adopted by the other.
//!
//! [`QTablePair`] adds the paper's decision functions on top:
//!
//! * `π_out(s_p) = arg max_a φ_out(s_p, a)` over the actions available in
//!   the sender's VM set — which VM to evict.
//! * `π_in(a) = sign(φ_in(s_q, a))` — accept the migrating VM iff the
//!   learned value is non-negative; a negative value means accepting a VM
//!   in this load state "very likely ends in an overload state immediately
//!   or in the near future".

use crate::reward::{RewardIn, RewardOut};
use crate::state::{PmState, VmAction, NUM_STATES};
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};
use serde::{Deserialize, Serialize};

/// Q-learning hyperparameters of Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QParams {
    /// Learning rate α ∈ (0, 1].
    pub alpha: f64,
    /// Discount factor γ ∈ [0, 1).
    pub gamma: f64,
}

impl Default for QParams {
    fn default() -> Self {
        QParams {
            alpha: 0.3,
            gamma: 0.8,
        }
    }
}

/// One dense Q-table over (PM state, VM action).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    values: Vec<f64>,
    visited: Vec<bool>,
    n_visited: usize,
}

impl Default for QTable {
    fn default() -> Self {
        Self::new()
    }
}

impl QTable {
    /// An empty (fully unvisited) table.
    pub fn new() -> Self {
        QTable {
            values: vec![0.0; NUM_STATES * NUM_STATES],
            visited: vec![false; NUM_STATES * NUM_STATES],
            n_visited: 0,
        }
    }

    #[inline]
    fn idx(s: PmState, a: VmAction) -> usize {
        s.index() * NUM_STATES + a.index()
    }

    /// Crate-internal: rebuild a table from raw storage (arena export,
    /// snapshot restore). Recounts the visited tally; `values` of
    /// unvisited entries are kept verbatim so restored snapshots stay
    /// byte-faithful.
    pub(crate) fn from_raw_parts(values: Vec<f64>, visited: Vec<bool>) -> QTable {
        let n_visited = visited.iter().filter(|&&v| v).count();
        QTable {
            values,
            visited,
            n_visited,
        }
    }

    /// Q(s, a); 0 for unvisited pairs.
    #[inline]
    pub fn get(&self, s: PmState, a: VmAction) -> f64 {
        self.values[Self::idx(s, a)]
    }

    /// Whether (s, a) has ever been trained or merged in.
    #[inline]
    pub fn is_visited(&self, s: PmState, a: VmAction) -> bool {
        self.visited[Self::idx(s, a)]
    }

    /// Number of visited pairs.
    #[inline]
    pub fn visited_count(&self) -> usize {
        self.n_visited
    }

    /// Directly sets Q(s, a), marking it visited.
    pub fn set(&mut self, s: PmState, a: VmAction, value: f64) {
        let i = Self::idx(s, a);
        if !self.visited[i] {
            self.visited[i] = true;
            self.n_visited += 1;
        }
        self.values[i] = value;
    }

    /// The greedy bootstrap term `max_a' Q(s', a')` over *visited* actions
    /// of `s'`; 0 when the row is untrained (optimistic-neutral init).
    /// Delegates to the shared [`kernel`](crate::kernel) scan so the
    /// boxed and the arena paths cannot drift.
    pub fn max_over_actions(&self, s: PmState) -> f64 {
        crate::kernel::max_over_actions(&self.values, &self.visited, s.index())
    }

    /// One Bellman update (the paper's Eq. (1)):
    /// `Q(s,a) ← (1−α)·Q(s,a) + α·(R + γ·max_a' Q(s', a'))`.
    pub fn bellman_update(
        &mut self,
        s: PmState,
        a: VmAction,
        s_next: PmState,
        reward: f64,
        params: QParams,
    ) {
        let future = self.max_over_actions(s_next);
        self.update_toward(s, a, reward + params.gamma * future, params.alpha);
    }

    /// Exponential-moving-average update toward an externally computed
    /// target: `Q(s,a) ← (1−α)·Q(s,a) + α·target`. This is Eq. (1) with
    /// the caller supplying `target = R + γ·future`; the GLAP reward
    /// systems use it to apply their own continuation semantics (terminal
    /// overload states, the recipient's option to reject).
    pub fn update_toward(&mut self, s: PmState, a: VmAction, target: f64, alpha: f64) {
        crate::kernel::update_toward(
            &mut self.values,
            &mut self.visited,
            &mut self.n_visited,
            Self::idx(s, a),
            target,
            alpha,
        );
    }

    /// `π_out`-style arg-max: the best action for `s` among `available`,
    /// considering only visited pairs. Returns the action and its Q-value.
    pub fn best_action_among<I>(&self, s: PmState, available: I) -> Option<(VmAction, f64)>
    where
        I: IntoIterator<Item = VmAction>,
    {
        let base = s.index() * NUM_STATES;
        let mut best: Option<(VmAction, f64)> = None;
        for a in available {
            let i = base + a.index();
            if !self.visited[i] {
                continue;
            }
            let q = self.values[i];
            match best {
                Some((_, bq)) if bq >= q => {}
                _ => best = Some((a, q)),
            }
        }
        best
    }

    /// Algorithm 2's merge: average pairs present in both tables, adopt
    /// pairs present only in `other`.
    pub fn merge_average(&mut self, other: &QTable) {
        for i in 0..self.values.len() {
            match (self.visited[i], other.visited[i]) {
                (true, true) => self.values[i] = (self.values[i] + other.values[i]) / 2.0,
                (false, true) => {
                    self.values[i] = other.values[i];
                    self.visited[i] = true;
                    self.n_visited += 1;
                }
                _ => {}
            }
        }
    }

    /// Symmetric, in-place form of Algorithm 2's push–pull `UPDATE`:
    /// after the call both tables hold the identical union/average
    /// result, without materializing a merged copy. The average uses the
    /// exact expression of [`merge_average`](Self::merge_average), so
    /// `QTable::merge_symmetric(&mut a, &mut b)` is bit-for-bit equal to
    /// the clone-then-average formulation `a.merge_average(&b);
    /// b.clone_from(&a);`.
    pub fn merge_symmetric(a: &mut QTable, b: &mut QTable) {
        let len = a.values.len();
        crate::kernel::merge_symmetric_range(
            &mut a.values,
            &mut a.visited,
            &mut a.n_visited,
            &mut b.values,
            &mut b.visited,
            &mut b.n_visited,
            0..len,
        );
    }

    /// Cosine similarity with `other` over the union of visited entries
    /// (unvisited = 0). Two empty tables are fully similar (1.0); an empty
    /// vs non-empty pair scores 0.
    pub fn cosine_similarity(&self, other: &QTable) -> f64 {
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for i in 0..self.values.len() {
            let a = if self.visited[i] { self.values[i] } else { 0.0 };
            let b = if other.visited[i] {
                other.values[i]
            } else {
                0.0
            };
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        if na == 0.0 && nb == 0.0 {
            1.0
        } else if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Iterates over visited entries as `(state, action, value)`.
    pub fn iter_visited(&self) -> impl Iterator<Item = (PmState, VmAction, f64)> + '_ {
        self.visited
            .iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(move |(i, _)| {
                (
                    PmState::from_index(i / NUM_STATES),
                    VmAction::from_index(i % NUM_STATES),
                    self.values[i],
                )
            })
    }

    /// Flat read-only view of the value array (benchmarks, similarity
    /// computations over many tables).
    pub fn raw_values(&self) -> &[f64] {
        &self.values
    }

    /// Flat read-only view of the visited bitmap, parallel to
    /// [`raw_values`](Self::raw_values) (sparse wire codecs).
    pub fn raw_visited(&self) -> &[bool] {
        &self.visited
    }

    /// Directly sets the entry at flat index `i`
    /// (= `s.index() * NUM_STATES + a.index()`), marking it visited.
    /// Index-based twin of [`set`](Self::set) for codecs that address
    /// entries by wire offset.
    #[inline]
    pub fn set_index(&mut self, i: usize, value: f64) {
        if !self.visited[i] {
            self.visited[i] = true;
            self.n_visited += 1;
        }
        self.values[i] = value;
    }
}

/// A PM's learned knowledge: the φ_out/φ_in tables plus hyperparameters
/// and reward systems. This is the one construction path for trained
/// state — protocols and policies hold `QTablePair`s, never loose
/// `QTable`s.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QTablePair {
    /// Sender-mode values (which VM to move out).
    pub out: QTable,
    /// Recipient-mode values (accept/reject).
    pub r#in: QTable,
    /// Bellman hyperparameters.
    pub params: QParams,
    /// Reward system for sender mode.
    pub reward_out: RewardOut,
    /// Reward system for recipient mode.
    pub reward_in: RewardIn,
}

impl QTablePair {
    /// Fresh, untrained tables with the given hyperparameters.
    pub fn new(params: QParams) -> Self {
        QTablePair {
            out: QTable::new(),
            r#in: QTable::new(),
            params,
            reward_out: RewardOut::default(),
            reward_in: RewardIn::default(),
        }
    }

    /// One sender-mode training step: the PM in state `s` (from average
    /// demands) evicted a VM with action label `a` and ended in `s_next`
    /// (from current demands of the remaining VMs).
    ///
    /// Transitions into an overload state are terminal for bootstrapping —
    /// the consolidation episode stops there, so no future value is
    /// propagated through it.
    pub fn train_out(&mut self, s: PmState, a: VmAction, s_next: PmState) {
        let r = self.reward_out.of_transition(s_next);
        let future = if s_next.is_overloaded() {
            0.0
        } else {
            self.out.max_over_actions(s_next)
        };
        self.out
            .update_toward(s, a, r + self.params.gamma * future, self.params.alpha);
    }

    /// One recipient-mode training step: the PM in state `s` accepted a VM
    /// with action label `a` and ended in `s_next`.
    ///
    /// The continuation value is floored at zero: a recipient PM can
    /// always *reject* further VMs (the `π_in = −1` branch), so the value
    /// of the reached state is never worse than "stop accepting here".
    /// Without this floor the big negative overload reward would cascade
    /// backwards through `γ·max_a Q(s', a)` and poison every state —
    /// admission control would veto everything. Transitions that land in
    /// overload are terminal and keep their full `r_O ≪ 0` penalty, which
    /// is exactly the paper's "very likely ends in an overload state
    /// immediately or in the near future" signal (the near-future part
    /// enters through the average-demand state calibration).
    pub fn train_in(&mut self, s: PmState, a: VmAction, s_next: PmState) {
        let r = self.reward_in.of_transition(s_next);
        let future = if s_next.is_overloaded() {
            0.0
        } else {
            self.r#in.max_over_actions(s_next).max(0.0)
        };
        self.r#in
            .update_toward(s, a, r + self.params.gamma * future, self.params.alpha);
    }

    /// `π_out`: best available eviction action for sender state `s`.
    pub fn pi_out<I: IntoIterator<Item = VmAction>>(
        &self,
        s: PmState,
        available: I,
    ) -> Option<(VmAction, f64)> {
        self.out.best_action_among(s, available)
    }

    /// `π_in`: whether a recipient in state `s_q` should accept action `a`.
    /// Untrained pairs default to 0 → accepted, matching the `≥ 0` rule.
    pub fn pi_in(&self, s_q: PmState, a: VmAction) -> bool {
        self.r#in.get(s_q, a) >= 0.0
    }

    /// Algorithm 2's `UPDATE`: merge a peer's tables into ours (average on
    /// shared pairs, adopt missing pairs). `out` and `in` maps keep their
    /// identities (the paper's `φ^io = φ^in ∪ φ^out` is a tagged union).
    pub fn merge(&mut self, other: &QTablePair) {
        self.out.merge_average(&other.out);
        self.r#in.merge_average(&other.r#in);
    }

    /// Symmetric push–pull merge of two PMs' knowledge: both pairs end
    /// with the identical union/average tables, in place. Matches the
    /// old `a.merge(&b); b.clone_from(&a);` bit-for-bit — including the
    /// hyperparameter/reward copy that `clone_from` performed — while
    /// allocating nothing.
    pub fn merge_symmetric(a: &mut QTablePair, b: &mut QTablePair) {
        QTable::merge_symmetric(&mut a.out, &mut b.out);
        QTable::merge_symmetric(&mut a.r#in, &mut b.r#in);
        b.params = a.params;
        b.reward_out = a.reward_out;
        b.reward_in = a.reward_in;
    }

    /// Cosine similarity of the concatenated (out, in) value vectors —
    /// the convergence measure of Figure 5.
    pub fn cosine_similarity(&self, other: &QTablePair) -> f64 {
        // Concatenate by combining the two dot products and norms.
        let dot_norms = |x: &QTable, y: &QTable| {
            let mut dot = 0.0;
            let mut nx = 0.0;
            let mut ny = 0.0;
            let (xv, yv) = (x.raw_values(), y.raw_values());
            for i in 0..xv.len() {
                dot += xv[i] * yv[i];
                nx += xv[i] * xv[i];
                ny += yv[i] * yv[i];
            }
            (dot, nx, ny)
        };
        let (d1, a1, b1) = dot_norms(&self.out, &other.out);
        let (d2, a2, b2) = dot_norms(&self.r#in, &other.r#in);
        let (dot, na, nb) = (d1 + d2, a1 + a2, b1 + b2);
        if na == 0.0 && nb == 0.0 {
            1.0
        } else if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Total number of trained (state, action) pairs in both tables.
    pub fn trained_pairs(&self) -> usize {
        self.out.visited_count() + self.r#in.visited_count()
    }
}

/// The two GLAP training updates, abstracted over storage — boxed
/// [`QTablePair`]s or flat [`QArena`](crate::QArena) slot views — so the
/// learning loop is written once and monomorphizes to both. Sharing the
/// loop is what pins the RNG draw sequence and arithmetic expression
/// order across the storage back ends; byte-identity of the two training
/// paths follows by construction.
pub trait TrainTarget {
    /// Sender-mode update, exactly [`QTablePair::train_out`].
    fn train_out(&mut self, s: PmState, a: VmAction, s_next: PmState);
    /// Recipient-mode update, exactly [`QTablePair::train_in`].
    fn train_in(&mut self, s: PmState, a: VmAction, s_next: PmState);
}

impl TrainTarget for QTablePair {
    #[inline]
    fn train_out(&mut self, s: PmState, a: VmAction, s_next: PmState) {
        QTablePair::train_out(self, s, a, s_next)
    }

    #[inline]
    fn train_in(&mut self, s: PmState, a: VmAction, s_next: PmState) {
        QTablePair::train_in(self, s, a, s_next)
    }
}

impl Checkpointable for QTable {
    fn save(&self, w: &mut Writer) {
        w.put_f64_slice(&self.values);
        w.put_bool_slice(&self.visited);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let values = r.get_f64_slice()?;
        let visited = r.get_bool_slice()?;
        let expect = NUM_STATES * NUM_STATES;
        if values.len() != expect || visited.len() != expect {
            return Err(SnapshotError::Corrupt(format!(
                "q-table has {} values / {} visited flags, expected {expect}",
                values.len(),
                visited.len()
            )));
        }
        self.n_visited = visited.iter().filter(|&&v| v).count();
        self.values = values;
        self.visited = visited;
        Ok(())
    }
}

impl Checkpointable for QTablePair {
    fn save(&self, w: &mut Writer) {
        self.out.save(w);
        self.r#in.save(w);
        w.put_f64(self.params.alpha);
        w.put_f64(self.params.gamma);
        w.put_f64_slice(&self.reward_out.values);
        w.put_f64_slice(&self.reward_in.values);
    }

    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        self.out.restore(r)?;
        self.r#in.restore(r)?;
        self.params.alpha = r.get_f64()?;
        self.params.gamma = r.get_f64()?;
        let out_vals = r.get_f64_slice()?;
        let in_vals = r.get_f64_slice()?;
        let (Ok(out_arr), Ok(in_arr)) = (
            <[f64; crate::level::NUM_LEVELS]>::try_from(out_vals.as_slice()),
            <[f64; crate::level::NUM_LEVELS]>::try_from(in_vals.as_slice()),
        ) else {
            return Err(SnapshotError::Corrupt(format!(
                "reward vectors have {} / {} levels, expected {}",
                out_vals.len(),
                in_vals.len(),
                crate::level::NUM_LEVELS
            )));
        };
        self.reward_out.values = out_arr;
        self.reward_in.values = in_arr;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::Resources;

    fn s(cpu: f64, mem: f64) -> PmState {
        PmState::from_utilization(Resources::new(cpu, mem))
    }

    fn a(cpu: f64, mem: f64) -> VmAction {
        VmAction::from_demand(Resources::new(cpu, mem))
    }

    #[test]
    fn new_table_is_unvisited_zero() {
        let t = QTable::new();
        assert_eq!(t.get(s(0.5, 0.5), a(0.1, 0.1)), 0.0);
        assert!(!t.is_visited(s(0.5, 0.5), a(0.1, 0.1)));
        assert_eq!(t.visited_count(), 0);
    }

    #[test]
    fn set_marks_visited_once() {
        let mut t = QTable::new();
        t.set(s(0.5, 0.5), a(0.1, 0.1), 7.0);
        t.set(s(0.5, 0.5), a(0.1, 0.1), 9.0);
        assert_eq!(t.visited_count(), 1);
        assert_eq!(t.get(s(0.5, 0.5), a(0.1, 0.1)), 9.0);
    }

    #[test]
    fn checkpoint_round_trips_pair_byte_identically() {
        let mut p = QTablePair::new(QParams::default());
        p.train_out(s(0.75, 0.75), a(0.3, 0.3), s(0.45, 0.45));
        p.train_in(s(0.45, 0.45), a(0.3, 0.3), s(0.75, 0.75));
        p.out.set(s(0.15, 0.15), a(0.1, 0.1), -0.0); // signed zero survives

        let mut w = Writer::new();
        p.save(&mut w);
        let bytes = w.into_bytes();

        let mut q = QTablePair::new(QParams {
            alpha: 0.9,
            gamma: 0.1,
        });
        q.restore(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(q.params, p.params);
        assert_eq!(q.out.visited_count(), p.out.visited_count());
        let mut w2 = Writer::new();
        q.save(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn qtable_restore_rejects_wrong_shape() {
        let mut w = Writer::new();
        w.put_f64_slice(&[1.0, 2.0]);
        w.put_bool_slice(&[true, false]);
        let bytes = w.into_bytes();
        let mut t = QTable::new();
        assert!(matches!(
            t.restore(&mut Reader::new(&bytes)).unwrap_err(),
            SnapshotError::Corrupt(_)
        ));
    }

    #[test]
    fn bellman_matches_formula() {
        let mut t = QTable::new();
        let params = QParams {
            alpha: 0.5,
            gamma: 0.8,
        };
        let s0 = s(0.75, 0.75);
        let s1 = s(0.45, 0.45);
        let act = a(0.3, 0.3);
        // Pre-seed the next state's row.
        t.set(s1, a(0.1, 0.1), 10.0);
        t.set(s0, act, 4.0);
        t.bellman_update(s0, act, s1, 100.0, params);
        // (1-0.5)*4 + 0.5*(100 + 0.8*10) = 2 + 54 = 56
        assert!((t.get(s0, act) - 56.0).abs() < 1e-12);
    }

    #[test]
    fn bellman_on_untrained_next_state_uses_zero_bootstrap() {
        let mut t = QTable::new();
        let params = QParams {
            alpha: 1.0,
            gamma: 0.9,
        };
        t.bellman_update(s(0.3, 0.3), a(0.1, 0.1), s(0.1, 0.1), 50.0, params);
        assert!((t.get(s(0.3, 0.3), a(0.1, 0.1)) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn max_over_actions_ignores_unvisited() {
        let mut t = QTable::new();
        let st = s(0.5, 0.5);
        assert_eq!(t.max_over_actions(st), 0.0);
        t.set(st, a(0.1, 0.1), -5.0);
        assert_eq!(t.max_over_actions(st), -5.0);
        t.set(st, a(0.3, 0.3), 2.0);
        assert_eq!(t.max_over_actions(st), 2.0);
    }

    #[test]
    fn best_action_among_respects_availability() {
        let mut t = QTable::new();
        let st = s(0.5, 0.5);
        let a1 = a(0.1, 0.1);
        let a2 = a(0.3, 0.3);
        let a3 = a(0.45, 0.45);
        t.set(st, a1, 10.0);
        t.set(st, a2, 20.0);
        t.set(st, a3, 30.0);
        // a3 not available → a2 wins.
        let best = t.best_action_among(st, [a1, a2]).unwrap();
        assert_eq!(best.0, a2);
        assert_eq!(best.1, 20.0);
        // No visited available → None.
        assert!(t.best_action_among(st, [a(0.85, 0.85)]).is_none());
    }

    #[test]
    fn merge_averages_shared_and_adopts_missing() {
        let mut p = QTable::new();
        let mut q = QTable::new();
        let st = s(0.5, 0.5);
        let shared = a(0.1, 0.1);
        let only_q = a(0.3, 0.3);
        let only_p = a(0.45, 0.45);
        p.set(st, shared, 10.0);
        q.set(st, shared, 20.0);
        q.set(st, only_q, 7.0);
        p.set(st, only_p, 3.0);
        p.merge_average(&q);
        assert_eq!(p.get(st, shared), 15.0);
        assert_eq!(p.get(st, only_q), 7.0);
        assert!(p.is_visited(st, only_q));
        assert_eq!(p.get(st, only_p), 3.0);
    }

    #[test]
    fn symmetric_merge_converges_to_common_average() {
        let mut p = QTable::new();
        let mut q = QTable::new();
        let st = s(0.5, 0.5);
        let act = a(0.1, 0.1);
        p.set(st, act, 0.0);
        q.set(st, act, 100.0);
        let p0 = p.clone();
        p.merge_average(&q);
        q.merge_average(&p0);
        assert_eq!(p.get(st, act), 50.0);
        assert_eq!(q.get(st, act), 50.0);
    }

    #[test]
    fn merge_symmetric_matches_clone_then_average_bitwise() {
        let mut p = QTable::new();
        let mut q = QTable::new();
        let st = s(0.5, 0.5);
        p.set(st, a(0.1, 0.1), 10.0 / 3.0);
        p.set(st, a(0.45, 0.45), -0.0);
        q.set(st, a(0.1, 0.1), 1.0 / 7.0);
        q.set(st, a(0.3, 0.3), 7.0);

        let (mut pr, mut qr) = (p.clone(), q.clone());
        p.merge_average(&q);
        q.clone_from(&p);
        QTable::merge_symmetric(&mut pr, &mut qr);
        assert_eq!(pr, p);
        assert_eq!(qr, q);
        assert_eq!(pr.visited_count(), 3);
        assert_eq!(qr.visited_count(), 3);
    }

    #[test]
    fn cosine_similarity_bounds_and_identity() {
        let mut p = QTable::new();
        let mut q = QTable::new();
        assert_eq!(p.cosine_similarity(&q), 1.0);
        p.set(s(0.5, 0.5), a(0.1, 0.1), 5.0);
        assert_eq!(p.cosine_similarity(&q), 0.0);
        q.set(s(0.5, 0.5), a(0.1, 0.1), 10.0);
        assert!((p.cosine_similarity(&q) - 1.0).abs() < 1e-12);
        q.set(s(0.3, 0.3), a(0.1, 0.1), -10.0);
        let c = p.cosine_similarity(&q);
        assert!(c > 0.0 && c < 1.0);
    }

    #[test]
    fn iter_visited_yields_only_trained_pairs() {
        let mut t = QTable::new();
        t.set(s(0.5, 0.5), a(0.1, 0.1), 1.0);
        t.set(s(0.75, 0.3), a(0.3, 0.45), 2.0);
        let got: Vec<_> = t.iter_visited().collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|&(_, _, v)| v == 1.0 || v == 2.0));
    }
}

#[cfg(test)]
mod pair_tests {
    use super::*;
    use glap_cluster::Resources;

    fn s(cpu: f64, mem: f64) -> PmState {
        PmState::from_utilization(Resources::new(cpu, mem))
    }

    fn a(cpu: f64, mem: f64) -> VmAction {
        VmAction::from_demand(Resources::new(cpu, mem))
    }

    #[test]
    fn train_out_prefers_emptier_outcomes() {
        let mut q = QTablePair::new(QParams {
            alpha: 1.0,
            gamma: 0.0,
        });
        let st = s(0.75, 0.75);
        let evict_big = a(0.45, 0.45);
        let evict_small = a(0.1, 0.1);
        // Evicting the big VM lands in a light state, the small one in a
        // heavy state.
        q.train_out(st, evict_big, s(0.3, 0.3));
        q.train_out(st, evict_small, s(0.65, 0.65));
        assert!(q.out.get(st, evict_big) > q.out.get(st, evict_small));
        let (best, _) = q.pi_out(st, [evict_big, evict_small]).unwrap();
        assert_eq!(best, evict_big);
    }

    #[test]
    fn train_in_rejects_overloading_actions() {
        let mut q = QTablePair::new(QParams {
            alpha: 1.0,
            gamma: 0.0,
        });
        let st = s(0.85, 0.85);
        let small = a(0.1, 0.1);
        let big = a(0.45, 0.45);
        q.train_in(st, small, s(0.95, 0.95)); // fills up, fine
        q.train_in(st, big, s(1.0, 0.95)); // overloads → huge negative
        assert!(q.pi_in(st, small));
        assert!(!q.pi_in(st, big));
    }

    #[test]
    fn pi_in_default_accepts_untrained() {
        let q = QTablePair::new(QParams::default());
        assert!(q.pi_in(s(0.5, 0.5), a(0.3, 0.3)));
    }

    #[test]
    fn repeated_overload_training_stays_negative() {
        let mut q = QTablePair::new(QParams::default());
        let st = s(0.95, 0.95);
        let act = a(0.3, 0.3);
        for _ in 0..20 {
            q.train_in(st, act, s(1.0, 1.0));
        }
        assert!(q.r#in.get(st, act) < -100.0);
        assert!(!q.pi_in(st, act));
    }

    #[test]
    fn merge_unifies_knowledge() {
        let mut p = QTablePair::new(QParams::default());
        let mut q = QTablePair::new(QParams::default());
        p.train_out(s(0.5, 0.5), a(0.1, 0.1), s(0.3, 0.3));
        q.train_in(s(0.85, 0.85), a(0.45, 0.45), s(1.0, 1.0));
        let p0 = p.clone();
        p.merge(&q);
        q.merge(&p0);
        assert!((p.cosine_similarity(&q) - 1.0).abs() < 1e-12);
        assert!(!p.pi_in(s(0.85, 0.85), a(0.45, 0.45)));
    }

    #[test]
    fn pair_merge_symmetric_unifies_like_sequential_merge() {
        let mut p = QTablePair::new(QParams::default());
        let mut q = QTablePair::new(QParams {
            alpha: 0.9,
            gamma: 0.1,
        });
        p.train_out(s(0.5, 0.5), a(0.1, 0.1), s(0.3, 0.3));
        q.train_in(s(0.85, 0.85), a(0.45, 0.45), s(1.0, 1.0));

        let (mut pr, mut qr) = (p.clone(), q.clone());
        p.merge(&q);
        q.clone_from(&p);
        QTablePair::merge_symmetric(&mut pr, &mut qr);
        assert_eq!(pr, p);
        assert_eq!(qr, q);
        assert_eq!(qr.params, pr.params);
    }

    #[test]
    fn similarity_of_fresh_tables_is_one() {
        let p = QTablePair::new(QParams::default());
        let q = QTablePair::new(QParams::default());
        assert_eq!(p.cosine_similarity(&q), 1.0);
    }

    #[test]
    fn trained_pairs_counts_both_tables() {
        let mut p = QTablePair::new(QParams::default());
        p.train_out(s(0.5, 0.5), a(0.1, 0.1), s(0.3, 0.3));
        p.train_in(s(0.5, 0.5), a(0.1, 0.1), s(0.65, 0.65));
        assert_eq!(p.trained_pairs(), 2);
    }
}
