//! The paper's two incentive systems (§IV-A, "Reward (R)").
//!
//! * **Reward out** (sender mode): strictly decreasing in the load of the
//!   state the PM transitions *to* — `r_L > r_M > … > r_O`, all positive —
//!   so emptying aggressively (reaching lighter states) pays more, pushing
//!   PMs toward sleep with few migrations.
//! * **Reward in** (recipient mode): positive and increasing for
//!   transitions *toward* overload (be "avaricious", fill up), but a large
//!   negative `r_O ≪ 0` for transitions *into* overload, so the learned
//!   `in` Q-values become negative exactly for the (state, action) pairs
//!   whose acceptance tends to end in SLA violation now or later.
//!
//! For both systems "the total reward of any transition … is \[the\]
//! aggregation \[of\] rewards of each resource": we sum the per-resource
//! level rewards of the destination state.

use crate::level::{Level, NUM_LEVELS};
use crate::state::PmState;
use serde::{Deserialize, Serialize};

/// Sender-mode rewards, indexed by destination-state level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardOut {
    /// Per-level reward, `values[level.rank()]`.
    pub values: [f64; NUM_LEVELS],
}

impl Default for RewardOut {
    fn default() -> Self {
        // Strictly decreasing, all positive: r_L > r_M > … > r_O > 0.
        RewardOut {
            values: [100.0, 80.0, 65.0, 52.0, 41.0, 31.0, 22.0, 14.0, 1.0],
        }
    }
}

impl RewardOut {
    /// Reward of one resource reaching `level`.
    #[inline]
    pub fn of_level(&self, level: Level) -> f64 {
        self.values[level.rank()]
    }

    /// Total reward of transitioning into `next` (per-resource sum).
    #[inline]
    pub fn of_transition(&self, next: PmState) -> f64 {
        self.of_level(next.cpu) + self.of_level(next.mem)
    }

    /// Validates the paper's ordering constraint.
    pub fn is_valid(&self) -> bool {
        self.values.windows(2).all(|w| w[0] > w[1]) && self.values.iter().all(|&v| v > 0.0)
    }
}

/// Recipient-mode rewards, indexed by destination-state level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardIn {
    /// Per-level reward, `values[level.rank()]`.
    pub values: [f64; NUM_LEVELS],
}

impl Default for RewardIn {
    fn default() -> Self {
        // Positive and increasing toward (but not into) overload; the
        // overload level itself is r_O ≪ 0.
        RewardIn {
            values: [5.0, 12.0, 20.0, 28.0, 36.0, 44.0, 52.0, 60.0, -3000.0],
        }
    }
}

impl RewardIn {
    /// Reward of one resource reaching `level`.
    #[inline]
    pub fn of_level(&self, level: Level) -> f64 {
        self.values[level.rank()]
    }

    /// Total reward of transitioning into `next` (per-resource sum).
    #[inline]
    pub fn of_transition(&self, next: PmState) -> f64 {
        self.of_level(next.cpu) + self.of_level(next.mem)
    }

    /// Validates the paper's constraints: positive and increasing below
    /// overload, strongly negative at overload.
    pub fn is_valid(&self) -> bool {
        let below = &self.values[..NUM_LEVELS - 1];
        below.iter().all(|&v| v > 0.0)
            && below.windows(2).all(|w| w[0] < w[1])
            && self.values[NUM_LEVELS - 1] < -below.iter().cloned().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glap_cluster::Resources;

    #[test]
    fn default_out_rewards_satisfy_paper_ordering() {
        assert!(RewardOut::default().is_valid());
    }

    #[test]
    fn default_in_rewards_satisfy_paper_ordering() {
        assert!(RewardIn::default().is_valid());
    }

    #[test]
    fn out_reward_prefers_lighter_destination() {
        let r = RewardOut::default();
        let light = PmState::from_utilization(Resources::new(0.1, 0.1));
        let heavy = PmState::from_utilization(Resources::new(0.85, 0.85));
        assert!(r.of_transition(light) > r.of_transition(heavy));
    }

    #[test]
    fn in_reward_prefers_fuller_destination_but_not_overload() {
        let r = RewardIn::default();
        let mid = PmState::from_utilization(Resources::new(0.5, 0.5));
        let full = PmState::from_utilization(Resources::new(0.95, 0.95));
        let over = PmState::from_utilization(Resources::new(1.0, 0.95));
        assert!(r.of_transition(full) > r.of_transition(mid));
        assert!(r.of_transition(over) < 0.0);
    }

    #[test]
    fn rewards_aggregate_per_resource() {
        let r = RewardIn::default();
        let s = PmState::from_utilization(Resources::new(0.1, 0.95));
        assert_eq!(
            r.of_transition(s),
            r.of_level(Level::Low) + r.of_level(Level::X5High)
        );
    }

    #[test]
    fn overload_in_one_resource_dominates() {
        let r = RewardIn::default();
        let s = PmState::from_utilization(Resources::new(1.0, 0.1));
        assert!(r.of_transition(s) < -900.0);
    }

    #[test]
    fn invalid_orderings_are_rejected() {
        let mut out = RewardOut::default();
        out.values[0] = 0.5; // no longer strictly decreasing from the top
        assert!(!out.is_valid());
        let mut rin = RewardIn::default();
        rin.values[NUM_LEVELS - 1] = 10.0; // overload must be negative
        assert!(!rin.is_valid());
    }
}
