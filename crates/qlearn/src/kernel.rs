//! Shared dense-table kernels: the *one* implementation of every hot
//! Q-table operation, used both by the boxed [`QTable`](crate::QTable)
//! methods and by the flat [`QArena`](crate::QArena) slab views.
//!
//! Byte-identity between the boxed and the arena training paths rests on
//! this sharing: the Bellman update, the bootstrap row scan and the
//! symmetric merge are single functions over raw `(values, visited)`
//! storage, so the two paths cannot drift in floating-point expression
//! order. On top of the canonical scans this module adds two *exact*
//! accelerations:
//!
//! * [`RowMaxCache`] — a lazily filled per-row cache of the bootstrap
//!   term `max_a Q(s, a)`, turning the 81-entry row scan of every
//!   training iteration into an O(1) lookup. The cache is bit-exact by
//!   construction: rows are (re)filled by the canonical scan itself, the
//!   in-place fast path only applies when the new value is *strictly*
//!   greater than the cached maximum (where the canonical scan provably
//!   returns the new value's own bits), and every tie — including the
//!   `-0.0`/`+0.0` cases whose result bits depend on scan position —
//!   conservatively invalidates the row.
//! * Row-skipping merges — the symmetric gossip merge walks only rows
//!   with at least one visited entry on either side (tracked as a
//!   monotone 81-bit [`row mask`](row_any_mask)); skipped rows are
//!   entirely `(unvisited, unvisited)`, for which the canonical merge is
//!   a provable no-op.

use crate::state::NUM_STATES;

/// Entries in one dense table (81 × 81).
pub const TABLE_LEN: usize = NUM_STATES * NUM_STATES;

/// Canonical EMA update `Q(s,a) ← (1−α)·Q(s,a) + α·target`, marking the
/// entry visited. Returns `(was_visited, old_value)` so cache layers can
/// maintain themselves exactly.
#[inline]
pub fn update_toward(
    values: &mut [f64],
    visited: &mut [bool],
    n_visited: &mut usize,
    i: usize,
    target: f64,
    alpha: f64,
) -> (bool, f64) {
    let old = values[i];
    let new = (1.0 - alpha) * old + alpha * target;
    let was = visited[i];
    if !was {
        visited[i] = true;
        *n_visited += 1;
    }
    values[i] = new;
    (was, old)
}

/// Canonical bootstrap scan over one row: `(any_visited, max)` where
/// `max` is the first-encountered maximum over visited entries (strict
/// `>` comparisons, exactly the historical loop). `max` is meaningless
/// when `any_visited` is false.
#[inline]
pub fn row_max_scan(values: &[f64], visited: &[bool], s: usize) -> (bool, f64) {
    let base = s * NUM_STATES;
    let mut best = f64::NEG_INFINITY;
    let mut any = false;
    for i in base..base + NUM_STATES {
        if visited[i] {
            any = true;
            if values[i] > best {
                best = values[i];
            }
        }
    }
    (any, best)
}

/// The bootstrap term `max_a Q(s, a)` with the canonical untrained-row
/// fallback of `0.0`.
#[inline]
pub fn max_over_actions(values: &[f64], visited: &[bool], s: usize) -> f64 {
    let (any, best) = row_max_scan(values, visited, s);
    if any {
        best
    } else {
        0.0
    }
}

/// Canonical symmetric merge of one entry range (Algorithm 2's `UPDATE`,
/// both directions at once): average where both visited, adopt where one
/// is. Exactly the historical per-entry match.
#[inline]
pub fn merge_symmetric_range(
    a_values: &mut [f64],
    a_visited: &mut [bool],
    a_n_visited: &mut usize,
    b_values: &mut [f64],
    b_visited: &mut [bool],
    b_n_visited: &mut usize,
    range: std::ops::Range<usize>,
) {
    for i in range {
        match (a_visited[i], b_visited[i]) {
            (true, true) => {
                let m = (a_values[i] + b_values[i]) / 2.0;
                a_values[i] = m;
                b_values[i] = m;
            }
            (false, true) => {
                a_values[i] = b_values[i];
                a_visited[i] = true;
                *a_n_visited += 1;
            }
            (true, false) => {
                b_values[i] = a_values[i];
                b_visited[i] = true;
                *b_n_visited += 1;
            }
            (false, false) => {}
        }
    }
}

/// Row-skipping symmetric merge over two parallel tables: only rows in
/// `union_mask` (rows visited on either side) are walked; the rest are
/// all-`(false, false)` and the canonical merge would not touch them.
/// Returns nothing — callers update both row masks to the union.
#[inline]
pub fn merge_symmetric_masked(
    a_values: &mut [f64],
    a_visited: &mut [bool],
    a_n_visited: &mut usize,
    b_values: &mut [f64],
    b_visited: &mut [bool],
    b_n_visited: &mut usize,
    union_mask: u128,
) {
    let mut mask = union_mask;
    while mask != 0 {
        let row = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        let base = row * NUM_STATES;
        merge_symmetric_range(
            a_values,
            a_visited,
            a_n_visited,
            b_values,
            b_visited,
            b_n_visited,
            base..base + NUM_STATES,
        );
    }
}

/// Recomputes the monotone row mask (bit `r` set ⇔ row `r` has at least
/// one visited entry) from a visited bitmap.
pub fn row_any_mask(visited: &[bool]) -> u128 {
    debug_assert_eq!(visited.len(), TABLE_LEN);
    let mut mask = 0u128;
    for row in 0..NUM_STATES {
        let base = row * NUM_STATES;
        if visited[base..base + NUM_STATES].iter().any(|&v| v) {
            mask |= 1 << row;
        }
    }
    mask
}

/// Lazily filled per-row cache of the bootstrap term, bit-exact with
/// [`max_over_actions`]. One instance caches one table; reset it (O(1))
/// whenever the table may have been mutated behind its back (a gossip
/// merge, a restore) — in practice once per training burst.
#[derive(Debug, Clone)]
pub struct RowMaxCache {
    max: [f64; NUM_STATES],
    /// Rows whose cache entry is filled and exact.
    valid: u128,
    /// Of the valid rows, which have at least one visited entry
    /// (invalid rows' bits are meaningless).
    any: u128,
}

impl Default for RowMaxCache {
    fn default() -> Self {
        RowMaxCache {
            max: [0.0; NUM_STATES],
            valid: 0,
            any: 0,
        }
    }
}

impl RowMaxCache {
    /// Drops every cached row (O(1)).
    #[inline]
    pub fn reset(&mut self) {
        self.valid = 0;
    }

    /// [`max_over_actions`] through the cache: scans (and caches) the row
    /// on first use, O(1) afterwards. Bit-identical to the uncached scan.
    #[inline]
    pub fn max_over_actions(&mut self, values: &[f64], visited: &[bool], s: usize) -> f64 {
        let bit = 1u128 << s;
        if self.valid & bit == 0 {
            let (any, best) = row_max_scan(values, visited, s);
            self.valid |= bit;
            if any {
                self.any |= bit;
                self.max[s] = best;
            } else {
                self.any &= !bit;
            }
        }
        if self.any & bit != 0 {
            self.max[s]
        } else {
            0.0
        }
    }

    /// Maintains the cache across one [`update_toward`] on row `s`.
    /// `was_visited`/`old` describe the entry *before* the write, `new`
    /// is the written value. Exactness argument per case:
    ///
    /// * row not cached — nothing to maintain;
    /// * row cached as untrained — `new` is now its only visited entry,
    ///   and the canonical scan of a single-entry row returns that
    ///   entry's own bits;
    /// * `new > max` (strict) — the canonical scan returns the strictly
    ///   greatest value's own bits regardless of position;
    /// * the overwritten entry may have carried the maximum
    ///   (`was_visited && old >= max`, i.e. `old == max`), or `new` ties
    ///   the maximum (`new == max`, where the result's *bits* can depend
    ///   on scan position for `±0.0` ties) — conservatively invalidate;
    ///   the next lookup refills by the canonical scan;
    /// * otherwise (`new < max`, old entry below the maximum) — the set
    ///   of entries at the maximum is unchanged, so the scan result is
    ///   unchanged.
    #[inline]
    pub fn note_update(&mut self, s: usize, was_visited: bool, old: f64, new: f64) {
        let bit = 1u128 << s;
        if self.valid & bit == 0 {
            return;
        }
        if self.any & bit == 0 {
            self.any |= bit;
            self.max[s] = new;
            return;
        }
        let m = self.max[s];
        if new > m {
            self.max[s] = new;
            return;
        }
        if (was_visited && old >= m) || new == m {
            self.valid &= !bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Random interleaving of cached lookups and updates must match the
    /// canonical scan bit-for-bit — including ±0.0 tie bits.
    #[test]
    fn cached_max_matches_canonical_scan_bitwise() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut values = vec![0.0f64; TABLE_LEN];
        let mut visited = vec![false; TABLE_LEN];
        let mut n_visited = 0usize;
        let mut cache = RowMaxCache::default();
        for step in 0..200_000 {
            if rng.gen_bool(0.5) {
                let s = rng.gen_range(0..NUM_STATES);
                let a = rng.gen_range(0..NUM_STATES);
                // Adversarial targets: clustered values with plenty of
                // exact ties and signed zeros.
                let target = match rng.gen_range(0..6) {
                    0 => 0.0,
                    1 => -0.0,
                    2 => 1.0,
                    3 => -1.0,
                    4 => f64::from(rng.gen_range(-3i32..3)),
                    _ => rng.gen_range(-2.0..2.0),
                };
                let (was, old) = update_toward(
                    &mut values,
                    &mut visited,
                    &mut n_visited,
                    s * NUM_STATES + a,
                    target,
                    0.5,
                );
                cache.note_update(s, was, old, values[s * NUM_STATES + a]);
            } else {
                let s = rng.gen_range(0..NUM_STATES);
                let got = cache.max_over_actions(&values, &visited, s);
                let want = max_over_actions(&values, &visited, s);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "step {step}, row {s}: cached {got} vs canonical {want}"
                );
            }
            if step % 50_000 == 0 {
                cache.reset();
            }
        }
    }

    /// Exact ±0.0 tie: a -0.0 written while +0.0 holds the row maximum
    /// must not let the cache return stale bits.
    #[test]
    fn signed_zero_ties_invalidate() {
        let mut values = vec![0.0f64; TABLE_LEN];
        let mut visited = vec![false; TABLE_LEN];
        let mut nv = 0usize;
        let mut cache = RowMaxCache::default();
        // Entry 5 := +0.0 (alpha 1.0 target +0.0).
        update_toward(&mut values, &mut visited, &mut nv, 5, 0.0, 1.0);
        assert_eq!(cache.max_over_actions(&values, &visited, 0).to_bits(), 0.0f64.to_bits());
        // Entry 2 := -1.0, then := -0.0 (α=1: 0·(−1) + 1·(−0.0) = −0.0 —
        // going through a negative value is what makes the written bits
        // actually negative zero). Earlier in the row than entry 5, so
        // the canonical max *bits* flip to −0.0.
        let (was, old) = update_toward(&mut values, &mut visited, &mut nv, 2, -1.0, 1.0);
        cache.note_update(0, was, old, values[2]);
        let (was, old) = update_toward(&mut values, &mut visited, &mut nv, 2, -0.0, 1.0);
        cache.note_update(0, was, old, values[2]);
        assert_eq!(values[2].to_bits(), (-0.0f64).to_bits());
        let got = cache.max_over_actions(&values, &visited, 0);
        let want = max_over_actions(&values, &visited, 0);
        assert_eq!(got.to_bits(), want.to_bits());
        assert_eq!(want.to_bits(), (-0.0f64).to_bits());
    }

    /// The masked merge must be bit-identical to the full-range merge on
    /// random sparse tables, and the union mask exactly covers the
    /// merged rows.
    #[test]
    fn masked_merge_matches_full_merge() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut mk = |density: f64| {
                let mut v = vec![0.0f64; TABLE_LEN];
                let mut vis = vec![false; TABLE_LEN];
                let mut nv = 0usize;
                for _ in 0..(density * TABLE_LEN as f64) as usize {
                    let i = rng.gen_range(0..TABLE_LEN);
                    if !vis[i] {
                        vis[i] = true;
                        nv += 1;
                    }
                    v[i] = rng.gen_range(-5.0..5.0);
                }
                (v, vis, nv)
            };
            let (av, avis, anv) = mk(0.01);
            let (bv, bvis, bnv) = mk(0.02);

            let (mut av1, mut avis1, mut anv1) = (av.clone(), avis.clone(), anv);
            let (mut bv1, mut bvis1, mut bnv1) = (bv.clone(), bvis.clone(), bnv);
            merge_symmetric_range(
                &mut av1, &mut avis1, &mut anv1, &mut bv1, &mut bvis1, &mut bnv1,
                0..TABLE_LEN,
            );

            let union = row_any_mask(&avis) | row_any_mask(&bvis);
            let (mut av2, mut avis2, mut anv2) = (av, avis, anv);
            let (mut bv2, mut bvis2, mut bnv2) = (bv, bvis, bnv);
            merge_symmetric_masked(
                &mut av2, &mut avis2, &mut anv2, &mut bv2, &mut bvis2, &mut bnv2, union,
            );

            assert_eq!(av1, av2);
            assert_eq!(bv1, bv2);
            assert_eq!(avis1, avis2);
            assert_eq!(bvis1, bvis2);
            assert_eq!(anv1, anv2);
            assert_eq!(bnv1, bnv2);
            // Post-merge, both sides' live rows are exactly the union.
            assert_eq!(row_any_mask(&avis2), union);
            assert_eq!(row_any_mask(&bvis2), union);
        }
    }
}
