//! Flat Q-table arena: every PM's φ_out/φ_in pair in one contiguous slab.
//!
//! At 100k PMs the boxed representation — two `Vec<f64>` + two
//! `Vec<bool>` heap allocations per [`QTablePair`] — costs 400k scattered
//! allocations and destroys locality for the sharded learn/aggregate
//! sweeps. The arena stores all tables PM-major in two slabs (values and
//! visited), laid out `[pm0: out | in][pm1: out | in]…`, with small
//! sidecar vectors for visited tallies, per-table row masks and the
//! per-PM hyperparameters/reward systems. Round phases walk the slab
//! sequentially; per-round allocation collapses to zero.
//!
//! Three properties are pinned by tests:
//!
//! * **Training byte-identity** — arena slot views train through the same
//!   [`kernel`](crate::kernel) functions (plus the exact
//!   [`RowMaxCache`]) as the boxed tables, via the shared
//!   [`TrainTarget`] loop, so the produced bits are equal.
//! * **Snapshot byte-identity** — [`QArena::save_pm`] emits exactly the
//!   bytes of [`QTablePair::save`](glap_snapshot::Checkpointable::save),
//!   entry for entry, so v1 snapshots are unchanged whichever storage
//!   produced them.
//! * **Backing transparency** — the slabs are [`Slab`]s: heap by default,
//!   file-backed `mmap` behind `GLAP_ARENA_MMAP` (see
//!   [`slab`](crate::slab)), bit-identical either way.

use crate::kernel::{self, RowMaxCache, TABLE_LEN};
use crate::reward::{RewardIn, RewardOut};
use crate::slab::{mmap_requested_from_env, Slab};
use crate::state::{PmState, VmAction, NUM_STATES};
use crate::table::{QParams, QTable, QTablePair, TrainTarget};
use glap_snapshot::{Checkpointable, Reader, SnapshotError, Writer};

/// Values/visited stride of one PM (out table followed by in table).
const PM_STRIDE: usize = 2 * TABLE_LEN;

/// The per-PM [`RowMaxCache`] pair used by arena training. Lives outside
/// the arena (trainer scratch): caches are transient accelerator state,
/// reset (O(1)) at the start of every training burst, and must also be
/// reset after any out-of-band table mutation (a merge, a restore).
#[derive(Debug, Clone, Default)]
pub struct PairCaches {
    /// Bootstrap cache for the φ_out table.
    pub out: RowMaxCache,
    /// Bootstrap cache for the φ_in table.
    pub r#in: RowMaxCache,
}

impl PairCaches {
    /// Drops both caches (O(1)).
    #[inline]
    pub fn reset(&mut self) {
        self.out.reset();
        self.r#in.reset();
    }
}

/// All PMs' Q-tables in one flat allocation (or mmap region).
#[derive(Debug)]
pub struct QArena {
    n: usize,
    /// `n * 2 * TABLE_LEN` Q-values, PM-major `[out | in]`.
    values: Slab<f64>,
    /// Visited bitmap parallel to `values`.
    visited: Slab<bool>,
    /// Visited tallies, `[2i]` = PM i's out table, `[2i+1]` = in.
    n_visited: Vec<usize>,
    /// Monotone row masks (bit r ⇔ row r has a visited entry), indexed
    /// like `n_visited`. Invariant: always exact, maintained by training
    /// (`|= 1 << s`), unioned by merges, recomputed on restore/import.
    row_any: Vec<u128>,
    params: Vec<QParams>,
    reward_out: Vec<RewardOut>,
    reward_in: Vec<RewardIn>,
}

impl QArena {
    /// A fresh arena of `n` untrained pairs on the heap.
    pub fn new(n: usize, params: QParams) -> Self {
        Self::with_storage(n, params, false)
    }

    /// A fresh arena, file-backed when `want_mmap` (and the platform
    /// cooperates — silently heap otherwise).
    pub fn with_storage(n: usize, params: QParams, want_mmap: bool) -> Self {
        QArena {
            n,
            values: Slab::new(n * PM_STRIDE, want_mmap),
            visited: Slab::new(n * PM_STRIDE, want_mmap),
            n_visited: vec![0; 2 * n],
            row_any: vec![0; 2 * n],
            params: vec![params; n],
            reward_out: vec![RewardOut::default(); n],
            reward_in: vec![RewardIn::default(); n],
        }
    }

    /// A fresh arena whose backing honors the `GLAP_ARENA_MMAP`
    /// environment flag.
    pub fn from_env(n: usize, params: QParams) -> Self {
        Self::with_storage(n, params, mmap_requested_from_env())
    }

    /// Number of PM slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arena holds zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether the value slab actually ended up file-backed.
    pub fn is_mmap(&self) -> bool {
        self.values.is_mmap()
    }

    /// Total trained (state, action) pairs of PM `i`, both tables —
    /// mirrors [`QTablePair::trained_pairs`].
    #[inline]
    pub fn trained_pairs(&self, i: usize) -> usize {
        self.n_visited[2 * i] + self.n_visited[2 * i + 1]
    }

    /// Mutable training view of PM `i`'s pair, borrowing the caller's
    /// cache pair. Serial twin of [`ArenaPtr::pair_mut`].
    pub fn pair_mut<'a>(&'a mut self, i: usize, caches: &'a mut PairCaches) -> ArenaPair<'a> {
        assert!(i < self.n, "pm {i} out of arena bounds {}", self.n);
        let base = i * PM_STRIDE;
        let (out_values, in_values) =
            self.values[base..base + PM_STRIDE].split_at_mut(TABLE_LEN);
        let (out_visited, in_visited) =
            self.visited[base..base + PM_STRIDE].split_at_mut(TABLE_LEN);
        let (nl, nr) = self.n_visited.split_at_mut(2 * i + 1);
        let (rl, rr) = self.row_any.split_at_mut(2 * i + 1);
        ArenaPair {
            out_values,
            out_visited,
            out_n_visited: &mut nl[2 * i],
            out_row_any: &mut rl[2 * i],
            in_values,
            in_visited,
            in_n_visited: &mut nr[0],
            in_row_any: &mut rr[0],
            params: self.params[i],
            reward_out: self.reward_out[i],
            reward_in: self.reward_in[i],
            caches,
        }
    }

    /// Raw-pointer handle for sharded parallel phases (the arena twin of
    /// the sharded round's `*mut QTablePair` tasks). See
    /// [`ArenaPtr::pair_mut`] for the safety contract.
    pub fn as_ptr(&mut self) -> ArenaPtr {
        ArenaPtr {
            values: self.values.as_mut_ptr(),
            visited: self.visited.as_mut_ptr(),
            n_visited: self.n_visited.as_mut_ptr(),
            row_any: self.row_any.as_mut_ptr(),
            params: self.params.as_mut_ptr(),
            reward_out: self.reward_out.as_mut_ptr(),
            reward_in: self.reward_in.as_mut_ptr(),
            n: self.n,
        }
    }

    /// Symmetric gossip merge of PMs `a` and `b`, bit-identical to
    /// [`QTablePair::merge_symmetric`] on the equivalent boxed pairs
    /// (row-skipping: only rows visited on either side are walked;
    /// skipped rows are provable no-ops). Like the boxed version, `b`
    /// adopts `a`'s hyperparameters and reward systems. Any live
    /// [`PairCaches`] for `a` or `b` must be reset afterwards.
    pub fn merge_pms(&mut self, a: usize, b: usize) {
        assert!(a != b && a < self.n && b < self.n);
        // SAFETY: `&mut self` guarantees no other live view; one shared
        // implementation with the sharded raw path keeps them bitwise
        // inseparable.
        unsafe { self.as_ptr().merge_pms(a, b) }
    }

    /// Cosine similarity of PMs `a` and `b` over their concatenated
    /// (out, in) value vectors — the same expression order as
    /// [`QTablePair::cosine_similarity`], bit-identical.
    pub fn cosine_similarity_pms(&self, a: usize, b: usize) -> f64 {
        let dot_norms = |xa: &[f64], xb: &[f64]| {
            let mut dot = 0.0;
            let mut nx = 0.0;
            let mut ny = 0.0;
            for i in 0..xa.len() {
                dot += xa[i] * xb[i];
                nx += xa[i] * xa[i];
                ny += xb[i] * xb[i];
            }
            (dot, nx, ny)
        };
        let (ab, bb) = (a * PM_STRIDE, b * PM_STRIDE);
        let (d1, a1, b1) = dot_norms(
            &self.values[ab..ab + TABLE_LEN],
            &self.values[bb..bb + TABLE_LEN],
        );
        let (d2, a2, b2) = dot_norms(
            &self.values[ab + TABLE_LEN..ab + PM_STRIDE],
            &self.values[bb + TABLE_LEN..bb + PM_STRIDE],
        );
        let (dot, na, nb) = (d1 + d2, a1 + a2, b1 + b2);
        if na == 0.0 && nb == 0.0 {
            1.0
        } else if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Serializes PM `i`'s pair — byte-identical to
    /// [`QTablePair::save`](Checkpointable::save) on the exported pair,
    /// so arena-backed checkpoints keep the v1 snapshot format.
    pub fn save_pm(&self, i: usize, w: &mut Writer) {
        let base = i * PM_STRIDE;
        w.put_f64_slice(&self.values[base..base + TABLE_LEN]);
        w.put_bool_slice(&self.visited[base..base + TABLE_LEN]);
        w.put_f64_slice(&self.values[base + TABLE_LEN..base + PM_STRIDE]);
        w.put_bool_slice(&self.visited[base + TABLE_LEN..base + PM_STRIDE]);
        w.put_f64(self.params[i].alpha);
        w.put_f64(self.params[i].gamma);
        w.put_f64_slice(&self.reward_out[i].values);
        w.put_f64_slice(&self.reward_in[i].values);
    }

    /// Restores PM `i` from bytes written by [`save_pm`](Self::save_pm)
    /// or by the boxed [`QTablePair::save`](Checkpointable::save) —
    /// the formats are one and the same. Sidecars (tallies, row masks)
    /// are recomputed; any live caches for `i` must be reset.
    pub fn restore_pm(&mut self, i: usize, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        // Parse through the boxed restore for identical validation, then
        // copy into the slab.
        let mut pair = QTablePair::default();
        pair.restore(r)?;
        self.import_pm(i, &pair);
        Ok(())
    }

    /// Copies a boxed pair into slot `i`, recomputing sidecars. Any live
    /// caches for `i` must be reset.
    pub fn import_pm(&mut self, i: usize, pair: &QTablePair) {
        assert!(i < self.n);
        let base = i * PM_STRIDE;
        self.values[base..base + TABLE_LEN].copy_from_slice(pair.out.raw_values());
        self.visited[base..base + TABLE_LEN].copy_from_slice(pair.out.raw_visited());
        self.values[base + TABLE_LEN..base + PM_STRIDE].copy_from_slice(pair.r#in.raw_values());
        self.visited[base + TABLE_LEN..base + PM_STRIDE].copy_from_slice(pair.r#in.raw_visited());
        self.n_visited[2 * i] = pair.out.visited_count();
        self.n_visited[2 * i + 1] = pair.r#in.visited_count();
        self.row_any[2 * i] = kernel::row_any_mask(pair.out.raw_visited());
        self.row_any[2 * i + 1] = kernel::row_any_mask(pair.r#in.raw_visited());
        self.params[i] = pair.params;
        self.reward_out[i] = pair.reward_out;
        self.reward_in[i] = pair.reward_in;
    }

    /// Materializes slot `i` as a boxed pair (values kept verbatim,
    /// including unvisited entries, so restored snapshots stay
    /// byte-faithful).
    pub fn export_pm(&self, i: usize) -> QTablePair {
        let base = i * PM_STRIDE;
        QTablePair {
            out: QTable::from_raw_parts(
                self.values[base..base + TABLE_LEN].to_vec(),
                self.visited[base..base + TABLE_LEN].to_vec(),
            ),
            r#in: QTable::from_raw_parts(
                self.values[base + TABLE_LEN..base + PM_STRIDE].to_vec(),
                self.visited[base + TABLE_LEN..base + PM_STRIDE].to_vec(),
            ),
            params: self.params[i],
            reward_out: self.reward_out[i],
            reward_in: self.reward_in[i],
        }
    }

    /// Materializes the whole arena as boxed pairs (the public trainer
    /// return type). Scale paths that cannot afford the transient copy
    /// use the arena directly instead.
    pub fn export(&self) -> Vec<QTablePair> {
        (0..self.n).map(|i| self.export_pm(i)).collect()
    }
}

/// Raw-pointer handle into an arena for sharded parallel phases.
///
/// Carries no lifetime: the caller (the trainer's scoped parallel
/// sections) guarantees the arena outlives every use.
#[derive(Clone, Copy, Debug)]
pub struct ArenaPtr {
    values: *mut f64,
    visited: *mut bool,
    n_visited: *mut usize,
    row_any: *mut u128,
    params: *mut QParams,
    reward_out: *mut RewardOut,
    reward_in: *mut RewardIn,
    n: usize,
}

// Plain-old-data pointers; disjointness across threads is the caller's
// contract (see `pair_mut`), same as the sharded round's task pointers.
unsafe impl Send for ArenaPtr {}
unsafe impl Sync for ArenaPtr {}

impl ArenaPtr {
    /// Mutable training view of PM `i`.
    ///
    /// # Safety
    ///
    /// The arena must outlive the view, `i < n`, and no other live view
    /// or arena borrow may touch PM `i` concurrently. Distinct PMs'
    /// views touch provably disjoint memory and may be used from
    /// different threads.
    pub unsafe fn pair_mut<'a>(&self, i: usize, caches: &'a mut PairCaches) -> ArenaPair<'a> {
        debug_assert!(i < self.n);
        let base = i * PM_STRIDE;
        ArenaPair {
            out_values: std::slice::from_raw_parts_mut(self.values.add(base), TABLE_LEN),
            out_visited: std::slice::from_raw_parts_mut(self.visited.add(base), TABLE_LEN),
            out_n_visited: &mut *self.n_visited.add(2 * i),
            out_row_any: &mut *self.row_any.add(2 * i),
            in_values: std::slice::from_raw_parts_mut(
                self.values.add(base + TABLE_LEN),
                TABLE_LEN,
            ),
            in_visited: std::slice::from_raw_parts_mut(
                self.visited.add(base + TABLE_LEN),
                TABLE_LEN,
            ),
            in_n_visited: &mut *self.n_visited.add(2 * i + 1),
            in_row_any: &mut *self.row_any.add(2 * i + 1),
            params: *self.params.add(i),
            reward_out: *self.reward_out.add(i),
            reward_in: *self.reward_in.add(i),
            caches,
        }
    }

    /// Symmetric gossip merge of PMs `a` and `b` — the raw twin of (and
    /// single implementation behind) [`QArena::merge_pms`]: row-skipping
    /// masked merge of both tables, union row masks on both sides, `b`
    /// adopts `a`'s hyperparameters and reward systems. The entry merge
    /// is symmetric in (a, b), so either role ordering produces
    /// identical bits. Any live [`PairCaches`] for `a` or `b` must be
    /// reset before their next use.
    ///
    /// # Safety
    ///
    /// The arena must outlive the call, `a != b`, both `< n`, and no
    /// other live view or arena borrow may touch PM `a` or `b`
    /// concurrently. Vertex-disjoint pairs touch provably disjoint
    /// memory and may merge from different threads.
    pub unsafe fn merge_pms(&self, a: usize, b: usize) {
        debug_assert!(a != b && a < self.n && b < self.n);
        for t in 0..2 {
            let (ab, bb) = (a * PM_STRIDE + t * TABLE_LEN, b * PM_STRIDE + t * TABLE_LEN);
            let union = *self.row_any.add(2 * a + t) | *self.row_any.add(2 * b + t);
            kernel::merge_symmetric_masked(
                std::slice::from_raw_parts_mut(self.values.add(ab), TABLE_LEN),
                std::slice::from_raw_parts_mut(self.visited.add(ab), TABLE_LEN),
                &mut *self.n_visited.add(2 * a + t),
                std::slice::from_raw_parts_mut(self.values.add(bb), TABLE_LEN),
                std::slice::from_raw_parts_mut(self.visited.add(bb), TABLE_LEN),
                &mut *self.n_visited.add(2 * b + t),
                union,
            );
            *self.row_any.add(2 * a + t) = union;
            *self.row_any.add(2 * b + t) = union;
        }
        *self.params.add(b) = *self.params.add(a);
        *self.reward_out.add(b) = *self.reward_out.add(a);
        *self.reward_in.add(b) = *self.reward_in.add(a);
    }
}

/// Mutable view of one PM's pair inside the arena, with the bootstrap
/// caches wired in. Implements [`TrainTarget`] bit-identically to the
/// boxed [`QTablePair`] — same kernels, same expression order, with the
/// canonical row scan replaced by the provably exact [`RowMaxCache`].
pub struct ArenaPair<'a> {
    out_values: &'a mut [f64],
    out_visited: &'a mut [bool],
    out_n_visited: &'a mut usize,
    out_row_any: &'a mut u128,
    in_values: &'a mut [f64],
    in_visited: &'a mut [bool],
    in_n_visited: &'a mut usize,
    in_row_any: &'a mut u128,
    params: QParams,
    reward_out: RewardOut,
    reward_in: RewardIn,
    caches: &'a mut PairCaches,
}

impl TrainTarget for ArenaPair<'_> {
    fn train_out(&mut self, s: PmState, a: VmAction, s_next: PmState) {
        let r = self.reward_out.of_transition(s_next);
        let future = if s_next.is_overloaded() {
            0.0
        } else {
            self.caches
                .out
                .max_over_actions(self.out_values, self.out_visited, s_next.index())
        };
        let i = s.index() * NUM_STATES + a.index();
        let (was, old) = kernel::update_toward(
            self.out_values,
            self.out_visited,
            self.out_n_visited,
            i,
            r + self.params.gamma * future,
            self.params.alpha,
        );
        self.caches.out.note_update(s.index(), was, old, self.out_values[i]);
        *self.out_row_any |= 1u128 << s.index();
    }

    fn train_in(&mut self, s: PmState, a: VmAction, s_next: PmState) {
        let r = self.reward_in.of_transition(s_next);
        let future = if s_next.is_overloaded() {
            0.0
        } else {
            self.caches
                .r#in
                .max_over_actions(self.in_values, self.in_visited, s_next.index())
                .max(0.0)
        };
        let i = s.index() * NUM_STATES + a.index();
        let (was, old) = kernel::update_toward(
            self.in_values,
            self.in_visited,
            self.in_n_visited,
            i,
            r + self.params.gamma * future,
            self.params.alpha,
        );
        self.caches.r#in.note_update(s.index(), was, old, self.in_values[i]);
        *self.in_row_any |= 1u128 << s.index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_state(rng: &mut SmallRng) -> PmState {
        PmState::from_index(rng.gen_range(0..NUM_STATES))
    }

    fn random_action(rng: &mut SmallRng) -> VmAction {
        VmAction::from_index(rng.gen_range(0..NUM_STATES))
    }

    fn save_bytes(p: &QTablePair) -> Vec<u8> {
        let mut w = Writer::new();
        p.save(&mut w);
        w.into_bytes()
    }

    fn arena_bytes(a: &QArena, i: usize) -> Vec<u8> {
        let mut w = Writer::new();
        a.save_pm(i, &mut w);
        w.into_bytes()
    }

    /// Drives the same random training sequence through boxed pairs and
    /// arena views (interleaved with merges + cache resets) and asserts
    /// byte-identity of every PM's serialized pair.
    fn assert_training_parity(want_mmap: bool) {
        const N: usize = 6;
        let params = QParams::default();
        let mut boxed: Vec<QTablePair> = (0..N).map(|_| QTablePair::new(params)).collect();
        let mut arena = QArena::with_storage(N, params, want_mmap);
        let mut caches: Vec<PairCaches> = (0..N).map(|_| PairCaches::default()).collect();
        let mut rng = SmallRng::seed_from_u64(99);

        for burst in 0..30 {
            // Training burst on a random PM: identical op sequence on
            // both storages.
            let pm = rng.gen_range(0..N);
            caches[pm].reset();
            let mut ops = Vec::new();
            for _ in 0..rng.gen_range(1..60) {
                ops.push((
                    rng.gen_bool(0.5),
                    random_state(&mut rng),
                    random_action(&mut rng),
                    random_state(&mut rng),
                ));
            }
            {
                let mut view = arena.pair_mut(pm, &mut caches[pm]);
                for &(out, s, a, sn) in &ops {
                    if out {
                        view.train_out(s, a, sn);
                    } else {
                        view.train_in(s, a, sn);
                    }
                }
            }
            for &(out, s, a, sn) in &ops {
                if out {
                    boxed[pm].train_out(s, a, sn);
                } else {
                    boxed[pm].train_in(s, a, sn);
                }
            }
            // Occasional gossip merge between two PMs.
            if burst % 3 == 2 {
                let a = rng.gen_range(0..N);
                let b = (a + 1 + rng.gen_range(0..N - 1)) % N;
                arena.merge_pms(a, b);
                caches[a].reset();
                caches[b].reset();
                let (x, y) = if a < b { (a, b) } else { (b, a) };
                let (l, r) = boxed.split_at_mut(y);
                if a < b {
                    QTablePair::merge_symmetric(&mut l[x], &mut r[0]);
                } else {
                    let (bb, aa) = (&mut l[x], &mut r[0]);
                    QTablePair::merge_symmetric(aa, bb);
                }
            }
        }
        for i in 0..N {
            assert_eq!(
                arena_bytes(&arena, i),
                save_bytes(&boxed[i]),
                "pm {i} diverged (mmap={want_mmap})"
            );
            assert_eq!(arena.trained_pairs(i), boxed[i].trained_pairs());
        }
    }

    #[test]
    fn arena_training_matches_boxed_bitwise() {
        assert_training_parity(false);
    }

    #[test]
    fn mmap_arena_training_matches_boxed_bitwise() {
        assert_training_parity(true);
    }

    #[test]
    fn save_restore_roundtrips_across_storages() {
        let params = QParams {
            alpha: 0.45,
            gamma: 0.7,
        };
        let mut pair = QTablePair::new(params);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            pair.train_out(random_state(&mut rng), random_action(&mut rng), random_state(&mut rng));
            pair.train_in(random_state(&mut rng), random_action(&mut rng), random_state(&mut rng));
        }
        let bytes = save_bytes(&pair);

        // Boxed bytes → arena slot → identical bytes back out.
        let mut arena = QArena::new(3, QParams::default());
        arena.restore_pm(1, &mut Reader::new(&bytes)).unwrap();
        assert_eq!(arena_bytes(&arena, 1), bytes);
        // And the exported pair is the original, field for field.
        assert_eq!(arena.export_pm(1), pair);
        // Untouched slots keep their fresh-pair encoding.
        assert_eq!(
            arena_bytes(&arena, 0),
            save_bytes(&QTablePair::new(QParams::default()))
        );
    }

    #[test]
    fn restore_keeps_unvisited_values_byte_faithful() {
        // Craft a snapshot whose unvisited entries carry nonzero values:
        // the arena must reproduce it verbatim on re-save.
        let mut w = Writer::new();
        let mut vals = vec![0.0f64; TABLE_LEN];
        vals[7] = 5.25; // unvisited but nonzero
        let vis = vec![false; TABLE_LEN];
        w.put_f64_slice(&vals);
        w.put_bool_slice(&vis);
        w.put_f64_slice(&vec![0.0; TABLE_LEN]);
        w.put_bool_slice(&vec![false; TABLE_LEN]);
        w.put_f64(0.3);
        w.put_f64(0.8);
        w.put_f64_slice(&RewardOut::default().values);
        w.put_f64_slice(&RewardIn::default().values);
        let bytes = w.into_bytes();

        let mut arena = QArena::new(1, QParams::default());
        arena.restore_pm(0, &mut Reader::new(&bytes)).unwrap();
        assert_eq!(arena_bytes(&arena, 0), bytes);
        let mut boxed = QTablePair::default();
        boxed.restore(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(save_bytes(&boxed), bytes);
        assert_eq!(arena.export_pm(0), boxed);
    }

    #[test]
    fn raw_ptr_views_match_serial_views() {
        let params = QParams::default();
        let mut a1 = QArena::new(4, params);
        let mut a2 = QArena::new(4, params);
        let mut c1: Vec<PairCaches> = (0..4).map(|_| PairCaches::default()).collect();
        let mut c2: Vec<PairCaches> = (0..4).map(|_| PairCaches::default()).collect();
        let mut rng = SmallRng::seed_from_u64(11);
        let ops: Vec<_> = (0..300)
            .map(|_| {
                (
                    rng.gen_range(0..4usize),
                    rng.gen_bool(0.5),
                    random_state(&mut rng),
                    random_action(&mut rng),
                    random_state(&mut rng),
                )
            })
            .collect();
        for &(pm, out, s, a, sn) in &ops {
            let mut v = a1.pair_mut(pm, &mut c1[pm]);
            if out {
                v.train_out(s, a, sn)
            } else {
                v.train_in(s, a, sn)
            }
        }
        let ptr = a2.as_ptr();
        for &(pm, out, s, a, sn) in &ops {
            let mut v = unsafe { ptr.pair_mut(pm, &mut c2[pm]) };
            if out {
                v.train_out(s, a, sn)
            } else {
                v.train_in(s, a, sn)
            }
        }
        for i in 0..4 {
            assert_eq!(arena_bytes(&a1, i), arena_bytes(&a2, i));
        }
    }

    #[test]
    fn cosine_similarity_matches_boxed() {
        let params = QParams::default();
        let mut arena = QArena::new(2, params);
        let mut caches = PairCaches::default();
        let mut rng = SmallRng::seed_from_u64(3);
        for pm in 0..2 {
            caches.reset();
            let mut v = arena.pair_mut(pm, &mut caches);
            for _ in 0..80 {
                v.train_out(random_state(&mut rng), random_action(&mut rng), random_state(&mut rng));
                v.train_in(random_state(&mut rng), random_action(&mut rng), random_state(&mut rng));
            }
        }
        let (p0, p1) = (arena.export_pm(0), arena.export_pm(1));
        assert_eq!(
            arena.cosine_similarity_pms(0, 1).to_bits(),
            p0.cosine_similarity(&p1).to_bits()
        );
    }
}
