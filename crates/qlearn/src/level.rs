//! The paper's 9-level calibration of resource utilization.
//!
//! §IV-A discretizes utilization into nine levels per resource so the
//! Q-learning state/action spaces stay finite:
//!
//! ```text
//! Low      x ≤ 0.2        xHigh   0.5 < x ≤ 0.6    4xHigh  0.8 < x ≤ 0.9
//! Medium   0.2 < x ≤ 0.4  2xHigh  0.6 < x ≤ 0.7    5xHigh  0.9 < x < 1
//! High     0.4 < x ≤ 0.5  3xHigh  0.7 < x ≤ 0.8    Overload x = 1
//! ```

use serde::{Deserialize, Serialize};

/// Number of utilization levels.
pub const NUM_LEVELS: usize = 9;

/// One calibrated utilization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Level {
    /// `x ≤ 0.2`
    Low = 0,
    /// `0.2 < x ≤ 0.4`
    Medium = 1,
    /// `0.4 < x ≤ 0.5`
    High = 2,
    /// `0.5 < x ≤ 0.6`
    XHigh = 3,
    /// `0.6 < x ≤ 0.7`
    X2High = 4,
    /// `0.7 < x ≤ 0.8`
    X3High = 5,
    /// `0.8 < x ≤ 0.9`
    X4High = 6,
    /// `0.9 < x < 1`
    X5High = 7,
    /// `x = 1` (saturated)
    Overload = 8,
}

impl Level {
    /// All levels, lightest first.
    pub const ALL: [Level; NUM_LEVELS] = [
        Level::Low,
        Level::Medium,
        Level::High,
        Level::XHigh,
        Level::X2High,
        Level::X3High,
        Level::X4High,
        Level::X5High,
        Level::Overload,
    ];

    /// Calibrates a utilization fraction. Values are clamped to `[0, 1]`
    /// first; anything at or above 1 is `Overload`.
    #[inline]
    pub fn from_utilization(x: f64) -> Level {
        if x >= 1.0 - 1e-9 {
            Level::Overload
        } else if x <= 0.2 {
            Level::Low
        } else if x <= 0.4 {
            Level::Medium
        } else if x <= 0.5 {
            Level::High
        } else if x <= 0.6 {
            Level::XHigh
        } else if x <= 0.7 {
            Level::X2High
        } else if x <= 0.8 {
            Level::X3High
        } else if x <= 0.9 {
            Level::X4High
        } else {
            Level::X5High
        }
    }

    /// The level's rank (0 = `Low` … 8 = `Overload`).
    #[inline]
    pub const fn rank(self) -> usize {
        self as usize
    }

    /// Rank → level.
    #[inline]
    pub fn from_rank(rank: usize) -> Level {
        Level::ALL[rank]
    }

    /// A representative utilization value inside this level's bin (used by
    /// the learning phase when synthesizing profiles for rare states).
    pub fn representative(self) -> f64 {
        match self {
            Level::Low => 0.1,
            Level::Medium => 0.3,
            Level::High => 0.45,
            Level::XHigh => 0.55,
            Level::X2High => 0.65,
            Level::X3High => 0.75,
            Level::X4High => 0.85,
            Level::X5High => 0.95,
            Level::Overload => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_thresholds() {
        assert_eq!(Level::from_utilization(0.0), Level::Low);
        assert_eq!(Level::from_utilization(0.2), Level::Low);
        assert_eq!(Level::from_utilization(0.21), Level::Medium);
        assert_eq!(Level::from_utilization(0.4), Level::Medium);
        assert_eq!(Level::from_utilization(0.45), Level::High);
        assert_eq!(Level::from_utilization(0.5), Level::High);
        assert_eq!(Level::from_utilization(0.56), Level::XHigh);
        assert_eq!(Level::from_utilization(0.6), Level::XHigh);
        assert_eq!(Level::from_utilization(0.7), Level::X2High);
        assert_eq!(Level::from_utilization(0.79), Level::X3High);
        assert_eq!(Level::from_utilization(0.85), Level::X4High);
        assert_eq!(Level::from_utilization(0.9), Level::X4High);
        assert_eq!(Level::from_utilization(0.95), Level::X5High);
        assert_eq!(Level::from_utilization(0.999999999), Level::Overload);
        assert_eq!(Level::from_utilization(1.0), Level::Overload);
        assert_eq!(Level::from_utilization(1.5), Level::Overload);
    }

    #[test]
    fn paper_figure3_examples() {
        // VM with average CPU 0.85, MEM 0.56 → action (4xHigh, xHigh).
        assert_eq!(Level::from_utilization(0.85), Level::X4High);
        assert_eq!(Level::from_utilization(0.56), Level::XHigh);
        // PM aggregate (0.95, 0.76) → (5xHigh, 3xHigh).
        assert_eq!(Level::from_utilization(0.95), Level::X5High);
        assert_eq!(Level::from_utilization(0.76), Level::X3High);
        // Figure 3: average demand 41% → High; 79% → 3xHigh; 50% → High.
        assert_eq!(Level::from_utilization(0.41), Level::High);
        assert_eq!(Level::from_utilization(0.79), Level::X3High);
        assert_eq!(Level::from_utilization(0.50), Level::High);
    }

    #[test]
    fn ranks_roundtrip() {
        for (i, l) in Level::ALL.iter().enumerate() {
            assert_eq!(l.rank(), i);
            assert_eq!(Level::from_rank(i), *l);
        }
    }

    #[test]
    fn levels_order_by_load() {
        assert!(Level::Low < Level::Medium);
        assert!(Level::X5High < Level::Overload);
    }

    #[test]
    fn representative_lands_in_own_bin() {
        for l in Level::ALL {
            assert_eq!(Level::from_utilization(l.representative()), l);
        }
    }
}
