//! Q-learning states and actions.
//!
//! A **state** is a PM's calibrated load (one [`Level`] per resource); an
//! **action** is a VM's calibrated load — "moving out/migrating any
//! specific VM" in a certain load state (§IV-A). With 2 resources and 9
//! levels there are at most 81 states and 81 actions.

use crate::level::{Level, NUM_LEVELS};
use glap_cluster::Resources;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of distinct states (and actions): `9²`.
pub const NUM_STATES: usize = NUM_LEVELS * NUM_LEVELS;

/// A PM load state: per-resource calibrated levels (CPU, MEM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PmState {
    /// CPU level.
    pub cpu: Level,
    /// Memory level.
    pub mem: Level,
}

/// A VM action: the VM's per-resource calibrated demand levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmAction {
    /// CPU level.
    pub cpu: Level,
    /// Memory level.
    pub mem: Level,
}

impl PmState {
    /// Calibrates a PM utilization vector.
    #[inline]
    pub fn from_utilization(u: Resources) -> PmState {
        PmState {
            cpu: Level::from_utilization(u.cpu()),
            mem: Level::from_utilization(u.mem()),
        }
    }

    /// Dense index in `0..NUM_STATES`.
    #[inline]
    pub fn index(self) -> usize {
        self.cpu.rank() * NUM_LEVELS + self.mem.rank()
    }

    /// Inverse of [`PmState::index`].
    #[inline]
    pub fn from_index(i: usize) -> PmState {
        PmState {
            cpu: Level::from_rank(i / NUM_LEVELS),
            mem: Level::from_rank(i % NUM_LEVELS),
        }
    }

    /// `true` when either resource is at the overload level.
    #[inline]
    pub fn is_overloaded(self) -> bool {
        self.cpu == Level::Overload || self.mem == Level::Overload
    }

    /// All states, in index order.
    pub fn all() -> impl Iterator<Item = PmState> {
        (0..NUM_STATES).map(PmState::from_index)
    }
}

impl VmAction {
    /// Calibrates a VM demand vector.
    #[inline]
    pub fn from_demand(d: Resources) -> VmAction {
        VmAction {
            cpu: Level::from_utilization(d.cpu()),
            mem: Level::from_utilization(d.mem()),
        }
    }

    /// Dense index in `0..NUM_STATES`.
    #[inline]
    pub fn index(self) -> usize {
        self.cpu.rank() * NUM_LEVELS + self.mem.rank()
    }

    /// Inverse of [`VmAction::index`].
    #[inline]
    pub fn from_index(i: usize) -> VmAction {
        VmAction {
            cpu: Level::from_rank(i / NUM_LEVELS),
            mem: Level::from_rank(i % NUM_LEVELS),
        }
    }

    /// All actions, in index order.
    pub fn all() -> impl Iterator<Item = VmAction> {
        (0..NUM_STATES).map(VmAction::from_index)
    }
}

impl fmt::Display for PmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?},{:?})", self.cpu, self.mem)
    }
}

impl fmt::Display for VmAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?},{:?})", self.cpu, self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_state() {
        // Aggregate (0.95, 0.76) → (5xHigh, 3xHigh).
        let s = PmState::from_utilization(Resources::new(0.95, 0.76));
        assert_eq!(s.cpu, Level::X5High);
        assert_eq!(s.mem, Level::X3High);
    }

    #[test]
    fn paper_example_action() {
        // VM (0.85, 0.56) → (4xHigh, xHigh).
        let a = VmAction::from_demand(Resources::new(0.85, 0.56));
        assert_eq!(a.cpu, Level::X4High);
        assert_eq!(a.mem, Level::XHigh);
    }

    #[test]
    fn state_index_roundtrips() {
        for s in PmState::all() {
            assert_eq!(PmState::from_index(s.index()), s);
            assert!(s.index() < NUM_STATES);
        }
    }

    #[test]
    fn action_index_roundtrips() {
        for a in VmAction::all() {
            assert_eq!(VmAction::from_index(a.index()), a);
        }
    }

    #[test]
    fn index_space_is_exactly_81() {
        assert_eq!(NUM_STATES, 81);
        assert_eq!(PmState::all().count(), 81);
        let mut seen = [false; NUM_STATES];
        for s in PmState::all() {
            assert!(!seen[s.index()], "duplicate index");
            seen[s.index()] = true;
        }
    }

    #[test]
    fn overload_detection() {
        assert!(PmState::from_utilization(Resources::new(1.0, 0.1)).is_overloaded());
        assert!(PmState::from_utilization(Resources::new(0.1, 1.0)).is_overloaded());
        assert!(!PmState::from_utilization(Resources::new(0.95, 0.95)).is_overloaded());
    }

    #[test]
    fn display_is_informative() {
        let s = PmState::from_utilization(Resources::new(0.1, 0.5));
        assert_eq!(format!("{s}"), "(Low,High)");
    }
}
