//! Property-based tests of the Q-learning substrate: calibration
//! totality, index bijectivity, merge algebra and update boundedness.

use glap_cluster::Resources;
use glap_qlearn::{Level, PmState, QParams, QTable, QTablePair, VmAction, NUM_STATES};
use proptest::prelude::*;

fn arb_state() -> impl Strategy<Value = PmState> {
    (0..NUM_STATES).prop_map(PmState::from_index)
}

fn arb_action() -> impl Strategy<Value = VmAction> {
    (0..NUM_STATES).prop_map(VmAction::from_index)
}

proptest! {
    /// Calibration is total and monotone: higher utilization never maps
    /// to a lighter level.
    #[test]
    fn calibration_is_monotone(a in 0.0f64..=1.5, b in 0.0f64..=1.5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Level::from_utilization(lo) <= Level::from_utilization(hi));
    }

    /// Every utilization pair maps to a state whose index round-trips.
    #[test]
    fn state_index_bijection(cpu in 0.0f64..=1.2, mem in 0.0f64..=1.2) {
        let s = PmState::from_utilization(Resources::new(cpu, mem));
        prop_assert!(s.index() < NUM_STATES);
        prop_assert_eq!(PmState::from_index(s.index()), s);
    }

    /// The Bellman update with bounded rewards keeps Q-values bounded by
    /// `max(|R|) / (1 − γ)` — no runaway values.
    #[test]
    fn bellman_values_are_bounded(
        updates in proptest::collection::vec(
            (0..NUM_STATES, 0..NUM_STATES, 0..NUM_STATES, -100.0f64..100.0),
            1..300,
        ),
    ) {
        let params = QParams { alpha: 0.5, gamma: 0.8 };
        let mut t = QTable::new();
        let bound = 100.0 / (1.0 - params.gamma) + 1e-9;
        for (s, a, s_next, r) in updates {
            t.bellman_update(
                PmState::from_index(s),
                VmAction::from_index(a),
                PmState::from_index(s_next),
                r,
                params,
            );
        }
        for (_, _, v) in t.iter_visited() {
            prop_assert!(v.abs() <= bound, "value {v} exceeds bound {bound}");
        }
    }

    /// Merge is commutative on the resulting value set: A·merge(B) equals
    /// B·merge(A) entry-wise.
    #[test]
    fn merge_is_commutative(
        a_entries in proptest::collection::vec((0..NUM_STATES, 0..NUM_STATES, -50.0f64..50.0), 0..40),
        b_entries in proptest::collection::vec((0..NUM_STATES, 0..NUM_STATES, -50.0f64..50.0), 0..40),
    ) {
        let build = |entries: &[(usize, usize, f64)]| {
            let mut t = QTable::new();
            for &(s, a, v) in entries {
                t.set(PmState::from_index(s), VmAction::from_index(a), v);
            }
            t
        };
        let a = build(&a_entries);
        let b = build(&b_entries);
        let mut ab = a.clone();
        ab.merge_average(&b);
        let mut ba = b.clone();
        ba.merge_average(&a);
        prop_assert_eq!(ab.raw_values(), ba.raw_values());
        prop_assert_eq!(ab.visited_count(), ba.visited_count());
    }

    /// Merge is idempotent: merging a table with itself changes nothing.
    #[test]
    fn merge_is_idempotent(
        entries in proptest::collection::vec((0..NUM_STATES, 0..NUM_STATES, -50.0f64..50.0), 0..40),
    ) {
        let mut t = QTable::new();
        for (s, a, v) in entries {
            t.set(PmState::from_index(s), VmAction::from_index(a), v);
        }
        let orig = t.clone();
        t.merge_average(&orig);
        prop_assert_eq!(t, orig);
    }

    /// Cosine similarity is symmetric and within [−1, 1].
    #[test]
    fn similarity_is_symmetric_and_bounded(
        a_entries in proptest::collection::vec((0..NUM_STATES, 0..NUM_STATES, -50.0f64..50.0), 0..30),
        b_entries in proptest::collection::vec((0..NUM_STATES, 0..NUM_STATES, -50.0f64..50.0), 0..30),
    ) {
        let build = |entries: &[(usize, usize, f64)]| {
            let mut t = QTable::new();
            for &(s, a, v) in entries {
                t.set(PmState::from_index(s), VmAction::from_index(a), v);
            }
            t
        };
        let a = build(&a_entries);
        let b = build(&b_entries);
        let ab = a.cosine_similarity(&b);
        let ba = b.cosine_similarity(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&ab));
        prop_assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-12 || a.visited_count() == 0);
    }

    /// π_out always returns an action from the offered set, and never an
    /// unvisited one.
    #[test]
    fn pi_out_respects_availability(
        entries in proptest::collection::vec((0..NUM_STATES, 0..NUM_STATES, -50.0f64..50.0), 1..40),
        state in arb_state(),
        offered in proptest::collection::vec(arb_action(), 1..10),
    ) {
        let mut q = QTablePair::new(QParams::default());
        for (s, a, v) in entries {
            q.out.set(PmState::from_index(s), VmAction::from_index(a), v);
        }
        match q.pi_out(state, offered.iter().copied()) {
            Some((a, v)) => {
                prop_assert!(offered.contains(&a));
                prop_assert!(q.out.is_visited(state, a));
                prop_assert_eq!(v, q.out.get(state, a));
                // It is the arg max among offered visited actions.
                for &o in &offered {
                    if q.out.is_visited(state, o) {
                        prop_assert!(q.out.get(state, o) <= v);
                    }
                }
            }
            None => {
                for &o in &offered {
                    prop_assert!(!q.out.is_visited(state, o));
                }
            }
        }
    }

    /// Training `in` with only safe (non-overload) outcomes never vetoes;
    /// training with only overload outcomes always vetoes.
    #[test]
    fn veto_sign_tracks_outcomes(
        state in arb_state(),
        action in arb_action(),
        n in 1usize..30,
    ) {
        let safe_next = PmState::from_utilization(Resources::new(0.5, 0.5));
        let over_next = PmState::from_utilization(Resources::new(1.0, 0.5));
        let mut safe = QTablePair::new(QParams::default());
        let mut over = QTablePair::new(QParams::default());
        for _ in 0..n {
            safe.train_in(state, action, safe_next);
            over.train_in(state, action, over_next);
        }
        prop_assert!(safe.pi_in(state, action));
        prop_assert!(!over.pi_in(state, action));
    }
}
