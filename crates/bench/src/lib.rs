//! # glap-bench — benchmark harness
//!
//! This crate carries the Criterion benchmark targets:
//!
//! * `figures` — one benchmark per paper figure/table, running the same
//!   code paths as the full-scale experiment binaries at reduced scale;
//! * `micro` — hot-path micro-benchmarks (calibration, Bellman updates,
//!   table merges, Cyclon rounds, trace synthesis, demand stepping, BFD);
//! * `ablations` — runtime cost of each GLAP design choice on identical
//!   worlds.
//!
//! Run with `cargo bench -p glap-bench` (or `cargo bench --workspace`).
