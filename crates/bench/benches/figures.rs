//! One Criterion bench per paper figure/table: each benchmark runs the
//! same code path the corresponding experiment binary uses, at a reduced
//! scale so `cargo bench` completes quickly. The full-scale regenerators
//! are the binaries in `glap-experiments` (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use glap::GlapConfig;
use glap_experiments::{
    ablation_summary, fig10_energy, fig5_convergence, fig6_packing, fig7_overloaded,
    fig8_migrations, fig9_cumulative, run_grid, table1_sla, Algorithm, Grid,
};
use std::hint::black_box;

fn bench_grid() -> Grid {
    Grid {
        sizes: vec![30],
        ratios: vec![3],
        reps: 1,
        rounds: 60,
        glap: GlapConfig {
            learning_rounds: 15,
            aggregation_rounds: 8,
            ..Default::default()
        },
        trace_cfg: Default::default(),
    }
}

fn bench_glap_cfg() -> GlapConfig {
    GlapConfig {
        learning_rounds: 10,
        aggregation_rounds: 6,
        ..Default::default()
    }
}

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("convergence_40pms", |b| {
        b.iter(|| black_box(fig5_convergence(40, &[2], bench_glap_cfg(), 0)))
    });
    g.finish();
}

fn grid_figures(c: &mut Criterion) {
    let grid = bench_grid();
    // The sweep itself (shared by figures 6-10 and Table I).
    let mut g = c.benchmark_group("grid");
    g.sample_size(10);
    g.bench_function("run_grid_paper_set_30pms", |b| {
        b.iter(|| black_box(run_grid(&grid, &Algorithm::PAPER_SET, Some(1), false)))
    });
    g.finish();

    // Aggregations over a pre-computed result set (the per-figure cost).
    let results = run_grid(&grid, &Algorithm::PAPER_SET, Some(1), false);
    c.bench_function("fig6_packing_aggregate", |b| {
        b.iter(|| black_box(fig6_packing(&results)))
    });
    c.bench_function("fig7_overloaded_aggregate", |b| {
        b.iter(|| black_box(fig7_overloaded(&results)))
    });
    c.bench_function("fig8_migrations_aggregate", |b| {
        b.iter(|| black_box(fig8_migrations(&results)))
    });
    c.bench_function("fig9_cumulative_aggregate", |b| {
        b.iter(|| black_box(fig9_cumulative(&results, 30, 5)))
    });
    c.bench_function("fig10_energy_aggregate", |b| {
        b.iter(|| black_box(fig10_energy(&results)))
    });
    c.bench_function("table1_sla_aggregate", |b| {
        b.iter(|| black_box(table1_sla(&results)))
    });
}

fn ablation_figure(c: &mut Criterion) {
    let grid = bench_grid();
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("run_grid_ablation_set_30pms", |b| {
        b.iter(|| {
            let results = run_grid(&grid, &Algorithm::ABLATION_SET, Some(1), false);
            black_box(ablation_summary(&results))
        })
    });
    g.finish();
}

criterion_group!(benches, fig5, grid_figures, ablation_figure);
criterion_main!(benches);
