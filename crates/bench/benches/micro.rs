//! Micro-benchmarks of the hot paths every simulated round exercises:
//! state calibration, Bellman updates, table merging and similarity,
//! Cyclon shuffling, trace synthesis, demand stepping and BFD packing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use glap_baselines::bfd_pack;
use glap_cluster::{DataCenter, DataCenterConfig, Resources, VmId, VmSpec};
use glap_cyclon::{CyclonOverlay, RoundIo};
use glap_dcsim::{stream_rng, Stream};
use glap_qlearn::{PmState, QParams, QTablePair, VmAction};
use glap_workload::GoogleLikeTraceGen;
use rand::Rng;
use std::hint::black_box;

fn calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibration");
    g.throughput(Throughput::Elements(1));
    g.bench_function("pm_state_from_utilization", |b| {
        let mut x = 0.0f64;
        b.iter(|| {
            x = (x + 0.0137) % 1.0;
            black_box(PmState::from_utilization(Resources::new(x, 1.0 - x)))
        })
    });
    g.finish();
}

fn qlearning(c: &mut Criterion) {
    let mut g = c.benchmark_group("qlearn");
    g.bench_function("bellman_update", |b| {
        let mut q = QTablePair::new(QParams::default());
        let s = PmState::from_utilization(Resources::new(0.75, 0.5));
        let a = VmAction::from_demand(Resources::new(0.15, 0.1));
        let s_next = PmState::from_utilization(Resources::new(0.45, 0.3));
        b.iter(|| {
            q.train_out(black_box(s), black_box(a), black_box(s_next));
            q.train_in(black_box(s), black_box(a), black_box(s_next));
        })
    });

    let mut rng = stream_rng(1, Stream::Custom(1));
    let dense = |rng: &mut glap_dcsim::SimRng| {
        let mut t = QTablePair::new(QParams::default());
        for s in PmState::all() {
            for a in VmAction::all() {
                t.out.set(s, a, rng.gen::<f64>());
                t.r#in.set(s, a, rng.gen::<f64>() - 0.5);
            }
        }
        t
    };
    let t1 = dense(&mut rng);
    let t2 = dense(&mut rng);
    g.bench_function("merge_dense_tables", |b| {
        b.iter_batched(
            || t1.clone(),
            |mut t| {
                t.merge(&t2);
                black_box(t)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("cosine_similarity_dense", |b| {
        b.iter(|| black_box(t1.cosine_similarity(&t2)))
    });
    g.finish();
}

fn cyclon(c: &mut Criterion) {
    let mut g = c.benchmark_group("cyclon");
    for &n in &[100usize, 1000] {
        g.bench_function(format!("overlay_round_{n}"), |b| {
            let mut rng = stream_rng(2, Stream::Overlay);
            let mut o = CyclonOverlay::new(n, 8, 4);
            o.bootstrap_random(&mut rng);
            b.iter(|| {
                o.run_round(&mut rng, RoundIo::default());
                black_box(o.node(0).view_size())
            })
        });
    }
    g.finish();
}

fn workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(20);
    g.throughput(Throughput::Elements(100 * 720));
    g.bench_function("google_trace_100vms_720rounds", |b| {
        let gen = GoogleLikeTraceGen::default_stats();
        let mut rng = stream_rng(3, Stream::Trace);
        b.iter(|| black_box(gen.generate(100, 720, &mut rng)))
    });
    g.finish();
}

fn datacenter(c: &mut Criterion) {
    let mut g = c.benchmark_group("datacenter");
    let build = |n_pms: usize, ratio: usize| {
        let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
        for _ in 0..n_pms * ratio {
            dc.add_vm(VmSpec::EC2_MICRO);
        }
        dc.random_placement(&mut stream_rng(4, Stream::Placement));
        dc
    };
    for &n in &[500usize, 2000] {
        g.bench_function(format!("step_{n}pms_ratio3"), |b| {
            let mut dc = build(n, 3);
            let mut src =
                |vm: VmId, r: u64| Resources::splat(((vm.0 as u64 + r) % 100) as f64 / 100.0);
            b.iter(|| {
                dc.step(&mut src);
                black_box(dc.round())
            })
        });
    }
    g.bench_function("migrate_roundtrip", |b| {
        let mut dc = build(2, 1);
        let mut src = |_: VmId, _: u64| Resources::splat(0.5);
        dc.step(&mut src);
        // Bounce the VM between the two PMs, starting opposite its
        // (random) initial host.
        let mut to = dc.vm(VmId(0)).host.expect("placed").0 ^ 1;
        b.iter(|| {
            let rec = dc.migrate(VmId(0), glap_cluster::PmId(to)).unwrap();
            to ^= 1;
            black_box(rec)
        })
    });
    g.finish();
}

fn packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("bfd");
    let mut rng = stream_rng(5, Stream::Custom(2));
    for &n in &[1000usize, 4000] {
        let demands: Vec<Resources> = (0..n)
            .map(|_| Resources::new(rng.gen::<f64>() * 0.2, rng.gen::<f64>() * 0.15))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("pack_{n}_vms"), |b| {
            b.iter(|| black_box(bfd_pack(&demands)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    calibration,
    qlearning,
    cyclon,
    workload,
    datacenter,
    packing
);
criterion_main!(benches);
