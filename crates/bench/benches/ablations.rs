//! Ablation benches for the design choices DESIGN.md calls out: the cost
//! of each GLAP component (in-veto lookups, average-demand bookkeeping,
//! shared vs per-PM tables) and of the two training phases, measured on
//! identical worlds so differences are attributable to the ablated piece.

use criterion::{criterion_group, criterion_main, Criterion};
use glap::{train, unified_table, GlapConfig, GlapPolicy, TableStore};
use glap_dcsim::run_simulation;
use glap_experiments::{build_world, Algorithm, Scenario};
use glap_workload::OffsetTrace;
use std::hint::black_box;

fn scenario() -> Scenario {
    Scenario {
        n_pms: 60,
        ratio: 3,
        rep: 0,
        algorithm: Algorithm::Glap,
        rounds: 60,
        glap: GlapConfig {
            learning_rounds: 15,
            aggregation_rounds: 8,
            ..Default::default()
        },
        trace_cfg: Default::default(),
        vm_mix: Default::default(),
        fault: Default::default(),
    }
}

/// Consolidation-day cost under each GLAP variant.
fn policy_variants(c: &mut Criterion) {
    let sc = scenario();
    let (dc0, trace) = build_world(&sc);
    let mut train_dc = dc0.clone();
    let mut train_trace = trace.clone();
    let (tables, _) = train(
        &mut train_dc,
        &mut train_trace,
        &sc.glap,
        sc.policy_seed(),
        false,
    );
    let unified = unified_table(&tables);

    let mut g = c.benchmark_group("glap_variants");
    g.sample_size(20);
    let mut bench_variant = |name: &str, make: &dyn Fn() -> GlapPolicy| {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut dc = dc0.clone();
                let mut policy = make();
                let mut day = OffsetTrace::new(&trace, sc.glap.learning_rounds as u64);
                run_simulation(
                    &mut dc,
                    &mut day,
                    &mut policy,
                    &mut [],
                    sc.rounds,
                    sc.policy_seed(),
                );
                black_box(dc.active_pm_count())
            })
        });
    };
    let uni = unified.clone();
    bench_variant("full", &move || {
        GlapPolicy::with_shared_table(sc.glap, uni.clone())
    });
    let uni = unified.clone();
    bench_variant("no_in_veto", &move || {
        let mut p = GlapPolicy::with_shared_table(sc.glap, uni.clone());
        p.disable_in_veto = true;
        p
    });
    let uni = unified.clone();
    bench_variant("current_state_only", &move || {
        let mut p = GlapPolicy::with_shared_table(sc.glap, uni.clone());
        p.current_state_only = true;
        p
    });
    let per_pm = tables.clone();
    bench_variant("per_pm_tables", &move || {
        GlapPolicy::new(sc.glap, TableStore::PerPm(per_pm.clone()))
    });
    g.finish();
}

/// Cost split of the two training phases.
fn training_phases(c: &mut Criterion) {
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("learning_only", |b| {
        let glap = GlapConfig {
            learning_rounds: 15,
            aggregation_rounds: 0,
            ..Default::default()
        };
        let sc = Scenario { glap, ..scenario() };
        b.iter(|| {
            let (mut dc, mut trace) = build_world(&sc);
            black_box(train(&mut dc, &mut trace, &glap, sc.policy_seed(), false))
        })
    });
    g.bench_function("learning_plus_aggregation", |b| {
        let glap = GlapConfig {
            learning_rounds: 15,
            aggregation_rounds: 8,
            ..Default::default()
        };
        let sc = Scenario { glap, ..scenario() };
        b.iter(|| {
            let (mut dc, mut trace) = build_world(&sc);
            black_box(train(&mut dc, &mut trace, &glap, sc.policy_seed(), false))
        })
    });
    g.finish();
}

/// The price of recording Figure 5's similarity series during training.
fn similarity_recording(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity_recording");
    g.sample_size(10);
    for (name, record) in [("off", false), ("on", true)] {
        g.bench_function(name, |b| {
            let sc = scenario();
            b.iter(|| {
                let (mut dc, mut trace) = build_world(&sc);
                black_box(train(
                    &mut dc,
                    &mut trace,
                    &sc.glap,
                    sc.policy_seed(),
                    record,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    policy_variants,
    training_phases,
    similarity_recording
);
criterion_main!(benches);
