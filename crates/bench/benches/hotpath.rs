//! Hot-path micro-benchmarks: the four loops that dominate large-N
//! wall-clock. Committed baselines live in `BENCH_hotpath.json`; rerun
//! with `cargo bench -p glap-bench --bench hotpath` after touching the
//! trainer, aggregation, or `DataCenter::step`.
//!
//! * `learn_phase_*` — one full learning round (workload step + overlay
//!   shuffle + per-PM local training) via `train` with
//!   `learning_rounds = 1`, the loop the worker pool parallelizes;
//! * `aggregation_round_*` — one push–pull gossip merge sweep over the
//!   whole population (the in-place merge target);
//! * `dc_step_*` — one workload step (the incremental-bookkeeping
//!   target);
//! * `policy_round_*` — one consolidation round of `GlapPolicy` over a
//!   freshly stepped data center.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use glap::prelude::*;
use glap::synthetic_table;
use glap_cluster::{DataCenter, DataCenterConfig, Resources, VmId, VmSpec};

/// VMs per PM in every benchmark world.
const VM_RATIO: usize = 2;

/// A mid-load wave: most PMs stay under the 0.5 learning-eligibility
/// threshold, some cross it, so the benched loops see the mixed
/// population real runs do.
fn wave(vm: VmId, round: u64) -> Resources {
    let x = 0.3 + 0.25 * ((round as f64 / 7.0) + vm.0 as f64).sin();
    Resources::splat(x)
}

/// A populated, randomly placed, once-stepped data center.
fn world(n_pms: usize) -> DataCenter {
    let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
    for _ in 0..n_pms * VM_RATIO {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    dc.random_placement(&mut stream_rng(7, Stream::Placement));
    dc.step(&mut wave);
    dc
}

/// One learning round, heavy on local training so the parallelizable
/// part dominates (the paper's `k` is per-round work; 200 keeps the
/// Bellman loop in front of the workload step).
fn learn_cfg() -> GlapConfig {
    GlapConfig {
        learning_rounds: 1,
        aggregation_rounds: 0,
        learning_iterations: 200,
        ..Default::default()
    }
}

fn bench_learn_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    for n in [1024usize, 4096] {
        let base = world(n);
        g.bench_function(format!("learn_phase_{n}pms"), |b| {
            b.iter_batched(
                || base.clone(),
                |mut dc| train(&mut dc, &mut wave, &learn_cfg(), 42, false),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_aggregation_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    for n in [1024usize, 4096] {
        // Short training gives the tables realistic sparsity; the merge
        // sweep itself is what's measured.
        let mut dc = world(n);
        let cfg = GlapConfig {
            learning_rounds: 2,
            aggregation_rounds: 0,
            learning_iterations: 20,
            ..Default::default()
        };
        let (mut tables, _) = train(&mut dc, &mut wave, &cfg, 42, false);
        let mut overlay = CyclonOverlay::new(n, cfg.cyclon_cache, cfg.cyclon_shuffle);
        let mut rng = stream_rng(42, Stream::Learning);
        overlay.bootstrap_random(&mut rng);
        g.bench_function(format!("aggregation_round_{n}pms"), |b| {
            b.iter(|| aggregation_round(&mut tables, &mut overlay, &mut rng, AggIo::default()))
        });
    }
    g.finish();
}

fn bench_dc_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    for n in [1024usize, 4096] {
        let mut dc = world(n);
        g.bench_function(format!("dc_step_{n}pms"), |b| b.iter(|| dc.step(&mut wave)));
    }
    g.finish();
}

fn bench_policy_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath");
    for n in [1024usize, 4096] {
        let base = world(n);
        let mut policy = GlapPolicy::with_shared_table(
            GlapConfig::default(),
            synthetic_table(&mut stream_rng(7, Stream::Custom(99))),
        );
        let mut init_dc = base.clone();
        policy.init(&mut init_dc, &mut stream_rng(7, Stream::Policy));
        let tracer = Tracer::off();
        g.bench_function(format!("policy_round_{n}pms"), |b| {
            b.iter_batched(
                || {
                    (
                        base.clone(),
                        policy.clone(),
                        NetworkModel::ideal(n),
                        stream_rng(7, Stream::Policy),
                    )
                },
                |(mut dc, mut pol, mut net, mut rng)| {
                    let mut ctx = RoundCtx {
                        round: dc.round(),
                        dc: &mut dc,
                        rng: &mut rng,
                        churn_events: 0,
                        net: &mut net,
                        tracer: &tracer,
                    };
                    pol.round(&mut ctx);
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    hotpath,
    bench_learn_phase,
    bench_aggregation_round,
    bench_dc_step,
    bench_policy_round,
);
criterion_main!(hotpath);
