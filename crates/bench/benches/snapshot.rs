//! Snapshot encode/decode benchmarks at paper scale (1024 PMs): the
//! cost of writing one mid-run checkpoint and of validating + restoring
//! it. The first measured numbers are pinned in `BENCH_snapshot.json`
//! at the repo root (the perf-trajectory baseline).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use glap::{GlapConfig, GlapPolicy, TableStore};
use glap_cluster::{DataCenter, DataCenterConfig, Resources, VmId, VmSpec};
use glap_dcsim::{save_rng, stream_rng, ConsolidationPolicy, FaultProfile, NetworkModel, Stream};
use glap_qlearn::{PmState, QParams, QTablePair, VmAction};
use glap_snapshot::{Checkpointable, Snapshot, SnapshotBuilder, Writer};
use rand::Rng;
use std::hint::black_box;

const N_PMS: usize = 1024;
const RATIO: usize = 2;

/// A mid-run 1024-PM world: placed VMs, populated running averages,
/// some sleeping PMs — the state shape a real checkpoint captures.
fn world() -> (DataCenter, NetworkModel, GlapPolicy) {
    let mut dc = DataCenter::new(DataCenterConfig::paper(N_PMS));
    for _ in 0..N_PMS * RATIO {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    dc.random_placement(&mut stream_rng(11, Stream::Placement));
    let mut src = |vm: VmId, r: u64| Resources::splat(((vm.0 as u64 + r) % 87) as f64 / 100.0);
    for _ in 0..8 {
        dc.step(&mut src);
    }

    let net = NetworkModel::new(N_PMS, FaultProfile::faulty(0.05, 0.01, 0.2), 11);

    let mut table = QTablePair::new(QParams::default());
    let mut rng = stream_rng(11, Stream::Custom(3));
    for s in PmState::all() {
        for a in VmAction::all() {
            table.out.set(s, a, rng.gen::<f64>());
            table.r#in.set(s, a, rng.gen::<f64>() - 0.5);
        }
    }
    let policy = GlapPolicy::new(GlapConfig::default(), TableStore::Shared(Box::new(table)));
    (dc, net, policy)
}

/// Encodes the world into a checkpoint-shaped container (the same
/// sections the experiment runner writes, minus the harness-only ones).
fn encode(dc: &DataCenter, net: &NetworkModel, policy: &GlapPolicy) -> Vec<u8> {
    let mut b = SnapshotBuilder::new();
    let mut w = Writer::new();
    save_rng(&stream_rng(11, Stream::Policy), &mut w);
    b.section("rng", w);
    let mut w = Writer::new();
    dc.save(&mut w);
    b.section("dc", w);
    let mut w = Writer::new();
    net.save(&mut w);
    b.section("net", w);
    let mut w = Writer::new();
    policy.save_state(&mut w);
    b.section("policy", w);
    b.encode()
}

fn snapshot(c: &mut Criterion) {
    let (dc, net, policy) = world();
    let bytes = encode(&dc, &net, &policy);
    println!("snapshot/container_size_{N_PMS}pms: {} bytes", bytes.len());

    let mut g = c.benchmark_group("snapshot");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function(format!("encode_checkpoint_{N_PMS}pms"), |b| {
        b.iter(|| black_box(encode(&dc, &net, &policy)))
    });
    g.bench_function(format!("decode_checkpoint_{N_PMS}pms"), |b| {
        // Full validation: magic, version, section table, every CRC.
        b.iter(|| black_box(Snapshot::decode(&bytes).unwrap()))
    });

    let snap = Snapshot::decode(&bytes).unwrap();
    g.bench_function(format!("restore_datacenter_{N_PMS}pms"), |b| {
        b.iter_batched(
            || dc.clone(),
            |mut fresh| {
                let mut r = snap.section("dc").unwrap();
                fresh.restore(&mut r).unwrap();
                black_box(fresh)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function(format!("crc32_{N_PMS}pms_payload"), |b| {
        b.iter(|| black_box(glap_snapshot::crc32(&bytes)))
    });
    g.finish();
}

criterion_group!(benches, snapshot);
criterion_main!(benches);
