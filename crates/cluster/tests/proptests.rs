//! Property-based tests for the data-center substrate: invariants must hold
//! under arbitrary sequences of demand updates, migrations and sleep/wake
//! operations.

use glap_cluster::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One scripted operation against the data center.
#[derive(Debug, Clone)]
enum Op {
    /// Step one round with a uniform demand level.
    Step(f64),
    /// Attempt migrating VM (index mod n_vms) to PM (index mod n_pms).
    Migrate(u8, u8),
    /// Attempt to sleep a PM.
    Sleep(u8),
    /// Attempt to wake a PM.
    Wake(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..=1.0).prop_map(Op::Step),
        (any::<u8>(), any::<u8>()).prop_map(|(v, p)| Op::Migrate(v, p)),
        any::<u8>().prop_map(Op::Sleep),
        any::<u8>().prop_map(Op::Wake),
    ]
}

fn build_dc(n_pms: usize, n_vms: usize, seed: u64) -> DataCenter {
    let mut dc = DataCenter::new(DataCenterConfig::paper(n_pms));
    for _ in 0..n_vms {
        dc.add_vm(VmSpec::EC2_MICRO);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    dc.random_placement(&mut rng);
    dc
}

proptest! {
    /// After any operation sequence, structural invariants hold: placement
    /// maps are mutually consistent, aggregates match VM sums, sleeping PMs
    /// are empty.
    #[test]
    fn invariants_hold_under_arbitrary_ops(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        seed in 0u64..1000,
    ) {
        let n_pms = 6;
        let n_vms = 14;
        let mut dc = build_dc(n_pms, n_vms, seed);
        for op in ops {
            match op {
                Op::Step(level) => {
                    let mut src = move |_: VmId, _: u64| Resources::splat(level);
                    dc.step(&mut src);
                }
                Op::Migrate(v, p) => {
                    let vm = VmId(u32::from(v) % n_vms as u32);
                    let pm = PmId(u32::from(p) % n_pms as u32);
                    let _ = dc.migrate(vm, pm);
                }
                Op::Sleep(p) => {
                    let _ = dc.sleep_if_empty(PmId(u32::from(p) % n_pms as u32));
                }
                Op::Wake(p) => {
                    let _ = dc.wake(PmId(u32::from(p) % n_pms as u32));
                }
            }
            prop_assert!(dc.check_invariants().is_ok(), "{:?}", dc.check_invariants());
        }
        // VM conservation: every VM still placed exactly once.
        let hosted: usize = dc.pms().map(|p| p.vm_count()).sum();
        prop_assert_eq!(hosted, n_vms);
    }

    /// Migration accounting: total count equals sum of per-VM counters and
    /// energy is non-negative and additive.
    #[test]
    fn migration_accounting_is_consistent(
        moves in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40),
        level in 0.05f64..1.0,
    ) {
        let n_pms = 5;
        let n_vms = 10;
        let mut dc = build_dc(n_pms, n_vms, 3);
        let mut src = move |_: VmId, _: u64| Resources::splat(level);
        dc.step(&mut src);
        let mut expected_energy = 0.0;
        let mut succeeded = 0u64;
        for (v, p) in moves {
            let vm = VmId(u32::from(v) % n_vms as u32);
            let pm = PmId(u32::from(p) % n_pms as u32);
            if let Ok(rec) = dc.migrate(vm, pm) {
                prop_assert!(rec.energy_j >= 0.0);
                prop_assert!(rec.tau_s > 0.0);
                expected_energy += rec.energy_j;
                succeeded += 1;
            }
        }
        prop_assert_eq!(dc.total_migrations(), succeeded);
        let per_vm: u64 = dc.vms().map(|v| u64::from(v.migrations)).sum();
        prop_assert_eq!(per_vm, succeeded);
        prop_assert!((dc.total_migration_energy_j() - expected_energy).abs() < 1e-9);
    }

    /// The running average after n identical observations equals the
    /// observation.
    #[test]
    fn running_average_of_constant_demand_is_constant(
        level in 0.0f64..=1.0,
        rounds in 1u32..50,
    ) {
        let mut dc = build_dc(2, 2, 9);
        let mut src = move |_: VmId, _: u64| Resources::splat(level);
        for _ in 0..rounds {
            dc.step(&mut src);
        }
        for vm in dc.vms() {
            let want = vm.nominal_frac * level;
            prop_assert!((vm.avg.value().cpu() - want.cpu()).abs() < 1e-9);
            prop_assert!((vm.avg.value().mem() - want.mem()).abs() < 1e-9);
        }
    }

    /// PM demand never goes negative and utilization stays in [0, 1]
    /// regardless of migration churn.
    #[test]
    fn utilization_bounds(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..50),
    ) {
        let mut dc = build_dc(4, 12, 11);
        let mut src = |_: VmId, _: u64| Resources::splat(0.6);
        dc.step(&mut src);
        for (v, p) in ops {
            let _ = dc.migrate(VmId(u32::from(v) % 12), PmId(u32::from(p) % 4));
            for pm in dc.pms() {
                let u = pm.utilization();
                prop_assert!(u.cpu() >= 0.0 && u.cpu() <= 1.0);
                prop_assert!(u.mem() >= 0.0 && u.mem() <= 1.0);
                prop_assert!(pm.demand().cpu() >= -1e-9);
                prop_assert!(pm.demand().mem() >= -1e-9);
            }
        }
    }

    /// SLAVO accounting: saturated rounds never exceed active rounds.
    #[test]
    fn sla_counters_are_ordered(levels in proptest::collection::vec(0.0f64..=1.0, 1..40)) {
        let mut dc = build_dc(3, 12, 13);
        for level in levels {
            let mut src = move |_: VmId, _: u64| Resources::splat(level);
            dc.step(&mut src);
        }
        for pm in dc.pms() {
            prop_assert!(pm.saturated_rounds() <= pm.active_rounds());
        }
    }
}
